//! Statistics helpers for the figures: CDFs, percentiles, summary rows.

/// Empirical CDF: returns `(value, cumulative_probability)` points sorted by
/// value (probability at each point includes that value).
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// The `p`-quantile (0 ≤ p ≤ 1) by nearest-rank interpolation.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((v.len() - 1) as f64 * p).round() as usize;
    v[idx]
}

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Format a duration in seconds with adaptive units for table output.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{:.2}s", s)
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_complete() {
        let c = cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].0, 1.0);
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn percentile_extremes() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn fmt_units() {
        assert!(fmt_secs(0.0000005).ends_with("us"));
        assert!(fmt_secs(0.005).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
        assert!(fmt_secs(300.0).ends_with("min"));
    }
}

//! Property coverage for [`LatencyHistogram`]: quantile estimates against
//! an exact nearest-rank reference over random latency streams (the
//! documented half-sub-bucket error bound), and merge() against recording
//! the combined stream directly.

use proptest::prelude::*;
use std::time::Duration;
use teal_serve::LatencyHistogram;

/// Exact nearest-rank quantile over raw nanosecond samples, mirroring the
/// histogram's target rank `max(ceil(q·n), 1)`.
fn nearest_rank(sorted_ns: &[u64], q: f64) -> u64 {
    assert!(!sorted_ns.is_empty());
    let n = sorted_ns.len() as f64;
    let rank = ((q.clamp(0.0, 1.0) * n).ceil() as usize).max(1);
    sorted_ns[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantile_matches_nearest_rank_within_half_sub_bucket(
        ns in proptest::collection::vec(1u64..1_000_000_000, 1..400),
        q_mil in 0u32..1001,
    ) {
        let q = f64::from(q_mil) / 1000.0;
        let mut h = LatencyHistogram::default();
        for &v in &ns {
            h.record(Duration::from_nanos(v));
        }
        let mut sorted = ns.clone();
        sorted.sort_unstable();
        let truth = nearest_rank(&sorted, q) as f64;
        let est = h.quantile(q).as_nanos() as f64;
        // Documented bound: the histogram has 4 sub-buckets per octave and
        // reports each bucket's geometric midpoint (capped at the observed
        // max), so the estimate sits within half a sub-bucket — a factor
        // of 2^(1/8) ≈ 1.0905 — of the true nearest-rank sample. A couple
        // of nanoseconds of absolute slack absorbs float truncation in
        // bucket indexing and the final `as u64` cast.
        let half_sub = 2f64.powf(1.0 / 8.0) * 1.000_000_1;
        prop_assert!(
            est <= truth * half_sub + 2.0,
            "q={q}: estimate {est}ns above nearest-rank {truth}ns × 2^(1/8)"
        );
        prop_assert!(
            est >= truth / half_sub - 2.0,
            "q={q}: estimate {est}ns below nearest-rank {truth}ns / 2^(1/8)"
        );
    }

    #[test]
    fn merge_is_identical_to_recording_the_combined_stream(
        a in proptest::collection::vec(1u64..1_000_000_000, 0..200),
        b in proptest::collection::vec(1u64..1_000_000_000, 0..200),
        q_mil in 0u32..1001,
    ) {
        let (mut ha, mut hb, mut combined) = (
            LatencyHistogram::default(),
            LatencyHistogram::default(),
            LatencyHistogram::default(),
        );
        for &v in &a {
            ha.record(Duration::from_nanos(v));
            combined.record(Duration::from_nanos(v));
        }
        for &v in &b {
            hb.record(Duration::from_nanos(v));
            combined.record(Duration::from_nanos(v));
        }
        ha.merge(&hb);
        let q = f64::from(q_mil) / 1000.0;
        prop_assert_eq!(ha.count(), combined.count());
        prop_assert_eq!(ha.mean(), combined.mean());
        prop_assert_eq!(ha.quantile(q), combined.quantile(q));
    }
}

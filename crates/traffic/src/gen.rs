//! Synthetic traffic generation replacing the proprietary SWAN trace.
//!
//! The paper trains and evaluates on 20 days of 5-minute traffic matrices
//! from Microsoft's inter-datacenter WAN. The generator here reproduces the
//! trace's two load-bearing properties:
//!
//! 1. **Heavy spatial skew** — the top 10% of demands carry ≈88.4% of total
//!    volume (§5.1). Per-demand base volumes are log-normal with σ chosen
//!    analytically: the top-decile mass share of LogNormal(μ,σ) is
//!    Φ(σ − z₀.₉), and σ ≈ 2.476 gives 0.884.
//! 2. **Smooth temporal evolution with diurnal structure** — demands evolve
//!    by a multiplicative AR(1) process in log space plus a sinusoidal
//!    day/night factor, so consecutive matrices are similar but not equal
//!    (what the online evaluation in §5.1 relies on).
//!
//! Demand volumes are finally calibrated against the topology so that "the
//! best-performing TE scheme satisfies a majority of traffic demand" (§5.1):
//! we scale total volume such that shortest-path routing would load the
//! busiest links at a configurable multiple of capacity.

use crate::matrix::TrafficMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teal_topology::{NodeId, PathSet, Topology};

/// Tunables of the synthetic traffic model.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Log-normal σ of per-demand base volumes (2.476 ⇒ top-10% ≈ 88.4%).
    pub sigma: f64,
    /// Amplitude of the diurnal factor (0 disables it).
    pub diurnal_amplitude: f64,
    /// Number of intervals per diurnal cycle (288 × 5 min = 24 h).
    pub diurnal_period: usize,
    /// AR(1) persistence of log-demand noise, in [0, 1).
    pub ar_rho: f64,
    /// Standard deviation of the AR(1) innovation in log space.
    pub ar_noise: f64,
    /// Target p95 link utilization under shortest-path routing used by
    /// [`TrafficModel::calibrate`]. Values slightly above 1 leave the
    /// optimum just short of satisfying everything, as in the paper.
    pub target_utilization: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            sigma: 2.476,
            diurnal_amplitude: 0.25,
            diurnal_period: 288,
            ar_rho: 0.9,
            ar_noise: 0.08,
            target_utilization: 1.0,
        }
    }
}

/// A seeded traffic generator bound to one demand-pair list.
#[derive(Clone, Debug)]
pub struct TrafficModel {
    pairs: Vec<(NodeId, NodeId)>,
    /// Time-invariant per-demand base volume (the "gravity" of the pair).
    base: Vec<f64>,
    cfg: TrafficConfig,
    /// Global scale applied on top of the base volumes.
    scale: f64,
    seed: u64,
}

impl TrafficModel {
    /// Build the model for an ordered demand-pair list.
    pub fn new(pairs: &[(NodeId, NodeId)], cfg: TrafficConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7f1c_0001);
        let base = pairs
            .iter()
            .map(|_| teal_nn_free_log_normal(&mut rng, 0.0, cfg.sigma))
            .collect();
        TrafficModel {
            pairs: pairs.to_vec(),
            base,
            cfg,
            scale: 1.0,
            seed,
        }
    }

    /// The demand pairs this model generates for.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Current global scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Calibrate the global scale against a topology: scale total volume so
    /// that shortest-path routing yields a p95 directed-link utilization of
    /// `cfg.target_utilization`.
    pub fn calibrate(&mut self, topo: &Topology, paths: &PathSet) {
        assert_eq!(
            paths.pairs(),
            self.pairs.as_slice(),
            "path set / pair list mismatch"
        );
        let mut load = vec![0.0f64; topo.num_edges()];
        for (d, &b) in self.base.iter().enumerate() {
            // Paths are sorted by weight, so slot 0 is the shortest path.
            let sp = &paths.paths_for(d)[0];
            for &e in &sp.edges {
                load[e] += b;
            }
        }
        let mut utils: Vec<f64> = load
            .iter()
            .zip(topo.edges())
            .filter(|(_, e)| e.capacity > 0.0)
            .map(|(l, e)| l / e.capacity)
            .collect();
        if utils.is_empty() {
            return;
        }
        utils.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = utils[((utils.len() - 1) as f64 * 0.95).round() as usize];
        if p95 > 0.0 {
            self.scale = self.cfg.target_utilization / p95;
        }
    }

    /// Generate `len` consecutive traffic matrices starting at interval
    /// `start`. Deterministic in `(seed, start, len)` — the same window can
    /// be regenerated at will, which the train/val/test split relies on.
    pub fn series(&self, start: usize, len: usize) -> Vec<TrafficMatrix> {
        let n = self.pairs.len();
        let mut out = Vec::with_capacity(len);
        // Each demand gets an independent AR(1) log-noise stream, seeded per
        // demand so the series is reproducible from any starting interval.
        let mut states: Vec<f64> = (0..n)
            .map(|d| {
                let mut r = StdRng::seed_from_u64(self.seed ^ (d as u64).wrapping_mul(0x9e37_79b9));
                let mut x = 0.0f64;
                // Burn in to the AR(1) stationary distribution, then advance
                // to `start`.
                for _ in 0..(32 + start) {
                    x = self.cfg.ar_rho * x + gauss(&mut r) * self.cfg.ar_noise;
                }
                x
            })
            .collect();
        let mut rngs: Vec<StdRng> = (0..n)
            .map(|d| {
                let mut r = StdRng::seed_from_u64(self.seed ^ (d as u64).wrapping_mul(0x9e37_79b9));
                // Skip the burn-in draws so the stream continues seamlessly.
                for _ in 0..(32 + start) {
                    let _ = gauss(&mut r);
                }
                r
            })
            .collect();
        for t in 0..len {
            let interval = start + t;
            let diurnal = 1.0
                + self.cfg.diurnal_amplitude
                    * (2.0 * std::f64::consts::PI * interval as f64
                        / self.cfg.diurnal_period as f64)
                        .sin();
            let mut demands = Vec::with_capacity(n);
            for d in 0..n {
                if t > 0 {
                    states[d] =
                        self.cfg.ar_rho * states[d] + gauss(&mut rngs[d]) * self.cfg.ar_noise;
                }
                let v = self.scale * self.base[d] * diurnal * states[d].exp();
                demands.push(v.max(0.0));
            }
            out.push(TrafficMatrix::new(demands));
        }
        out
    }
}

/// Standard train/validation/test windows. The paper uses 700/100/200
/// consecutive intervals; `shrink` scales all three for CPU-budget runs.
#[derive(Clone, Copy, Debug)]
pub struct SplitSpec {
    /// Number of training intervals.
    pub train: usize,
    /// Number of validation intervals.
    pub val: usize,
    /// Number of test intervals.
    pub test: usize,
}

impl SplitSpec {
    /// The paper's 700/100/200 split scaled by `shrink` in (0, 1].
    pub fn paper(shrink: f64) -> Self {
        assert!(shrink > 0.0 && shrink <= 1.0);
        let s = |n: usize| ((n as f64 * shrink).round() as usize).max(2);
        SplitSpec {
            train: s(700),
            val: s(100),
            test: s(200),
        }
    }

    /// Generate the three disjoint consecutive windows.
    pub fn generate(
        &self,
        model: &TrafficModel,
    ) -> (Vec<TrafficMatrix>, Vec<TrafficMatrix>, Vec<TrafficMatrix>) {
        let train = model.series(0, self.train);
        let val = model.series(self.train, self.val);
        let test = model.series(self.train + self.val, self.test);
        (train, val, test)
    }
}

/// Box-Muller standard normal (duplicated from `teal-nn` to keep this crate
/// independent of the NN substrate).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn teal_nn_free_log_normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * gauss(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use teal_topology::{b4, PathSet};

    fn model_for_b4() -> (teal_topology::Topology, PathSet, TrafficModel) {
        let topo = b4();
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        let mut model = TrafficModel::new(&pairs, TrafficConfig::default(), 17);
        model.calibrate(&topo, &paths);
        (topo, paths, model)
    }

    #[test]
    fn heavy_tail_matches_swan_statistic() {
        // With only 132 demands the share is noisy; average over many seeds.
        let mut shares = Vec::new();
        for seed in 0..30 {
            let pairs: Vec<(usize, usize)> = (0..500).map(|i| (i, i + 500)).collect();
            let m = TrafficModel::new(&pairs, TrafficConfig::default(), seed);
            let tm = m.series(0, 1).remove(0);
            shares.push(tm.top_share(0.10));
        }
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        assert!(
            (mean - 0.884).abs() < 0.06,
            "top-10% share {mean}, expected ~0.884"
        );
    }

    #[test]
    fn series_deterministic_and_seamless() {
        let (_, _, model) = model_for_b4();
        let full = model.series(0, 10);
        let head = model.series(0, 4);
        let tail = model.series(4, 6);
        for (a, b) in full[..4].iter().zip(&head) {
            assert_eq!(a, b);
        }
        for (a, b) in full[4..].iter().zip(&tail) {
            for (x, y) in a.demands().iter().zip(b.demands()) {
                assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn calibration_hits_target() {
        let (topo, paths, model) = model_for_b4();
        // Recompute the p95 utilization with the calibrated scale.
        let tm_base: Vec<f64> = model.base.iter().map(|b| b * model.scale()).collect();
        let mut load = vec![0.0f64; topo.num_edges()];
        for (d, v) in tm_base.iter().enumerate() {
            for &e in &paths.paths_for(d)[0].edges {
                load[e] += v;
            }
        }
        let mut utils: Vec<f64> = load
            .iter()
            .zip(topo.edges())
            .map(|(l, e)| l / e.capacity)
            .collect();
        utils.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = utils[((utils.len() - 1) as f64 * 0.95).round() as usize];
        assert!((p95 - 1.0).abs() < 0.05, "p95 {p95}");
    }

    #[test]
    fn consecutive_intervals_are_correlated() {
        let (_, _, model) = model_for_b4();
        let series = model.series(0, 20);
        // Relative change between consecutive matrices should be modest.
        for w in series.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let rel: f64 = a
                .demands()
                .iter()
                .zip(b.demands())
                .filter(|(x, _)| **x > 0.0)
                .map(|(x, y)| ((y - x) / x).abs())
                .sum::<f64>()
                / a.len() as f64;
            assert!(rel < 0.6, "mean relative change {rel} too large");
        }
    }

    #[test]
    fn split_windows_are_disjoint_and_sized() {
        let (_, _, model) = model_for_b4();
        let spec = SplitSpec::paper(0.02); // 14/2/4
        let (train, val, test) = spec.generate(&model);
        assert_eq!(train.len(), 14);
        assert_eq!(val.len(), 2);
        assert_eq!(test.len(), 4);
        assert_ne!(train.last().unwrap(), &val[0]);
    }

    #[test]
    fn demands_nonnegative_under_diurnal_trough() {
        let pairs: Vec<(usize, usize)> = (0..50).map(|i| (i, i + 50)).collect();
        let cfg = TrafficConfig {
            diurnal_amplitude: 0.9,
            ..TrafficConfig::default()
        };
        let m = TrafficModel::new(&pairs, cfg, 3);
        for tm in m.series(0, 300) {
            assert!(tm.demands().iter().all(|d| *d >= 0.0));
        }
    }
}

//! Aligned text tables for the experiment harness, plus result persistence.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple aligned text table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<w$}", c, w = widths[i] + 2);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        let _ = ncols;
        out
    }
}

/// Directory where experiment outputs are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("TEAL_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Print a rendered block and persist it under `results/<id>.txt`.
pub fn emit(id: &str, block: &str) {
    println!("{block}");
    let path = results_dir().join(format!("{id}.txt"));
    if let Err(e) = std::fs::write(&path, block) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Persist raw CSV data (for plotting) under `results/<id>.csv`.
pub fn emit_csv(id: &str, header: &str, rows: &[String]) {
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    let path = results_dir().join(format!("{id}.csv"));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("longer-name"));
        let lines: Vec<&str> = r.lines().collect();
        // Header and rows share the column offset of "value".
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1'), Some(col));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}

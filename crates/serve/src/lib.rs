//! `teal-serve`: a multi-topology TE serving daemon.
//!
//! The paper's pitch is that TE allocation becomes a *fixed-cost batched
//! compute step* fast enough to run inside the TE control interval. The
//! library crates realize the compute step ([`teal_core::ServingContext`]);
//! this crate turns it into a long-running, concurrency-safe **service** —
//! the bridge from "library" to the ROADMAP's "serve heavy traffic from
//! millions of users".
//!
//! # Architecture
//!
//! ```text
//!   clients (any thread)            per-topology shards (one thread each)
//!   ────────────────────            ───────────────────────────────────────
//!   submit(topo, tm) ── route ──►  shard "b4":   queue ► drain + linger
//!        │               by           │  registry.get ── snapshot read
//!        │             topology       ▼
//!        │                         try_allocate_batch_with(tms, arena)
//!        │                            (one forward pass per window,
//!        │                             arena-reusing batched ADMM)
//!        │                        shard "swan":  queue ► drain + linger
//!        │                            │  ... a true parallel lane ...
//!        ▼                            ▼
//!   Ticket::wait ◄─────────────── per-request response slots
//! ```
//!
//! Three components, each deliberately built from operations that commute
//! across cores (the scalable-commutativity design rule — no lock is ever
//! held across model compute, and no two shards share per-window mutable
//! state, so their dispatch is conflict-free by construction):
//!
//! * **Per-topology dispatch shards** ([`ServeDaemon`]). Submit routes each
//!   `(topology id, traffic matrix)` pair to its topology's shard — a
//!   dedicated dispatcher thread with a private queue, condvars, ADMM
//!   arena ([`teal_core::BatchScratch`]), and telemetry slot. Each shard
//!   drains its queue (lingering up to [`ServeConfig::linger`] so bursts
//!   pile up) and serves the window through one batched forward pass +
//!   arena-reusing batched ADMM: steady-state windows reuse all ADMM
//!   solver state across windows. Unrelated clients' matrices share
//!   matrix products; replies report the coalesced
//!   [`ServeReply::batch_size`]. Backpressure is a bounded per-shard
//!   queue. On multicore, topologies serve genuinely in parallel; the
//!   shard-arena ownership rules are in the `daemon` module docs.
//! * **Topology/model registry with hot swap** ([`ModelRegistry`]). One
//!   [`teal_core::ServingContext`] per topology (each with its prebuilt
//!   ADMM skeleton) behind snapshot reads: `get` clones an `Arc` and drops
//!   the lock before any compute. [`ModelRegistry::swap_checkpoint_str`]
//!   loads new weights via `teal-nn`'s checkpoint format and atomically
//!   republishes the context — in-flight requests finish on the weights
//!   they snapshotted, so a swap never drops or mixes a response.
//! * **Serving telemetry** ([`Telemetry`] / [`TelemetrySnapshot`]).
//!   Per-topology latency histograms (p50/p99/mean), queue-depth gauges,
//!   and the coalesced batch-size distribution, readable at any time
//!   without pausing the daemon.
//!
//! # Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use teal_core::{Env, EngineConfig, ServingContext, TealConfig, TealModel};
//! use teal_serve::{ModelRegistry, ServeDaemon};
//! use teal_topology::b4;
//! use teal_traffic::TrafficMatrix;
//!
//! let env = Arc::new(Env::for_topology(b4()));
//! let model = TealModel::new(Arc::clone(&env), TealConfig::default());
//! let registry = ModelRegistry::new();
//! registry.insert("b4", ServingContext::new(model, EngineConfig::paper_default(12)));
//! let daemon = ServeDaemon::with_defaults(registry);
//!
//! let tm = TrafficMatrix::new(vec![20.0; env.num_demands()]);
//! let reply = daemon.allocate("b4", tm).expect("served");
//! println!("batch of {} in {:?}", reply.batch_size, reply.latency);
//! ```
//!
//! See `examples/serve_loop.rs` for the full submit → coalesced batch →
//! hot weight swap loop, and the `serve_latency` bench in `teal-bench` for
//! the daemon-vs-sequential throughput comparison (`BENCH_serve.json`).

pub mod daemon;
pub mod registry;
pub mod telemetry;

pub use daemon::{ServeConfig, ServeDaemon, ServeError, ServeReply, Ticket};
pub use registry::ModelRegistry;
pub use telemetry::{LatencyHistogram, Telemetry, TelemetrySnapshot, TopoSnapshot};

//! Online and offline evaluation loops (§5.1 "Metrics").
//!
//! *Online* satisfied demand accounts for TE-control delay: "the current
//! flow allocation will persist until the TE scheme finishes computing a new
//! allocation". We simulate a wall clock: a scheme starts computing on the
//! newest traffic matrix whenever it is idle; until the result lands, stale
//! routes serve the live traffic. A scheme slower than the TE interval
//! therefore skips matrices entirely (the every-other/every-third pattern of
//! Figure 18).
//!
//! *Offline* satisfied demand (§5.6) assumes instantaneous computation and
//! scores pure allocation quality.
//!
//! Because our substrates differ from the paper's testbed in absolute speed,
//! experiment configs choose the TE interval so that solver runtimes occupy
//! a comparable fraction of the interval as in the paper (documented in
//! EXPERIMENTS.md); no measured time is ever scaled or faked.

use crate::schemes::Scheme;
use std::time::Duration;
use teal_core::Env;
use teal_lp::{evaluate, Allocation, TeInstance};
use teal_topology::Topology;
use teal_traffic::TrafficMatrix;

/// One interval's outcome in an online run.
#[derive(Clone, Debug)]
pub struct IntervalRecord {
    /// Interval index.
    pub interval: usize,
    /// Time-weighted satisfied demand, percent.
    pub satisfied_pct: f64,
    /// Whether a newly computed allocation became active in this interval.
    pub updated: bool,
    /// Computation time of the job started this interval (if the scheme was
    /// idle and started one).
    pub comp_time: Option<Duration>,
}

/// Result of an online run.
#[derive(Clone, Debug)]
pub struct OnlineResult {
    /// Per-interval records.
    pub intervals: Vec<IntervalRecord>,
}

impl OnlineResult {
    /// Mean satisfied demand over all intervals, percent.
    pub fn mean_satisfied_pct(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals.iter().map(|r| r.satisfied_pct).sum::<f64>() / self.intervals.len() as f64
    }

    /// All computation times observed.
    pub fn comp_times(&self) -> Vec<Duration> {
        self.intervals.iter().filter_map(|r| r.comp_time).collect()
    }

    /// Mean computation time in seconds (0 if none recorded).
    pub fn mean_comp_time_s(&self) -> f64 {
        let times = self.comp_times();
        if times.is_empty() {
            return 0.0;
        }
        times.iter().map(|t| t.as_secs_f64()).sum::<f64>() / times.len() as f64
    }

    /// Per-interval satisfied percentages.
    pub fn satisfied_series(&self) -> Vec<f64> {
        self.intervals.iter().map(|r| r.satisfied_pct).collect()
    }
}

/// Run the online control loop over a traffic series on a fixed topology.
/// `interval` is the TE period (5 minutes in production).
pub fn run_online(
    env: &Env,
    topo: &Topology,
    tms: &[TrafficMatrix],
    scheme: &mut dyn Scheme,
    interval: Duration,
) -> OnlineResult {
    let interval_s = interval.as_secs_f64().max(1e-9);
    // Routes in effect before the first computation completes.
    let mut active = Allocation::shortest_path(env.num_demands(), env.k());
    let mut pending: Option<(Allocation, f64)> = None; // (alloc, finish time)
    let mut records = Vec::with_capacity(tms.len());

    for (i, tm) in tms.iter().enumerate() {
        let t_start = i as f64 * interval_s;
        let t_end = t_start + interval_s;
        let mut comp_time = None;

        // Idle? Start computing on the freshest matrix.
        if pending.is_none() {
            let (alloc, dt) = scheme.allocate(topo, tm);
            comp_time = Some(dt);
            pending = Some((alloc, t_start + dt.as_secs_f64()));
        }

        // Integrate realized flow over [t_start, t_end) with the allocation
        // that is active at each instant.
        let inst = TeInstance::new(topo, env.paths(), tm);
        let total = tm.total().max(1e-12);
        let mut updated = false;
        let mut satisfied;
        match &pending {
            Some((alloc, finish)) if *finish <= t_start => {
                // Finished before this interval began: promote immediately.
                active = alloc.clone();
                pending = None;
                updated = true;
                satisfied = 100.0 * evaluate(&inst, &active).realized_flow / total;
            }
            Some((alloc, finish)) if *finish < t_end => {
                // Lands mid-interval: time-weighted mix of stale and fresh.
                let w_old = (finish - t_start) / interval_s;
                let old_flow = evaluate(&inst, &active).realized_flow;
                let new_flow = evaluate(&inst, alloc).realized_flow;
                satisfied = 100.0 * (w_old * old_flow + (1.0 - w_old) * new_flow) / total;
                active = alloc.clone();
                pending = None;
                updated = true;
            }
            _ => {
                // Still computing (or nothing pending): stale routes all
                // interval.
                satisfied = 100.0 * evaluate(&inst, &active).realized_flow / total;
            }
        }
        satisfied = satisfied.clamp(0.0, 100.0);
        records.push(IntervalRecord {
            interval: i,
            satisfied_pct: satisfied,
            updated,
            comp_time,
        });
    }
    OnlineResult { intervals: records }
}

/// Offline evaluation (§5.6): every matrix gets a fresh allocation applied
/// instantly. Returns per-matrix satisfied percentages and computation times.
pub fn run_offline(
    env: &Env,
    topo: &Topology,
    tms: &[TrafficMatrix],
    scheme: &mut dyn Scheme,
) -> (Vec<f64>, Vec<Duration>) {
    let mut satisfied = Vec::with_capacity(tms.len());
    let mut times = Vec::with_capacity(tms.len());
    for tm in tms {
        let (alloc, dt) = scheme.allocate(topo, tm);
        let inst = TeInstance::new(topo, env.paths(), tm);
        let total = tm.total().max(1e-12);
        satisfied.push((100.0 * evaluate(&inst, &alloc).realized_flow / total).min(100.0));
        times.push(dt);
    }
    (satisfied, times)
}

/// Batched offline evaluation: matrices are handed to the scheme in chunks
/// of `batch`, exercising the batched serving path (one set of matrix
/// products plus parallel ADMM for Teal). Returns per-matrix satisfied
/// percentages and the total computation time across all matrices; per-
/// matrix time is the amortized `total / tms.len()`.
pub fn run_offline_batched(
    env: &Env,
    topo: &Topology,
    tms: &[TrafficMatrix],
    scheme: &mut dyn Scheme,
    batch: usize,
) -> (Vec<f64>, Duration) {
    let mut satisfied = Vec::with_capacity(tms.len());
    let mut total_time = Duration::ZERO;
    for chunk in tms.chunks(batch.max(1)) {
        let (allocs, dt) = scheme.allocate_batch(topo, chunk);
        total_time += dt;
        for (tm, alloc) in chunk.iter().zip(&allocs) {
            let inst = TeInstance::new(topo, env.paths(), tm);
            let total = tm.total().max(1e-12);
            satisfied.push((100.0 * evaluate(&inst, alloc).realized_flow / total).min(100.0));
        }
    }
    (satisfied, total_time)
}

/// Figure 8/9-style failure experiment: links fail at the start of an
/// interval; the pre-failure allocation keeps serving (dropping flows on
/// dead links) until the scheme finishes recomputing on the failed topology.
/// Returns the time-weighted satisfied percentage for that interval.
pub fn run_failure_interval(
    env: &Env,
    failed_topo: &Topology,
    tm: &TrafficMatrix,
    scheme: &mut dyn Scheme,
    pre_failure_alloc: &Allocation,
    interval: Duration,
) -> f64 {
    let interval_s = interval.as_secs_f64().max(1e-9);
    let (new_alloc, dt) = scheme.allocate(failed_topo, tm);
    let inst = TeInstance::new(failed_topo, env.paths(), tm);
    let total = tm.total().max(1e-12);
    let old_flow = evaluate(&inst, pre_failure_alloc).realized_flow;
    let new_flow = evaluate(&inst, &new_alloc).realized_flow;
    let w_old = (dt.as_secs_f64() / interval_s).min(1.0);
    (100.0 * (w_old * old_flow + (1.0 - w_old) * new_flow) / total).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{LpAllScheme, Scheme, ShortestPathScheme};
    use std::sync::Arc;
    use teal_lp::Objective;
    use teal_topology::b4;

    fn setup(n: usize) -> (Arc<Env>, Vec<TrafficMatrix>) {
        let env = Arc::new(Env::for_topology(b4()));
        let tms = (0..n)
            .map(|i| TrafficMatrix::new(vec![5.0 + i as f64; env.num_demands()]))
            .collect();
        (env, tms)
    }

    #[test]
    fn online_with_generous_interval_matches_offline() {
        let (env, tms) = setup(4);
        let mut s1 = LpAllScheme::new(Arc::clone(&env), Objective::TotalFlow);
        let on = run_online(&env, env.topo(), &tms, &mut s1, Duration::from_secs(3600));
        let mut s2 = LpAllScheme::new(Arc::clone(&env), Objective::TotalFlow);
        let (off, _) = run_offline(&env, env.topo(), &tms, &mut s2);
        // With an hour-long interval the sub-second solver is effectively
        // instantaneous; online ≈ offline except the first interval's warmup.
        for (rec, o) in on.intervals.iter().zip(&off).skip(1) {
            assert!(
                (rec.satisfied_pct - o).abs() < 1.0,
                "interval {}: online {} vs offline {}",
                rec.interval,
                rec.satisfied_pct,
                o
            );
        }
    }

    #[test]
    fn slow_scheme_suffers_online() {
        /// A deliberately slow wrapper to exercise staleness accounting.
        struct Slow<S: Scheme>(S, Duration);
        impl<S: Scheme> Scheme for Slow<S> {
            fn name(&self) -> &str {
                "Slow"
            }
            fn allocate(&mut self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
                let (a, dt) = self.0.allocate(topo, tm);
                (a, dt + self.1)
            }
        }
        let (env, tms) = setup(6);
        let interval = Duration::from_millis(200);
        let mut fast = LpAllScheme::new(Arc::clone(&env), Objective::TotalFlow);
        let fast_res = run_online(&env, env.topo(), &tms, &mut fast, interval);
        let mut slow = Slow(
            LpAllScheme::new(Arc::clone(&env), Objective::TotalFlow),
            Duration::from_millis(500),
        );
        let slow_res = run_online(&env, env.topo(), &tms, &mut slow, interval);
        assert!(
            slow_res.mean_satisfied_pct() <= fast_res.mean_satisfied_pct() + 1e-9,
            "staleness must not help: slow {} vs fast {}",
            slow_res.mean_satisfied_pct(),
            fast_res.mean_satisfied_pct()
        );
        // The slow scheme must skip some matrices.
        let slow_updates = slow_res.intervals.iter().filter(|r| r.updated).count();
        let fast_updates = fast_res.intervals.iter().filter(|r| r.updated).count();
        assert!(slow_updates < fast_updates);
    }

    #[test]
    fn failure_interval_bounded() {
        let (env, tms) = setup(1);
        let failed = env.topo().with_failed_link(0, 1);
        let mut scheme = ShortestPathScheme::new(Arc::clone(&env));
        let pre = Allocation::shortest_path(env.num_demands(), env.k());
        let pct = run_failure_interval(
            &env,
            &failed,
            &tms[0],
            &mut scheme,
            &pre,
            Duration::from_secs(300),
        );
        assert!((0.0..=100.0).contains(&pct));
    }
}

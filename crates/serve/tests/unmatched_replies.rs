//! The unmatched-reply counter, client side: REPLY/STATS_OK frames whose
//! request id matches nothing pending used to be **silently dropped** by
//! the client's reader thread — an id-bookkeeping bug on either end of the
//! connection was invisible. They are now counted and surfaced via
//! [`TealClient::unmatched_replies`].
//!
//! The "server" here is a hand-rolled socket speaking raw wire frames, so
//! it can misbehave on purpose: after a legitimate handshake it sends two
//! unsolicited REPLY frames and one unsolicited STATS_OK.

use std::net::TcpListener;
use std::time::Duration;
use teal_serve::wire;
use teal_serve::{ServeError, TealClient, Telemetry};

#[test]
fn unsolicited_replies_are_counted_not_dropped() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let server = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().expect("accept");
        let mut buf = Vec::new();
        // Legitimate handshake.
        assert!(wire::read_frame(&mut sock, &mut buf).expect("hello"));
        wire::decode_hello(&buf).expect("hello frame");
        wire::encode_hello_ok(&mut buf);
        wire::write_frame(&mut sock, &buf).expect("hello_ok");
        // Three unsolicited frames under ids the client never issued
        // (client ids start at 0 and nothing was submitted).
        for id in [900u64, 901] {
            wire::encode_reply(&mut buf, id, &Err(ServeError::DeadlineExceeded));
            wire::write_frame(&mut sock, &buf).expect("unsolicited reply");
        }
        wire::encode_stats_reply(&mut buf, 902, &Telemetry::default().snapshot());
        wire::write_frame(&mut sock, &buf).expect("unsolicited stats");
        // Keep the socket open until the client has seen all three (the
        // client drop path closes it from the other side).
        let _ = wire::read_frame(&mut sock, &mut buf);
    });

    let client = TealClient::connect(addr).expect("connect");
    // The reader thread processes the three rogue frames asynchronously;
    // poll with a bound instead of sleeping an arbitrary fixed time.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while client.unmatched_replies() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "only {} of 3 unsolicited frames counted after 10s",
            client.unmatched_replies()
        );
        std::thread::yield_now();
    }
    assert_eq!(client.unmatched_replies(), 3);

    drop(client);
    server.join().expect("mock server");
}

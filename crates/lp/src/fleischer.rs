//! Fleischer-style (Garg-Könemann) approximation of the max-multicommodity
//! flow over precomputed paths.
//!
//! §2.1 of the paper discusses combinatorial approximation algorithms as a
//! TE-acceleration candidate and observes that "these algorithms remain
//! iterative in nature ... which often results in an excess of iterations to
//! terminate". This implementation exists to reproduce that comparison: it
//! is asymptotically cheaper than an LP solve but needs many multiplicative-
//! weights iterations for tight guarantees.
//!
//! Demand caps are handled with the standard pseudo-edge trick: each demand
//! contributes a private "edge" of capacity equal to its volume that all of
//! its candidate paths cross, turning the demand constraint into one more
//! capacity constraint.

use crate::problem::{Allocation, TeInstance};

/// Result metadata for a Fleischer run.
#[derive(Clone, Copy, Debug)]
pub struct FleischerReport {
    /// Multiplicative-weights routing steps executed.
    pub steps: usize,
    /// Approximation parameter ε used.
    pub epsilon: f64,
}

/// Approximate max total flow with accuracy parameter `epsilon` (smaller is
/// more accurate and slower). `max_steps` bounds the run time.
pub fn solve(inst: &TeInstance, epsilon: f64, max_steps: usize) -> (Allocation, FleischerReport) {
    assert!(epsilon > 0.0 && epsilon < 1.0);
    let k = inst.k();
    let nd = inst.num_demands();
    let ne = inst.topo.num_edges();

    // Capacities: real edges then one pseudo-edge per demand.
    let caps: Vec<f64> = inst
        .topo
        .edges()
        .iter()
        .map(|e| e.capacity)
        .chain((0..nd).map(|d| inst.tm.demand(d)))
        .collect();
    let m = caps.len();
    let delta = (1.0 + epsilon) / ((1.0 + epsilon) * m as f64).powf(1.0 / epsilon);

    // Length (dual) per capacity entity.
    let mut length: Vec<f64> = caps
        .iter()
        .map(|&c| if c > 0.0 { delta / c } else { f64::INFINITY })
        .collect();
    // Raw (unscaled) flow routed per path slot.
    let mut raw = vec![0.0f64; inst.paths.num_paths()];

    let path_cost = |p: usize, length: &[f64]| -> f64 {
        let d = p / k;
        let mut cost = length[ne + d];
        for &e in &inst.paths.paths()[p].edges {
            cost += length[e];
        }
        cost
    };
    let path_min_cap = |p: usize| -> f64 {
        let d = p / k;
        let mut c = inst.tm.demand(d);
        for &e in &inst.paths.paths()[p].edges {
            c = c.min(inst.topo.edge(e).capacity);
        }
        c
    };

    let mut steps = 0usize;
    // Phase over demands (Fleischer's round-robin) until every demand's
    // cheapest candidate path has length >= 1.
    let mut progress = true;
    while progress && steps < max_steps {
        progress = false;
        for d in 0..nd {
            if inst.tm.demand(d) <= 0.0 {
                continue;
            }
            loop {
                if steps >= max_steps {
                    break;
                }
                // Cheapest candidate path for this demand.
                let (pbest, cost) = (0..k)
                    .map(|j| {
                        let p = d * k + j;
                        (p, path_cost(p, &length))
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                if cost >= 1.0 || !cost.is_finite() {
                    break;
                }
                progress = true;
                steps += 1;
                let amount = path_min_cap(pbest);
                if amount <= 0.0 {
                    break;
                }
                raw[pbest] += amount;
                // Multiplicative length updates along the path + pseudo-edge.
                for &e in &inst.paths.paths()[pbest].edges {
                    let c = inst.topo.edge(e).capacity;
                    if c > 0.0 {
                        length[e] *= 1.0 + epsilon * amount / c;
                    }
                }
                let dc = inst.tm.demand(d);
                length[ne + d] *= 1.0 + epsilon * amount / dc;
            }
        }
    }

    // Scale raw flows down by log_{1+eps}(1/delta) to restore feasibility,
    // then convert to split ratios and clamp into the demand simplex.
    let scale = (1.0 / delta).ln() / (1.0 + epsilon).ln();
    let mut splits = vec![0.0f64; raw.len()];
    for (p, &f) in raw.iter().enumerate() {
        let d = p / k;
        let vol = inst.tm.demand(d);
        if vol > 0.0 && scale > 0.0 {
            splits[p] = f / scale / vol;
        }
    }
    let mut alloc = Allocation::from_splits(k, splits);
    alloc.project_demand_constraints();
    (alloc, FleischerReport { steps, epsilon })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::evaluate;
    use crate::pathlp::{solve_lp, LpConfig};
    use crate::problem::Objective;
    use teal_topology::{PathSet, Topology};
    use teal_traffic::TrafficMatrix;

    fn diamond() -> Topology {
        let mut t = Topology::new("d", 4);
        t.add_link(0, 1, 10.0, 1.0);
        t.add_link(1, 3, 10.0, 1.0);
        t.add_link(0, 2, 10.0, 1.5);
        t.add_link(2, 3, 10.0, 1.5);
        t.add_link(0, 3, 5.0, 4.0);
        t
    }

    #[test]
    fn approximates_lp_optimum() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize), (1usize, 2usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![30.0, 8.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let (opt_alloc, _) = solve_lp(&inst, Objective::TotalFlow, &LpConfig::default());
        let opt = evaluate(&inst, &opt_alloc).realized_flow;
        let (fl_alloc, report) = solve(&inst, 0.05, 1_000_000);
        let fl = evaluate(&inst, &fl_alloc).realized_flow;
        assert!(
            fl > 0.8 * opt,
            "fleischer {fl} vs optimal {opt} ({report:?})"
        );
        assert!(fl_alloc.demand_feasible(1e-9));
    }

    #[test]
    fn more_accuracy_needs_more_steps() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![30.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let (_, coarse) = solve(&inst, 0.4, 1_000_000);
        let (_, fine) = solve(&inst, 0.05, 1_000_000);
        assert!(
            fine.steps > coarse.steps,
            "fine {} vs coarse {} steps",
            fine.steps,
            coarse.steps
        );
    }

    #[test]
    fn zero_demand_handled() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![0.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let (alloc, _) = solve(&inst, 0.1, 1000);
        assert!(alloc.splits().iter().all(|&v| v == 0.0));
    }
}

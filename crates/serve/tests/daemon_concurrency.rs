//! The acceptance test of the serving daemon: ≥ 64 concurrent requests
//! across ≥ 2 topologies, answered identically (1e-6) to sequential
//! `ServingContext` calls, with a mid-run hot weight swap that drops no
//! response and mixes no weights. Plus property tests that coalesced
//! responses match the direct path under concurrent submission.

use proptest::prelude::*;
use std::sync::Arc;
use teal_core::{EngineConfig, Env, PolicyModel, ServingContext, TealConfig, TealModel};
use teal_lp::Allocation;
use teal_serve::{ModelRegistry, ServeConfig, ServeDaemon, SubmitRequest};
use teal_topology::{generate, TopoKind};
use teal_traffic::TrafficMatrix;

/// Fast model config for tests (3 GNN layers instead of 6).
fn model_cfg(seed: u64) -> TealConfig {
    TealConfig {
        gnn_layers: 3,
        seed,
        ..TealConfig::default()
    }
}

fn context(env: &Arc<Env>, seed: u64) -> ServingContext<TealModel> {
    ServingContext::new(
        TealModel::new(Arc::clone(env), model_cfg(seed)),
        EngineConfig::paper_default(env.topo().num_nodes()),
    )
}

/// Max |split difference| between two allocations.
fn max_diff(a: &Allocation, b: &Allocation) -> f64 {
    a.splits()
        .iter()
        .zip(b.splits())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

#[test]
fn sixty_four_concurrent_requests_two_topologies_with_hot_swap() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 8; // 64 requests total in the first wave

    let env_b4 = Arc::new(Env::for_topology(teal_topology::b4()));
    let env_swan = Arc::new(Env::for_topology(generate(TopoKind::Swan, 0.3, 7)));

    // References: the weights serving "b4" before and after the swap, and
    // the (never-swapped) "swan" weights.
    let ref_b4_old = context(&env_b4, 0);
    let donor = TealModel::new(Arc::clone(&env_b4), model_cfg(42));
    let ckpt = teal_nn::checkpoint::to_string(donor.store());
    let ref_b4_new = ref_b4_old
        .with_checkpoint_str(&ckpt)
        .expect("reference swap");
    let ref_swan = context(&env_swan, 5);

    // Per-request traffic: distinct matrices so coalescing mistakes
    // (reordered or crossed responses) cannot cancel out.
    let tms_b4: Vec<TrafficMatrix> = (0..THREADS * PER_THREAD)
        .map(|i| TrafficMatrix::new(vec![4.0 + 3.0 * i as f64; env_b4.num_demands()]))
        .collect();
    let tms_swan: Vec<TrafficMatrix> = (0..THREADS * PER_THREAD)
        .map(|i| TrafficMatrix::new(vec![2.0 + 5.0 * i as f64; env_swan.num_demands()]))
        .collect();
    let seq_b4_old: Vec<Allocation> = tms_b4.iter().map(|tm| ref_b4_old.allocate(tm).0).collect();
    let seq_b4_new: Vec<Allocation> = tms_b4.iter().map(|tm| ref_b4_new.allocate(tm).0).collect();
    let seq_swan: Vec<Allocation> = tms_swan.iter().map(|tm| ref_swan.allocate(tm).0).collect();
    // The swap must be observable, or "old OR new" proves nothing.
    assert!(
        max_diff(&seq_b4_old[0], &seq_b4_new[0]) > 1e-6,
        "donor weights indistinguishable from the originals"
    );

    let registry = ModelRegistry::new();
    registry.insert("b4", context(&env_b4, 0));
    registry.insert("swan", context(&env_swan, 5));
    let daemon = ServeDaemon::start(registry, ServeConfig::default());

    // Wave 1: 64 requests from 8 threads, alternating topologies, with a
    // hot swap of the b4 weights racing the traffic.
    let results: Vec<(usize, bool, Allocation, usize)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let daemon = &daemon;
            let tms_b4 = &tms_b4;
            let tms_swan = &tms_swan;
            handles.push(s.spawn(move || {
                let mut out = Vec::new();
                for j in 0..PER_THREAD {
                    let i = t * PER_THREAD + j;
                    let (topo, tm) = if i.is_multiple_of(2) {
                        ("b4", tms_b4[i].clone())
                    } else {
                        ("swan", tms_swan[i].clone())
                    };
                    let reply = daemon.allocate(topo, tm).expect("request dropped");
                    assert!(reply.batch_size >= 1);
                    out.push((i, topo == "b4", reply.allocation, reply.batch_size));
                }
                out
            }));
        }
        let swapper = s.spawn(|| {
            // Land the swap in the middle of the wave.
            std::thread::sleep(std::time::Duration::from_millis(5));
            daemon
                .registry()
                .swap_checkpoint_str("b4", &ckpt)
                .expect("hot swap failed");
        });
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        swapper.join().expect("swap thread");
        all
    });

    assert_eq!(
        results.len(),
        THREADS * PER_THREAD,
        "a response was dropped"
    );
    let mut coalesced = 0usize;
    for (i, is_b4, alloc, batch_size) in &results {
        if *is_b4 {
            // Old weights or new weights — never a mixture, never crossed.
            let d_old = max_diff(alloc, &seq_b4_old[*i]);
            let d_new = max_diff(alloc, &seq_b4_new[*i]);
            assert!(
                d_old <= 1e-6 || d_new <= 1e-6,
                "request {i}: diff {d_old:.2e} vs old, {d_new:.2e} vs new — mixed weights?"
            );
        } else {
            let d = max_diff(alloc, &seq_swan[*i]);
            assert!(d <= 1e-6, "swan request {i}: diff {d:.2e} vs sequential");
        }
        if *batch_size > 1 {
            coalesced += 1;
        }
    }

    // Wave 2: the swap has returned, so every new b4 response must serve
    // the new weights exactly.
    for i in 0..8 {
        let reply = daemon.allocate("b4", tms_b4[i].clone()).expect("post-swap");
        let d = max_diff(&reply.allocation, &seq_b4_new[i]);
        assert!(
            d <= 1e-6,
            "post-swap request {i} not on new weights ({d:.2e})"
        );
    }

    let stats = daemon.stats();
    assert_eq!(stats.completed, (THREADS * PER_THREAD + 8) as u64);
    assert_eq!(stats.queue_depth, 0);
    let b4_stats = stats
        .per_topology
        .iter()
        .find(|t| t.topology == "b4")
        .expect("b4 telemetry");
    assert!(b4_stats.p50 <= b4_stats.p99);
    assert!(b4_stats.p99 > std::time::Duration::ZERO);
    // On any scheduler some portion of 64 near-simultaneous requests must
    // have shared a forward pass; log it for the curious.
    eprintln!(
        "coalesced {coalesced}/{} requests; mean batch {:.2}; b4 p50 {:?} p99 {:?}",
        results.len(),
        stats.mean_batch_size(),
        b4_stats.p50,
        b4_stats.p99
    );
}

#[test]
fn unknown_topology_is_an_error_not_a_hang() {
    let registry: ModelRegistry<TealModel> = ModelRegistry::new();
    let daemon = ServeDaemon::with_defaults(registry);
    let tm = TrafficMatrix::new(vec![1.0; 10]);
    match daemon.allocate("nowhere", tm) {
        Err(teal_serve::ServeError::UnknownTopology(id)) => assert_eq!(id, "nowhere"),
        other => panic!("expected UnknownTopology, got {other:?}"),
    }
}

#[test]
fn malformed_request_errors_without_killing_the_daemon() {
    let env = Arc::new(Env::for_topology(teal_topology::b4()));
    let registry = ModelRegistry::new();
    registry.insert("b4", context(&env, 0));
    // Generous linger so the back-to-back submissions below always land in
    // one drain, even if a loaded CI runner preempts this thread mid-burst
    // (the batch_size assertion depends on the four sharing a chunk).
    let daemon = ServeDaemon::start(
        registry,
        ServeConfig {
            linger: std::time::Duration::from_secs(1),
            ..ServeConfig::default()
        },
    );
    let good_tm = TrafficMatrix::new(vec![12.0; env.num_demands()]);
    let bad_tm = TrafficMatrix::new(vec![1.0; 3]); // wrong demand count

    // Three good requests and a bad one share the drain; the offender must
    // be evicted by index and the innocents re-batched together — not
    // serialized into singletons, and not failed.
    let goods: Vec<_> = (0..3)
        .map(|_| daemon.submit(SubmitRequest::new("b4", good_tm.clone())))
        .collect();
    let bad = daemon.submit(SubmitRequest::new("b4", bad_tm));
    for good in goods {
        let reply = good
            .wait()
            .expect("well-formed request must survive the batch");
        assert_eq!(
            reply.batch_size, 3,
            "innocent requests must be re-batched after evicting the offender"
        );
    }
    match bad.wait() {
        // The engine's `AllocError` diagnosis (not a caught-panic message)
        // must reach the client: a malformed matrix is a typed per-request
        // error, so assert the arity explanation survived.
        Err(teal_serve::ServeError::BadRequest(msg)) => {
            assert!(
                msg.contains("demands"),
                "expected the engine's arity diagnosis, got {msg:?}"
            );
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The dispatcher must still be alive and serving.
    daemon
        .allocate("b4", good_tm)
        .expect("daemon died after a malformed request");
}

#[test]
fn racing_submit_and_shutdown_never_strands_a_ticket() {
    // The submit/shutdown race: a request that passes the shutdown check
    // concurrently with `shutdown()` being set must never be enqueued after
    // a shard's final drain and dropped without a response. After shutdown
    // and all submitters have returned, every ticket must already hold a
    // reply — a served allocation or a typed `ShuttingDown` — never hang.
    const THREADS: usize = 6;
    const PER_THREAD: usize = 20;
    for round in 0..3u64 {
        let env = Arc::new(Env::for_topology(teal_topology::b4()));
        let registry = ModelRegistry::new();
        registry.insert("b4", context(&env, round));
        let daemon = ServeDaemon::start(
            registry,
            ServeConfig {
                linger: std::time::Duration::ZERO,
                ..ServeConfig::default()
            },
        );
        let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
        let (mut served, mut refused) = (0usize, 0usize);
        std::thread::scope(|s| {
            let daemon = &daemon;
            let tm = &tm;
            let mut handles = Vec::new();
            for _ in 0..THREADS {
                handles.push(s.spawn(move || {
                    (0..PER_THREAD)
                        .map(|_| daemon.submit(SubmitRequest::new("b4", tm.clone())))
                        .collect::<Vec<_>>()
                }));
            }
            // Land the shutdown mid-storm, racing the submits above.
            let stopper = s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                daemon.shutdown();
            });
            let tickets: Vec<_> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("submitter thread"))
                .collect();
            stopper.join().expect("shutdown thread");
            // Shutdown has returned and no submitter is in flight: a
            // correct daemon has already fulfilled every single slot.
            for (i, t) in tickets.iter().enumerate() {
                assert!(t.is_ready(), "round {round}: ticket {i} stranded");
            }
            for t in tickets {
                match t.wait() {
                    Ok(_) => served += 1,
                    Err(teal_serve::ServeError::ShuttingDown) => refused += 1,
                    Err(e) => panic!("round {round}: unexpected error {e}"),
                }
            }
        });
        assert_eq!(served + refused, THREADS * PER_THREAD);
        let stats = daemon.stats();
        assert_eq!(stats.queue_depth, 0, "round {round}: queue gauge leaked");
        eprintln!("round {round}: served {served}, refused {refused}");
    }
}

#[test]
fn shutdown_serves_queued_requests_then_rejects() {
    let env = Arc::new(Env::for_topology(teal_topology::b4()));
    let registry = ModelRegistry::new();
    registry.insert("b4", context(&env, 0));
    let daemon = ServeDaemon::with_defaults(registry);
    let tm = TrafficMatrix::new(vec![10.0; env.num_demands()]);
    let tickets: Vec<_> = (0..4)
        .map(|_| daemon.submit(SubmitRequest::new("b4", tm.clone())))
        .collect();
    daemon.shutdown();
    for t in tickets {
        t.wait().expect("queued request dropped by shutdown");
    }
    assert!(matches!(
        daemon.allocate("b4", tm),
        Err(teal_serve::ServeError::ShuttingDown)
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Coalesced daemon responses equal direct `ServingContext::allocate`
    /// for the same matrices, under concurrent submission from 4 threads
    /// and randomized traffic, linger windows, and batch caps.
    #[test]
    fn coalesced_equals_direct_under_concurrency(
        seed in 0u64..1000,
        scale in 1.0f64..80.0,
        max_batch in 1usize..24,
        linger_us in 0u64..400,
    ) {
        let env = Arc::new(Env::for_topology(teal_topology::b4()));
        let ctx = context(&env, seed % 3);
        let tms: Vec<TrafficMatrix> = (0..12)
            .map(|i| {
                TrafficMatrix::new(
                    (0..env.num_demands())
                        .map(|d| scale * (1.0 + ((seed as usize + d * 7 + i * 13) % 10) as f64))
                        .collect(),
                )
            })
            .collect();
        let direct: Vec<Allocation> = tms.iter().map(|tm| ctx.allocate(tm).0).collect();

        let registry = ModelRegistry::new();
        registry.insert("b4", context(&env, seed % 3));
        let daemon = ServeDaemon::start(
            registry,
            ServeConfig {
                max_batch,
                linger: std::time::Duration::from_micros(linger_us),
                queue_capacity: 64,
                ..ServeConfig::default()
            },
        );
        let served: Vec<(usize, Allocation)> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..4 {
                let daemon = &daemon;
                let tms = &tms;
                handles.push(s.spawn(move || {
                    let mut out = Vec::new();
                    for (i, tm) in tms.iter().enumerate().filter(|(i, _)| i % 4 == t) {
                        out.push((i, daemon.allocate("b4", tm.clone()).expect("served").allocation));
                    }
                    out
                }));
            }
            handles.into_iter().flat_map(|h| h.join().expect("client")).collect()
        });
        prop_assert_eq!(served.len(), tms.len());
        for (i, alloc) in &served {
            let d = max_diff(alloc, &direct[*i]);
            prop_assert!(d <= 1e-6, "request {} diverged from direct path: {:.2e}", i, d);
        }
    }
}

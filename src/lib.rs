//! # teal — Learning-Accelerated WAN Traffic Engineering
//!
//! A from-scratch Rust reproduction of *Teal: Learning-Accelerated
//! Optimization of WAN Traffic Engineering* (SIGCOMM 2023): a flow-centric
//! graph neural network (FlowGNN) feeding a shared per-demand policy network
//! trained with multi-agent reinforcement learning (COMA*), fine-tuned by a
//! few parallel ADMM iterations.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`nn`] — tensors, autograd, optimizers (the PyTorch/GPU substitute);
//! * [`topology`] — WAN graphs, generators, k-shortest paths;
//! * [`traffic`] — synthetic heavy-tailed traffic matrices;
//! * [`lp`] — the TE problem, simplex / ADMM / Fleischer solvers, and
//!   feasible-flow semantics;
//! * [`core`] — Teal itself: FlowGNN, COMA*, the deployment engine;
//! * [`baselines`] — LP-top, NCFlow, POP, TEAVAR*;
//! * [`sim`] — the online/offline evaluation harness;
//! * [`serve`] — the multi-topology serving daemon (micro-batching
//!   coalescer, hot model-weight swap, latency telemetry).
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use teal::core::{train_coma, ComaConfig, Env, EngineConfig, TealConfig, TealEngine, TealModel};
//! use teal::topology::b4;
//! use teal::traffic::{TrafficConfig, TrafficModel};
//!
//! // 1. Topology + candidate paths.
//! let env = Arc::new(Env::for_topology(b4()));
//! // 2. Traffic.
//! let mut traffic = TrafficModel::new(&env.topo().all_pairs(), TrafficConfig::default(), 0);
//! traffic.calibrate(env.topo(), env.paths());
//! let train = traffic.series(0, 32);
//! let val = traffic.series(32, 8);
//! // 3. Train.
//! let mut model = TealModel::new(Arc::clone(&env), TealConfig::default());
//! train_coma(&mut model, &train, &val, &ComaConfig::default());
//! // 4. Deploy: one forward pass + 2 ADMM iterations per traffic matrix.
//! let engine = TealEngine::new(model, EngineConfig::paper_default(12));
//! let tm = traffic.series(40, 1).remove(0);
//! let (allocation, elapsed) = engine.allocate(&tm);
//! println!("allocated {} demands in {:?}", allocation.num_demands(), elapsed);
//! ```
//!
//! ## Unsafe inventory & correctness tooling
//!
//! The workspace's `unsafe` is confined to two hot-path idioms, both in the
//! compute crates and both instrumented:
//!
//! * **Lifetime-erased pool jobs** (`teal_nn::pool`): kernels hand the
//!   worker pool a borrowed `&dyn Fn(usize)` whose lifetime is erased to
//!   cross the thread boundary. Soundness rests on the submit path not
//!   returning until every claimed chunk settled (the `done`-count/condvar
//!   protocol), which is exactly what the loom model checker exercises.
//! * **Disjoint-chunk `&mut` reconstruction** (`teal_nn::par::RawChunks`,
//!   `teal_lp`'s ADMM `TileBuf`): a mutable buffer is split into
//!   non-overlapping `(start, len)` regions, each rebuilt as a `&mut [f64]`
//!   by exactly one tile. In debug builds (and under `--cfg teal_check`)
//!   every handed-out range is recorded and checked — an overlapping or
//!   out-of-bounds region panics at the hand-out site instead of silently
//!   aliasing a neighbor tile.
//!
//! Everything else forbids `unsafe` outright (`#![forbid(unsafe_code)]` in
//! `teal-topology`, `teal-traffic`, `teal-core`, `teal-baselines`,
//! `teal-sim`, `teal-bench`, `teal-serve`, and this crate), and
//! `unsafe_op_in_unsafe_fn` is denied workspace-wide.
//!
//! Three layers of tooling keep this inventory honest:
//!
//! 1. **`cargo xtask lint`** — an offline source pass over the workspace
//!    (no network, no nightly): every `unsafe` block/impl must carry a
//!    `// SAFETY:` comment; non-test `teal-serve` code may not call
//!    `unwrap()`/`expect()` (the `crate::sync` facade returns guards
//!    directly) or read the clock outside `telemetry::now()`; modules
//!    marked `// teal-lint: checked-sync` may not import `std::sync`
//!    directly; and zero-unsafe crates must keep their `forbid` attribute.
//!    The allowlist (`xtask-lint-allow.txt`) ships empty and is expected
//!    to stay that way.
//! 2. **Model checking** (`vendor/loom` + `RUSTFLAGS="--cfg teal_loom"
//!    cargo test -p teal-serve --test model_check`) — a miniature
//!    loom-style checker (token-passing scheduler, exhaustive DFS over
//!    interleavings, bounded preemptions, seed-replayable failing
//!    schedules) that exhaustively explores the serving stack's real race
//!    protocols: WFQ one-ahead reservation, submit-vs-shutdown, and the
//!    client's register-before-send slot protocol. Each model test also
//!    runs a seeded mutant of its protocol and asserts the checker kills
//!    it.
//! 3. **Checked-unsafe instrumentation** (`debug_assertions`/`teal_check`)
//!    — the range trackers described above, plus construction-time
//!    disjointness asserts on `RawChunks`.

// This umbrella crate only re-exports; the audited unsafe lives in
// `teal-nn`/`teal-lp` per the inventory above.
#![forbid(unsafe_code)]

pub use teal_baselines as baselines;
pub use teal_core as core;
pub use teal_lp as lp;
pub use teal_nn as nn;
pub use teal_serve as serve;
pub use teal_sim as sim;
pub use teal_topology as topology;
pub use teal_traffic as traffic;

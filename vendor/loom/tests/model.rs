//! The model checker checking itself: known-racy programs must fail with a
//! schedule, correct ones must pass while exploring every interleaving.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

/// A classic lost update (load + store, not fetch_add) must be found.
#[test]
fn detects_lost_update() {
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::clone(&a);
            let t = loom::thread::spawn(move || {
                let v = b.load(Ordering::SeqCst);
                b.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            t.join().unwrap_or_else(|_| panic!("child panicked"));
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        });
    });
    assert!(result.is_err(), "the interleaved lost update was not found");
}

/// The same increment under a mutex is correct in every interleaving, and
/// two threads with two operations each must explore more than one
/// schedule.
#[test]
fn mutex_protects_the_update() {
    let report = loom::model(|| {
        let a = Arc::new(Mutex::new(0usize));
        let b = Arc::clone(&a);
        let t = loom::thread::spawn(move || *b.lock() += 1);
        *a.lock() += 1;
        t.join().unwrap_or_else(|_| panic!("child panicked"));
        assert_eq!(*a.lock(), 2);
    });
    assert!(
        report.complete,
        "exploration must exhaust the schedule tree"
    );
    assert!(
        report.executions > 1,
        "expected multiple interleavings, got {}",
        report.executions
    );
}

/// Opposite lock orders deadlock in some schedule; the checker must say so
/// rather than hang.
#[test]
fn detects_ab_ba_deadlock() {
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = loom::thread::spawn(move || {
                let _g1 = b2.lock();
                let _g2 = a2.lock();
            });
            let _g1 = a.lock();
            let _g2 = b.lock();
            drop(_g2);
            drop(_g1);
            let _ = t.join();
        });
    });
    assert!(result.is_err(), "the AB-BA deadlock was not found");
}

/// Condvar handoff: a consumer waiting for a produced value must see it in
/// every schedule — including the one where the producer notifies before
/// the consumer ever waits (the predicate re-check covers it).
#[test]
fn condvar_handoff_is_correct() {
    let report = loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let producer = Arc::clone(&pair);
        let t = loom::thread::spawn(move || {
            *producer.0.lock() = true;
            producer.1.notify_all();
        });
        let mut ready = pair.0.lock();
        while !*ready {
            ready = pair.1.wait(ready);
        }
        drop(ready);
        t.join().unwrap_or_else(|_| panic!("producer panicked"));
    });
    assert!(report.complete && report.executions > 1);
}

/// A waiter that can never be notified is a deadlock, not a hang.
#[test]
fn detects_missed_wakeup() {
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let flag = Arc::clone(&pair);
            // Mutant protocol: set the flag without holding the mutex and
            // notify before the waiter necessarily waits — in the schedule
            // where the notify lands first *and* the waiter misses the
            // flag... impossible here; instead: never notify at all.
            let t = loom::thread::spawn(move || {
                let _ = &flag; // producer forgets to notify
            });
            let mut ready = pair.0.lock();
            while !*ready {
                ready = pair.1.wait(ready);
            }
            drop(ready);
            let _ = t.join();
        });
    });
    assert!(result.is_err(), "the missed wakeup was not found");
}

/// The preemption bound caps exploration; unbounded explores strictly
/// more.
#[test]
fn preemption_bound_prunes() {
    fn body() -> impl Fn() + Send + Sync + 'static {
        || {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::clone(&a);
            let t = loom::thread::spawn(move || {
                b.fetch_add(1, Ordering::SeqCst);
                b.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            a.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap_or_else(|_| panic!("child panicked"));
            assert_eq!(a.load(Ordering::SeqCst), 4);
        }
    }
    let unbounded = loom::Builder::new().check(body());
    let bounded = loom::Builder {
        preemption_bound: Some(1),
        max_executions: 250_000,
    }
    .check(body());
    assert!(unbounded.complete && bounded.complete);
    assert!(
        bounded.executions < unbounded.executions,
        "bound {} !< unbounded {}",
        bounded.executions,
        unbounded.executions
    );
}

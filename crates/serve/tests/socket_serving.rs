//! The wire front end's acceptance test (ISSUE 5): a [`TealClient`] over
//! loopback TCP submits a mixed window — plain, deadline'd, and
//! failed-link requests — to a [`TealServer`] and gets allocations
//! **bitwise-equal** to direct [`ServingContext`] calls, with sheds and
//! expiries visible in the daemon's [`TelemetrySnapshot`].

use std::sync::Arc;
use std::time::Duration;
use teal_core::{EngineConfig, Env, ServingContext, TealConfig, TealModel};
use teal_serve::{
    ModelRegistry, ServeConfig, ServeDaemon, ServeError, SubmitRequest, TealClient, TealServer,
};
use teal_topology::{generate, TopoKind};
use teal_traffic::TrafficMatrix;

fn model_cfg(seed: u64) -> TealConfig {
    TealConfig {
        gnn_layers: 3,
        seed,
        ..TealConfig::default()
    }
}

fn context(env: &Arc<Env>, seed: u64) -> ServingContext<TealModel> {
    ServingContext::new(
        TealModel::new(Arc::clone(env), model_cfg(seed)),
        EngineConfig::paper_default(env.topo().num_nodes()),
    )
}

#[test]
fn mixed_window_over_loopback_matches_direct_context_bitwise() {
    let env_b4 = Arc::new(Env::for_topology(teal_topology::b4()));
    let env_swan = Arc::new(Env::for_topology(generate(TopoKind::Swan, 0.3, 7)));
    // Reference contexts: same seeds as the registry's, never served.
    let ref_b4 = context(&env_b4, 0);
    let ref_swan = context(&env_swan, 5);

    let registry = ModelRegistry::new();
    registry.insert("b4", context(&env_b4, 0));
    registry.insert("swan", context(&env_swan, 5));
    // Zero linger: each sequentially-awaited request forms a singleton
    // batch, so the daemon path runs the *identical* batched code the
    // direct `try_allocate_batch` reference runs — bitwise comparable.
    let daemon = Arc::new(ServeDaemon::start(
        registry,
        ServeConfig {
            linger: Duration::ZERO,
            ..ServeConfig::default()
        },
    ));
    let server = TealServer::bind(Arc::clone(&daemon), "127.0.0.1:0").expect("bind loopback");
    let client = TealClient::connect(server.local_addr()).expect("connect");

    let tm_b4 = |i: usize| TrafficMatrix::new(vec![4.0 + 3.0 * i as f64; env_b4.num_demands()]);
    let tm_swan = |i: usize| TrafficMatrix::new(vec![2.0 + 5.0 * i as f64; env_swan.num_demands()]);
    let failed_b4 = env_b4.topo().with_failed_link(0, 1);

    // --- Plain requests, both topologies.
    for i in 0..4 {
        let reply = client.allocate("b4", tm_b4(i)).expect("plain b4");
        let (want, _) = ref_b4
            .try_allocate_batch(std::slice::from_ref(&tm_b4(i)))
            .expect("direct");
        assert_eq!(
            reply.allocation, want[0],
            "plain b4 request {i} not bitwise-equal to direct context call"
        );
        let reply = client.allocate("swan", tm_swan(i)).expect("plain swan");
        let (want, _) = ref_swan
            .try_allocate_batch(std::slice::from_ref(&tm_swan(i)))
            .expect("direct");
        assert_eq!(reply.allocation, want[0], "plain swan request {i}");
    }

    // --- Deadline'd requests with room to spare: must serve identically.
    for i in 4..8 {
        let reply = client
            .submit(&SubmitRequest::new("b4", tm_b4(i)).with_deadline(Duration::from_secs(30)))
            .wait()
            .expect("deadline'd request with budget must serve");
        let (want, _) = ref_b4
            .try_allocate_batch(std::slice::from_ref(&tm_b4(i)))
            .expect("direct");
        assert_eq!(reply.allocation, want[0], "deadline'd b4 request {i}");
    }

    // --- Failed-link requests: the §5.3 recovery path, end to end over
    // TCP, bitwise-equal to the direct failure-override call.
    for i in 8..12 {
        let reply = client
            .submit(&SubmitRequest::new("b4", tm_b4(i)).with_failed_link(0, 1))
            .wait()
            .expect("failure-override request");
        let (want, _) = ref_b4
            .try_allocate_batch_on(&failed_b4, std::slice::from_ref(&tm_b4(i)))
            .expect("direct override");
        assert_eq!(
            reply.allocation, want[0],
            "failed-link b4 request {i} not bitwise-equal to try_allocate_batch_on"
        );
        // The failure really changed the answer, or this proves nothing.
        let (plain, _) = ref_b4
            .try_allocate_batch(std::slice::from_ref(&tm_b4(i)))
            .expect("direct plain");
        assert_ne!(reply.allocation, plain[0], "override had no effect");
    }

    // --- Admission control, visible over the wire: a zero budget sheds...
    match client
        .submit(&SubmitRequest::new("b4", tm_b4(0)).with_deadline(Duration::ZERO))
        .wait()
    {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("expected shed DeadlineExceeded, got {other:?}"),
    }
    // ...and a nonexistent failed link is a typed BadRequest.
    match client
        .submit(&SubmitRequest::new("b4", tm_b4(0)).with_failed_link(0, 11))
        .wait()
    {
        Err(ServeError::BadRequest(msg)) => {
            assert!(msg.contains("failed link"), "wrong diagnosis: {msg}")
        }
        other => panic!("expected BadRequest for bogus link, got {other:?}"),
    }
    // Unknown topology over the wire, too.
    match client.allocate("nowhere", tm_b4(0)) {
        Err(ServeError::UnknownTopology(id)) => assert_eq!(id, "nowhere"),
        other => panic!("expected UnknownTopology, got {other:?}"),
    }

    let stats = daemon.stats();
    assert!(stats.shed >= 1, "shed counter not visible: {stats:?}");
    assert_eq!(stats.queue_depth, 0);
    // 8 plain + 4 deadline'd + 4 failure served, plus the shed (counted —
    // it was admitted to accounting). Submit-time rejects (bad link,
    // unknown topology) are answered without ever entering the daemon, so
    // like the pre-wire daemon they don't count as completed requests.
    assert_eq!(stats.completed, 17, "telemetry miscounted: {stats:?}");
}

#[test]
fn pipelined_concurrent_clients_match_direct_to_tolerance() {
    // Coalesced windows (nonzero linger) under concurrent pipelined wire
    // clients: batched-vs-singleton may differ in float association, so
    // compare to the direct path at the workspace's standard 1e-6.
    const CLIENTS: usize = 3;
    const PER_CLIENT: usize = 16;
    let env = Arc::new(Env::for_topology(teal_topology::b4()));
    let ref_ctx = context(&env, 3);
    let registry = ModelRegistry::new();
    registry.insert("b4", context(&env, 3));
    let daemon = Arc::new(ServeDaemon::with_defaults(registry));
    let server = TealServer::bind(Arc::clone(&daemon), "127.0.0.1:0").expect("bind");

    let tms: Vec<TrafficMatrix> = (0..CLIENTS * PER_CLIENT)
        .map(|i| TrafficMatrix::new(vec![1.0 + 2.0 * i as f64; env.num_demands()]))
        .collect();
    let direct: Vec<_> = tms.iter().map(|tm| ref_ctx.allocate(tm).0).collect();

    let addr = server.local_addr();
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let tms = &tms;
            let direct = &direct;
            s.spawn(move || {
                // Each thread its own connection: connections must commute.
                let client = TealClient::connect(addr).expect("connect");
                let tickets: Vec<_> = (0..PER_CLIENT)
                    .map(|j| {
                        let i = c * PER_CLIENT + j;
                        (i, client.submit(&SubmitRequest::new("b4", tms[i].clone())))
                    })
                    .collect();
                for (i, t) in tickets {
                    let reply = t.wait().expect("pipelined request served");
                    let d = reply
                        .allocation
                        .splits()
                        .iter()
                        .zip(direct[i].splits())
                        .map(|(x, y)| (x - y).abs())
                        .fold(0.0f64, f64::max);
                    assert!(d <= 1e-6, "request {i} diverged from direct: {d:.2e}");
                }
            });
        }
    });

    let stats = daemon.stats();
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn drain_time_expiry_is_counted_and_typed() {
    // A request whose budget is spent by drain time must be answered
    // DeadlineExceeded (not served stale) and counted in the `expired`
    // telemetry gauge. A merely-tight deadline is no longer enough to
    // manufacture this: the deadline-capped linger fires the drain at the
    // budget midpoint and rescues it. Only an unmeetably small budget —
    // gone before the shard can even wake — still expires at drain.
    let env = Arc::new(Env::for_topology(teal_topology::b4()));
    let registry = ModelRegistry::new();
    registry.insert("b4", context(&env, 0));
    let daemon = Arc::new(ServeDaemon::start(
        registry,
        ServeConfig {
            linger: Duration::from_millis(80),
            max_batch: 64,
            ..ServeConfig::default()
        },
    ));
    let server = TealServer::bind(Arc::clone(&daemon), "127.0.0.1:0").expect("bind");
    let client = TealClient::connect(server.local_addr()).expect("connect");
    let tm = TrafficMatrix::new(vec![10.0; env.num_demands()]);

    // Pipeline: one doomed request (1ns budget) plus a plain one that
    // keeps the window honest.
    let doomed =
        client.submit(&SubmitRequest::new("b4", tm.clone()).with_deadline(Duration::from_nanos(1)));
    let healthy = client.submit(&SubmitRequest::new("b4", tm.clone()));
    match doomed.wait() {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("expected drain-time expiry, got {other:?}"),
    }
    healthy.wait().expect("plain request survives the window");

    let stats = daemon.stats();
    assert!(stats.expired >= 1, "expiry not counted: {stats:?}");
    assert_eq!(stats.queue_depth, 0, "expiry leaked the queue gauge");
}

#[test]
fn version_mismatch_is_refused_at_handshake() {
    let registry: ModelRegistry<TealModel> = ModelRegistry::new();
    let daemon = Arc::new(ServeDaemon::with_defaults(registry));
    let server = TealServer::bind(Arc::clone(&daemon), "127.0.0.1:0").expect("bind");

    use std::io::Read;
    use teal_serve::wire;
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    let mut hello = Vec::new();
    wire::encode_hello(&mut hello);
    let n = hello.len();
    hello[n - 2..].copy_from_slice(&(wire::VERSION + 1).to_le_bytes());
    wire::write_frame(&mut stream, &hello).expect("send bad hello");
    // The server must hang up instead of answering HELLO_OK.
    let mut rest = Vec::new();
    let got = stream.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(got, 0, "server answered a version-mismatched client");
}

//! Criterion bench: multi-matrix allocation throughput on B4 — the batched
//! serving path (`ServingContext::allocate_batch`: one set of matrix
//! products + parallel ADMM) versus the sequential per-matrix loop over
//! `TealEngine::allocate`. The acceptance bar for the batched-inference PR:
//! `batched` must beat `sequential_loop` on the same matrices.
//!
//! Run with `CRITERION_JSON_PATH=BENCH_throughput.json` to persist the
//! results the CI workflow publishes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use teal_core::{EngineConfig, Env, TealConfig, TealEngine, TealModel};
use teal_topology::b4;
use teal_traffic::{TrafficConfig, TrafficModel};

/// Matrices per throughput measurement.
const BATCH: usize = 16;

fn setup() -> (Arc<Env>, Vec<teal_traffic::TrafficMatrix>) {
    let env = Arc::new(Env::for_topology(b4()));
    let mut traffic = TrafficModel::new(&env.topo().all_pairs(), TrafficConfig::default(), 7);
    traffic.calibrate(env.topo(), env.paths());
    let tms = traffic.series(0, BATCH);
    (env, tms)
}

fn bench_throughput(c: &mut Criterion) {
    let (env, tms) = setup();
    let label = format!("B4x{BATCH}");
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Full pipeline: forward pass + warm-started ADMM fine-tuning.
    let engine = TealEngine::new(
        TealModel::new(Arc::clone(&env), TealConfig::default()),
        EngineConfig::paper_default(env.topo().num_nodes()),
    );
    group.bench_with_input(BenchmarkId::new("sequential_loop", &label), &(), |b, _| {
        b.iter(|| {
            let mut out = Vec::with_capacity(tms.len());
            for tm in &tms {
                out.push(engine.allocate(tm).0);
            }
            out
        })
    });
    group.bench_with_input(BenchmarkId::new("batched", &label), &(), |b, _| {
        b.iter(|| engine.allocate_batch(&tms).0)
    });

    // Model-only (no ADMM): isolates the batched-matmul effect.
    let model_only = TealEngine::new(
        TealModel::new(Arc::clone(&env), TealConfig::default()),
        EngineConfig::without_admm(teal_lp::Objective::TotalFlow),
    );
    group.bench_with_input(
        BenchmarkId::new("model_only_sequential", &label),
        &(),
        |b, _| {
            b.iter(|| {
                let mut out = Vec::with_capacity(tms.len());
                for tm in &tms {
                    out.push(model_only.allocate(tm).0);
                }
                out
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("model_only_batched", &label),
        &(),
        |b, _| b.iter(|| model_only.allocate_batch(&tms).0),
    );
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);

//! Vendored mini-loom: a deterministic, exhaustive model checker for the
//! workspace's synchronization protocols, in the loom/DPOR lineage (crates
//! are unreachable in this environment, so the tool is built in-repo like
//! the other `vendor/` shims).
//!
//! [`model`] runs a closure many times, once per distinct thread
//! interleaving. The closure uses the drop-in shims in [`sync`] and
//! [`thread`] instead of `std`; every visible operation (lock, unlock,
//! condvar wait/notify, atomic access, spawn, join) is a *scheduling
//! point* where exactly one runnable thread is chosen to proceed. The
//! scheduler explores the choice tree depth-first, so over the whole run
//! every interleaving (up to the optional preemption bound) is executed
//! exactly once. Assertion failures and deadlocks in **any** explored
//! schedule fail the model with a replayable schedule string.
//!
//! Model of concurrency: sequential consistency. Memory `Ordering`
//! arguments are accepted and ignored — every shim operation is executed
//! under one global token, which is stronger than any real ordering, so a
//! property that fails here fails on real hardware, while relaxed-memory
//! bugs are out of scope (the workspace's protocols are all lock/condvar
//! shaped plus SeqCst-tolerant flags). Condvars never wake spuriously, and
//! `wait_timeout` "times out" immediately after one scheduling point (no
//! model of time) — both explored behaviors are subsets of what std
//! permits, so positive verdicts are about the schedules actually run.
//!
//! Replaying a failure: a failed model prints `schedule: 0.0.1.2...` — the
//! dotted decision indices of the failing interleaving. Re-run the same
//! test with `TEAL_LOOM_REPLAY=<that string>` to execute only that
//! schedule (e.g. under a debugger or with extra logging).
//!
//! ```
//! use loom::sync::{Arc, Mutex};
//!
//! let report = loom::model(|| {
//!     let a = Arc::new(Mutex::new(0u32));
//!     let b = Arc::clone(&a);
//!     let t = loom::thread::spawn(move || *b.lock() += 1);
//!     *a.lock() += 1;
//!     t.join().unwrap_or_else(|_| panic!("child panicked"));
//!     assert_eq!(*a.lock(), 2);
//! });
//! assert!(report.executions >= 2);
//! ```

mod rt;
pub mod sync;
pub mod thread;

pub use rt::{Builder, Report};

/// Exhaustively model-check `f` with the default [`Builder`]. Panics with a
/// replayable schedule if any interleaving fails; returns the exploration
/// [`Report`] otherwise.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

//! Seeded topology generators reproducing the five evaluation networks.
//!
//! The paper evaluates on B4, SWAN, UsCarrier, Kdl and an AS-level "ASN"
//! graph (Table 1). The raw files for three of these are external data we do
//! not ship (Topology Zoo, CAIDA) and SWAN is private, so each generator
//! synthesizes a graph matching the published structural profile:
//!
//! * **B4** — the public 12-node / 19-link inter-datacenter WAN, hardcoded;
//! * **SWAN-like** — O(100) nodes, moderate-diameter geometric graph;
//! * **UsCarrier-like / Kdl-like** — sparse, chain-like carrier networks
//!   generated on a long thin strip (Euclidean MST + shortcut links), which
//!   reproduces their unusually high diameters (35 and 58 in Table 3);
//! * **ASN-like** — interconnected star clusters (hub-and-spoke ASes with a
//!   dense hub mesh), reproducing the low diameter (8) despite 1,739 nodes.
//!
//! Every generator accepts a `scale` in (0, 1] that shrinks the node count
//! while preserving structure, so the full pipeline (training included) can
//! run on CPU within a session; the benchmark harness records the scale used.

use crate::graph::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which evaluation network to synthesize.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopoKind {
    /// Google's B4 (12 nodes, 19 links) — exact, not scaled.
    B4,
    /// Microsoft SWAN-like (O(100) nodes).
    Swan,
    /// Topology-Zoo UsCarrier-like (158 nodes, 189 links).
    UsCarrier,
    /// Topology-Zoo Kdl-like (754 nodes, 895 links).
    Kdl,
    /// CAIDA AS-level-like (1,739 nodes, 4,279 links, star clusters).
    Asn,
}

impl TopoKind {
    /// All five evaluation networks, in the paper's size order.
    pub fn all() -> [TopoKind; 5] {
        [
            TopoKind::B4,
            TopoKind::Swan,
            TopoKind::UsCarrier,
            TopoKind::Kdl,
            TopoKind::Asn,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            TopoKind::B4 => "B4",
            TopoKind::Swan => "SWAN",
            TopoKind::UsCarrier => "UsCarrier",
            TopoKind::Kdl => "Kdl",
            TopoKind::Asn => "ASN",
        }
    }

    /// Full-scale node count from Table 1 (SWAN uses 100 for "O(100)").
    pub fn full_nodes(&self) -> usize {
        match self {
            TopoKind::B4 => 12,
            TopoKind::Swan => 100,
            TopoKind::UsCarrier => 158,
            TopoKind::Kdl => 754,
            TopoKind::Asn => 1739,
        }
    }

    /// Full-scale undirected link count (Table 1 counts directed edges;
    /// these are half of those figures).
    pub fn full_links(&self) -> usize {
        match self {
            TopoKind::B4 => 19,
            TopoKind::Swan => 150,
            TopoKind::UsCarrier => 189,
            TopoKind::Kdl => 895,
            TopoKind::Asn => 4279,
        }
    }
}

/// Generate a topology of the given kind at `scale` in (0, 1].
pub fn generate(kind: TopoKind, scale: f64, seed: u64) -> Topology {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    match kind {
        TopoKind::B4 => b4(),
        TopoKind::Swan => {
            geometric_square("SWAN", scaled(kind, scale), link_target(kind, scale), seed)
        }
        TopoKind::UsCarrier => geometric_strip(
            "UsCarrier",
            scaled(kind, scale),
            link_target(kind, scale),
            4.5,
            0.22,
            seed,
        ),
        TopoKind::Kdl => geometric_strip(
            "Kdl",
            scaled(kind, scale),
            link_target(kind, scale),
            4.5,
            0.12,
            seed,
        ),
        TopoKind::Asn => star_clusters("ASN", scaled(kind, scale), link_target(kind, scale), seed),
    }
}

fn scaled(kind: TopoKind, scale: f64) -> usize {
    ((kind.full_nodes() as f64 * scale).round() as usize).max(6)
}

fn link_target(kind: TopoKind, scale: f64) -> usize {
    let n = scaled(kind, scale);
    // Preserve the full-scale link/node ratio.
    let ratio = kind.full_links() as f64 / kind.full_nodes() as f64;
    ((n as f64 * ratio).round() as usize).max(n)
}

/// Sample a link capacity: log-uniform over [100, 400] units, quantized to
/// 25 to mimic discrete circuit sizes.
fn sample_capacity(rng: &mut StdRng) -> f64 {
    let lo: f64 = 100.0;
    let hi: f64 = 400.0;
    let u: f64 = rng.gen();
    let c = lo * (hi / lo).powf(u);
    (c / 25.0).round() * 25.0
}

/// Google's B4 WAN: 12 datacenter sites, 19 inter-site links, per the
/// published topology figure. Capacities are deterministic so B4 experiments
/// are exactly reproducible without a seed.
pub fn b4() -> Topology {
    let mut t = Topology::new("B4", 12);
    // Approximate site coordinates (used only for latency weights).
    let coords = [
        (0.0, 2.0), // 0
        (0.5, 1.0), // 1
        (1.0, 2.5), // 2
        (1.5, 1.5), // 3
        (2.0, 0.5), // 4
        (2.5, 2.0), // 5
        (3.5, 1.0), // 6
        (4.5, 1.8), // 7
        (5.5, 1.0), // 8
        (6.5, 1.8), // 9
        (7.0, 0.8), // 10
        (7.5, 1.8), // 11
    ];
    for (i, &(x, y)) in coords.iter().enumerate() {
        t.set_coords(i, x, y);
    }
    let links: [(usize, usize, f64); 19] = [
        (0, 1, 200.0),
        (0, 2, 200.0),
        (1, 2, 100.0),
        (1, 3, 200.0),
        (2, 3, 200.0),
        (2, 5, 100.0),
        (3, 4, 200.0),
        (3, 5, 200.0),
        (4, 5, 100.0),
        (4, 6, 200.0),
        (5, 7, 200.0),
        (5, 8, 100.0),
        (6, 7, 200.0),
        (6, 8, 200.0),
        (7, 9, 200.0),
        (8, 9, 100.0),
        (8, 10, 200.0),
        (9, 11, 200.0),
        (10, 11, 200.0),
    ];
    for &(a, b, cap) in &links {
        let (ax, ay) = t.coords(a);
        let (bx, by) = t.coords(b);
        let w = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt().max(0.1);
        t.add_link(a, b, cap, w);
    }
    debug_assert!(t.is_strongly_connected());
    t
}

/// Geometric graph on the unit square: Euclidean MST plus the shortest
/// remaining candidate links until `target_links` is reached.
fn geometric_square(name: &str, n: usize, target_links: usize, seed: u64) -> Topology {
    geometric(name, n, target_links, 1.0, 0.3, seed)
}

/// Geometric graph on a long strip (aspect ratio `stretch` : 1), producing
/// chain-like carrier topologies with high diameter.
fn geometric_strip(
    name: &str,
    n: usize,
    target_links: usize,
    stretch: f64,
    express_frac: f64,
    seed: u64,
) -> Topology {
    geometric(name, n, target_links, stretch, express_frac, seed)
}

fn geometric(
    name: &str,
    n: usize,
    target_links: usize,
    stretch: f64,
    express_frac: f64,
    seed: u64,
) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ea1_0001);
    let mut t = Topology::new(name, n);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>() * stretch, rng.gen::<f64>()))
        .collect();
    for (i, &(x, y)) in pts.iter().enumerate() {
        t.set_coords(i, x, y);
    }
    let dist = |a: usize, b: usize| -> f64 {
        let (ax, ay) = pts[a];
        let (bx, by) = pts[b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt().max(1e-6)
    };

    // Prim's MST guarantees connectivity with n-1 links.
    let mut in_tree = vec![false; n];
    let mut best = vec![(f64::INFINITY, 0usize); n];
    in_tree[0] = true;
    for (v, b) in best.iter_mut().enumerate().skip(1) {
        *b = (dist(0, v), 0);
    }
    let mut mst_links = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let (v, _) = best
            .iter()
            .enumerate()
            .filter(|(v, _)| !in_tree[*v])
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            .map(|(v, &(d, _))| (v, d))
            .unwrap();
        in_tree[v] = true;
        mst_links.push((best[v].1, v));
        for u in 0..n {
            if !in_tree[u] {
                let d = dist(v, u);
                if d < best[u].0 {
                    best[u] = (d, v);
                }
            }
        }
    }
    for (a, b) in mst_links {
        t.add_link(a, b, sample_capacity(&mut rng), dist(a, b));
    }

    // Add non-tree links until the target is met: mostly the shortest
    // remaining candidates (local redundancy), plus a fraction of "express"
    // links between distant nodes — carrier networks run long-haul express
    // circuits, and these keep the hop diameter near the real networks'
    // despite the MST's winding local structure.
    let extra = target_links.saturating_sub(n - 1);
    if extra > 0 {
        let express = (extra as f64 * express_frac).round() as usize;
        let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if !t.has_link(a, b) {
                    candidates.push((dist(a, b), a, b));
                }
            }
        }
        candidates.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for &(d, a, b) in candidates.iter().take(extra - express) {
            t.add_link(a, b, sample_capacity(&mut rng), d);
        }
        // Express links: sample distant pairs uniformly.
        let mut added = 0;
        let mut guard = 0;
        while added < express && guard < express * 200 {
            guard += 1;
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !t.has_link(a, b) && dist(a, b) > stretch * 0.15 {
                t.add_link(a, b, sample_capacity(&mut rng) * 2.0, dist(a, b));
                added += 1;
            }
        }
    }
    debug_assert!(t.is_strongly_connected());
    t
}

/// Interconnected star clusters modeling the AS-level graph: a minority of
/// hub nodes forms a dense random mesh; every leaf attaches to one or two
/// hubs. Hub-hub links get a capacity boost, as inter-AS backbones would.
fn star_clusters(name: &str, n: usize, target_links: usize, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ea1_0002);
    let mut t = Topology::new(name, n);
    let hubs = (n / 20).max(3); // ~5% of nodes are cluster heads
    for i in 0..n {
        t.set_coords(i, rng.gen::<f64>() * 4.0, rng.gen::<f64>() * 4.0);
    }
    let wdist = |t: &Topology, a: usize, b: usize| -> f64 {
        let (ax, ay) = t.coords(a);
        let (bx, by) = t.coords(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt().max(0.05)
    };

    let mut links = 0usize;
    // Hub ring for guaranteed connectivity.
    for h in 0..hubs {
        let next = (h + 1) % hubs;
        if !t.has_link(h, next) {
            let w = wdist(&t, h, next);
            t.add_link(h, next, sample_capacity(&mut rng) * 4.0, w);
            links += 1;
        }
    }
    // Every leaf homes to one hub; a third of leaves dual-home.
    for leaf in hubs..n {
        let h1 = rng.gen_range(0..hubs);
        let w = wdist(&t, leaf, h1);
        t.add_link(leaf, h1, sample_capacity(&mut rng), w);
        links += 1;
        if rng.gen::<f64>() < 0.34 {
            let h2 = rng.gen_range(0..hubs);
            if h2 != h1 && !t.has_link(leaf, h2) {
                let w2 = wdist(&t, leaf, h2);
                t.add_link(leaf, h2, sample_capacity(&mut rng), w2);
                links += 1;
            }
        }
    }
    // Spend the remaining budget on a dense hub-hub mesh.
    let mut guard = 0;
    while links < target_links && guard < target_links * 50 {
        guard += 1;
        let a = rng.gen_range(0..hubs);
        let b = rng.gen_range(0..hubs);
        if a != b && !t.has_link(a, b) {
            let w = wdist(&t, a, b);
            t.add_link(a, b, sample_capacity(&mut rng) * 4.0, w);
            links += 1;
        }
    }
    debug_assert!(t.is_strongly_connected());
    t
}

/// Deterministic large-WAN generator with a scale-free/HOT-style degree
/// distribution, for paper-scale experiments (256–1,739 nodes, Table 1's
/// Kdl/ASN regime).
///
/// Growth model: nodes arrive at random planar positions and attach to the
/// existing graph by minimizing `distance / sqrt(degree)` — the
/// "heuristically optimal topology" trade-off between link cost (distance)
/// and traffic aggregation (degree). Rich nodes get richer, yielding a
/// heavy-tailed degree distribution with geographic locality; a post-growth
/// express mesh over the top-degree hubs keeps the hop diameter low like the
/// real AS graph. Capacities follow the usual log-uniform circuit sizes,
/// tiered up on hub-hub links. Connectivity holds by construction (every
/// node attaches to the existing component), and the whole build is a pure
/// function of `(n, seed)`.
pub fn large_wan(n: usize, seed: u64) -> Topology {
    assert!(n >= 8, "large_wan needs at least 8 nodes");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ea1_0003);
    let mut t = Topology::new(format!("LargeWAN-{n}"), n);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>() * 4.0, rng.gen::<f64>() * 4.0))
        .collect();
    for (i, &(x, y)) in pts.iter().enumerate() {
        t.set_coords(i, x, y);
    }
    let dist = |a: usize, b: usize| -> f64 {
        let (ax, ay) = pts[a];
        let (bx, by) = pts[b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt().max(0.05)
    };

    let mut deg = vec![0usize; n];
    let add = |t: &mut Topology, deg: &mut Vec<usize>, rng: &mut StdRng, a: usize, b: usize| {
        t.add_link(a, b, sample_capacity(rng), dist(a, b));
        deg[a] += 1;
        deg[b] += 1;
    };

    // Seed clique: 4 mutually linked sites.
    const M0: usize = 4;
    for a in 0..M0 {
        for b in (a + 1)..M0 {
            add(&mut t, &mut deg, &mut rng, a, b);
        }
    }

    // HOT growth: each arrival links to the 1–3 best-scoring existing nodes.
    for i in M0..n {
        // 1–3 uplinks per arrival: stubs, dual-homed sites, rare tri-homed.
        let m = 1 + rng.gen_range(0..2usize) + usize::from(rng.gen::<f64>() < 0.2);
        let mut linked = 0;
        while linked < m {
            let mut best: Option<(f64, usize)> = None;
            for (j, &dj) in deg.iter().enumerate().take(i) {
                if t.has_link(i, j) {
                    continue;
                }
                let score = dist(i, j) / (dj as f64).sqrt();
                let better = match best {
                    None => true,
                    Some((s, bj)) => score < s || (score == s && j < bj),
                };
                if better {
                    best = Some((score, j));
                }
            }
            let Some((_, j)) = best else { break };
            add(&mut t, &mut deg, &mut rng, i, j);
            linked += 1;
        }
    }

    // Express mesh between the highest-degree hubs until the link budget
    // (~2.4 links per node, the ASN regime) is met. Hub-hub circuits carry
    // aggregated transit, so their capacities are tiered up 4x.
    let target_links = (n as f64 * 2.4).round() as usize;
    let mut hubs: Vec<usize> = (0..n).collect();
    hubs.sort_by(|&a, &b| deg[b].cmp(&deg[a]).then(a.cmp(&b)));
    hubs.truncate((n / 12).max(4));
    let mut links = t.num_edges() / 2;
    let mut guard = 0;
    while links < target_links && guard < target_links * 100 {
        guard += 1;
        let a = hubs[rng.gen_range(0..hubs.len())];
        let b = hubs[rng.gen_range(0..hubs.len())];
        if a != b && !t.has_link(a, b) {
            t.add_link(a, b, sample_capacity(&mut rng) * 4.0, dist(a, b));
            deg[a] += 1;
            deg[b] += 1;
            links += 1;
        }
    }
    debug_assert!(t.is_strongly_connected());
    t
}

/// Deterministic gravity-model demand sampling: `count` distinct ordered
/// pairs drawn with probability proportional to the product of endpoint
/// attachment capacity (each node's total outgoing link capacity), matching
/// how the paper's traffic matrices concentrate on well-provisioned sites.
/// All-pairs demand sets are quadratic in `n` and infeasible at 1,000+
/// nodes; this is the precompute-once subsample the scale pipeline runs on.
pub fn gravity_pairs(topo: &Topology, count: usize, seed: u64) -> Vec<(usize, usize)> {
    let n = topo.num_nodes();
    assert!(n >= 2, "need at least two nodes");
    let max_pairs = n * (n - 1);
    let count = count.min(max_pairs);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ea1_0004);

    // Node weight = total outgoing capacity; cumulative table for sampling.
    let mut w = vec![0.0f64; n];
    for e in topo.edges() {
        w[e.src] += e.capacity;
    }
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &wi in &w {
        acc += wi.max(1.0);
        cum.push(acc);
    }
    let total = acc;
    let draw = |rng: &mut StdRng| -> usize {
        let x = rng.gen::<f64>() * total;
        cum.partition_point(|&c| c <= x).min(n - 1)
    };

    let mut seen = std::collections::HashSet::with_capacity(count * 2);
    let mut out = Vec::with_capacity(count);
    let mut guard = 0usize;
    while out.len() < count && guard < count * 400 {
        guard += 1;
        let s = draw(&mut rng);
        let t = draw(&mut rng);
        if s != t && seen.insert((s, t)) {
            out.push((s, t));
        }
    }
    // Degenerate weight distributions can stall rejection sampling; fill the
    // remainder deterministically.
    'fill: for s in 0..n {
        if out.len() >= count {
            break 'fill;
        }
        for t in 0..n {
            if out.len() >= count {
                break 'fill;
            }
            if s != t && seen.insert((s, t)) {
                out.push((s, t));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn b4_matches_table1() {
        let t = b4();
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.num_edges(), 38); // 19 links -> 38 directed edges
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn full_scale_counts_match_table1() {
        for kind in [TopoKind::Swan, TopoKind::UsCarrier] {
            let t = generate(kind, 1.0, 42);
            assert_eq!(t.num_nodes(), kind.full_nodes(), "{:?} nodes", kind);
            assert!(
                t.num_edges() >= 2 * kind.full_nodes() - 2,
                "{:?} should at least be a tree",
                kind
            );
        }
    }

    #[test]
    fn scaled_generation_shrinks() {
        let t = generate(TopoKind::Kdl, 0.2, 1);
        assert_eq!(t.num_nodes(), 151);
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = generate(TopoKind::Swan, 0.5, 9);
        let b = generate(TopoKind::Swan, 0.5, 9);
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn strip_topologies_have_high_diameter() {
        let us = generate(TopoKind::UsCarrier, 1.0, 3);
        let asn = generate(TopoKind::Asn, 0.3, 3);
        let d_us = stats::hop_diameter(&us);
        let d_asn = stats::hop_diameter(&asn);
        // Chain-like carrier network must be much deeper than the star-cluster
        // AS graph, as in Table 3 (35 vs 8).
        assert!(d_us > 2 * d_asn, "UsCarrier diameter {d_us} vs ASN {d_asn}");
        assert!(d_asn <= 8, "ASN-like diameter should be small, got {d_asn}");
    }

    #[test]
    fn capacities_positive_and_quantized() {
        let t = generate(TopoKind::Swan, 1.0, 7);
        for e in t.edges() {
            assert!(e.capacity >= 100.0);
            assert!((e.capacity / 25.0).fract().abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        let _ = generate(TopoKind::Swan, 0.0, 1);
    }

    #[test]
    fn large_wan_same_seed_bitwise_identical() {
        let a = large_wan(256, 17);
        let b = large_wan(256, 17);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!(ea, eb); // src, dst, capacity, weight — exact
        }
        for n in 0..a.num_nodes() {
            assert_eq!(a.coords(n), b.coords(n));
        }
        // Path sets over the same pairs are bitwise identical too.
        let pairs = gravity_pairs(&a, 96, 5);
        assert_eq!(pairs, gravity_pairs(&b, 96, 5));
        let pa = crate::paths::PathSet::compute(&a, &pairs, 4);
        let pb = crate::paths::PathSet::compute(&b, &pairs, 4);
        for (x, y) in pa.paths().iter().zip(pb.paths()) {
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.edges, y.edges);
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
    }

    #[test]
    fn large_wan_distinct_seeds_differ() {
        let a = large_wan(256, 1);
        let b = large_wan(256, 2);
        let differs = a.num_edges() != b.num_edges()
            || a.edges().iter().zip(b.edges()).any(|(ea, eb)| ea != eb);
        assert!(differs, "distinct seeds produced identical topologies");
    }

    #[test]
    fn large_wan_structure_and_invariants() {
        for &(n, seed) in &[(256usize, 7u64), (400, 11)] {
            let t = large_wan(n, seed);
            assert_eq!(t.num_nodes(), n);
            assert!(t.is_strongly_connected());
            // Link budget near 2.4 per node (directed edges are double).
            let links = t.num_edges() / 2;
            assert!(
                links >= 2 * n && links <= 3 * n,
                "n={n}: {links} links out of budget"
            );
            // Scale-free flavor: a heavy tail well above the median degree.
            let mut deg = vec![0usize; n];
            for e in t.edges() {
                deg[e.src] += 1;
            }
            let max = *deg.iter().max().unwrap();
            let mut sorted = deg.clone();
            sorted.sort_unstable();
            let median = sorted[n / 2];
            assert!(
                max >= 6 * median.max(1),
                "no hubs: max degree {max}, median {median}"
            );
            // Generated paths satisfy the structural invariants.
            let pairs = gravity_pairs(&t, 2 * n, seed);
            let ps = crate::paths::PathSet::compute(&t, &pairs, 4);
            stats::check_path_set(&t, &ps).unwrap();
        }
    }

    #[test]
    fn gravity_pairs_valid_and_deterministic() {
        let t = large_wan(128, 3);
        let p1 = gravity_pairs(&t, 300, 9);
        let p2 = gravity_pairs(&t, 300, 9);
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 300);
        let mut seen = std::collections::HashSet::new();
        for &(s, d) in &p1 {
            assert!(s < 128 && d < 128 && s != d);
            assert!(seen.insert((s, d)), "duplicate pair");
        }
        // Distinct seeds sample different windows.
        assert_ne!(p1, gravity_pairs(&t, 300, 10));
        // Requesting more than n*(n-1) pairs saturates instead of looping.
        let small = large_wan(8, 1);
        assert_eq!(gravity_pairs(&small, 10_000, 1).len(), 8 * 7);
    }
}

//! Teal's neural model: FlowGNN (§3.2) + shared per-demand policy network
//! (§3.3), plus the `PolicyModel` trait that the ablation variants (§5.7)
//! implement so the same COMA* trainer drives all of them.

use crate::env::{Env, ModelInput};
use std::sync::Arc;
use teal_lp::Allocation;
use teal_nn::graph::softmax_row_inplace;
use teal_nn::tensor as tensor_ops;
use teal_nn::{BoundLinear, Graph, Linear, ParamId, ParamStore, Tensor, Var};

/// Hyperparameters of the full Teal model (§4 defaults).
#[derive(Clone, Copy, Debug)]
pub struct TealConfig {
    /// Number of GNN layers (interleaved with the same number of DNN
    /// layers). The final embedding dimension equals this value: the first
    /// layer starts from 1-element embeddings and each following layer
    /// appends the initialization value (§4's dimension-growth trick).
    pub gnn_layers: usize,
    /// Hidden width of the policy network (24 in the paper).
    pub policy_hidden: usize,
    /// Number of hidden (dense) layers in the policy network (1 in §4;
    /// swept in Figure 15c).
    pub policy_hidden_layers: usize,
    /// Negative-side slope of leaky ReLU activations.
    pub leaky_slope: f32,
    /// Initial log standard deviation of the Gaussian exploration policy.
    pub init_logstd: f32,
    /// How many initialization columns each layer appends (1 in the paper;
    /// Figure 15b sweeps larger embedding dimensions). The final embedding
    /// dimension is `1 + (gnn_layers - 1) * embed_growth`.
    pub embed_growth: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for TealConfig {
    fn default() -> Self {
        TealConfig {
            gnn_layers: 6,
            policy_hidden: 24,
            policy_hidden_layers: 1,
            leaky_slope: 0.1,
            init_logstd: -1.0,
            embed_growth: 1,
            seed: 0,
        }
    }
}

/// Tape bindings produced by one forward pass.
pub struct Forward {
    /// Per-demand Gaussian means in logit space, `[num_demands, k]`.
    pub mu: Var,
    /// Final PathNode embeddings `[num_paths, embed_dim]` (for Figure 16).
    pub embeddings: Option<Var>,
    /// Bound log-std row vector `[1, k]`.
    pub logstd: Var,
    bounds: Vec<BoundLinear>,
    logstd_id: ParamId,
}

impl Forward {
    /// Assemble a forward result (used by model implementations).
    pub fn new(
        mu: Var,
        embeddings: Option<Var>,
        logstd: Var,
        bounds: Vec<BoundLinear>,
        logstd_id: ParamId,
    ) -> Self {
        Forward {
            mu,
            embeddings,
            logstd,
            bounds,
            logstd_id,
        }
    }

    /// The bound layers of this pass.
    pub fn bounds(&self) -> &[BoundLinear] {
        &self.bounds
    }

    /// Consume, returning the bound layers.
    pub fn into_bounds(self) -> Vec<BoundLinear> {
        self.bounds
    }

    /// Store id of the log-std parameter.
    pub fn logstd_id(&self) -> ParamId {
        self.logstd_id
    }
}

/// Interface shared by Teal and its ablation variants: map a traffic matrix
/// to per-demand logits under trainable parameters.
pub trait PolicyModel {
    /// Human-readable variant name.
    fn name(&self) -> &str;

    /// The environment the model was built for.
    fn env(&self) -> &Arc<Env>;

    /// Run the forward pass on a fresh tape.
    fn forward(&self, g: &mut Graph, input: &ModelInput) -> Forward;

    /// Parameter store (for the optimizer).
    fn store(&self) -> &ParamStore;

    /// Mutable parameter store.
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Pull this pass's parameter gradients from the tape into the store.
    fn absorb(&mut self, g: &Graph, fwd: &Forward) {
        for b in &fwd.bounds {
            b.absorb(self.store_mut(), g);
        }
        let logstd_id = fwd.logstd_id;
        let logstd_var = fwd.logstd;
        self.store_mut().absorb_grad(g, logstd_id, logstd_var);
    }

    /// Deterministic allocation: softmax of the mean logits (deployment
    /// mode, Appendix B — "the mean value of the Gaussian is directly used
    /// as the action during deployment").
    fn allocate_deterministic(&self, input: &ModelInput) -> Allocation {
        assert_eq!(
            input.batch, 1,
            "allocate_deterministic takes a single-matrix input"
        );
        let mut g = Graph::new();
        let fwd = self.forward(&mut g, input);
        mu_to_allocation(g.value(fwd.mu))
    }

    /// Deterministic allocations for a whole minibatch in one forward pass:
    /// the tentpole of the batched serving path. Models whose `forward`
    /// honors `ModelInput::batch` inherit this for free; the default is
    /// exact-equal (up to f32 order-of-operations, well below 1e-6 here) to
    /// calling [`PolicyModel::allocate_deterministic`] per matrix.
    fn allocate_batch(&self, input: &ModelInput) -> Vec<Allocation> {
        let mut g = Graph::new();
        let fwd = self.forward(&mut g, input);
        mu_to_allocations(g.value(fwd.mu), input.batch)
    }
}

/// Convert a `[D, k]` logit tensor to a softmax allocation.
pub fn mu_to_allocation(mu: &Tensor) -> Allocation {
    mu_to_allocations(mu, 1).pop().expect("batch of one")
}

/// Split a `[batch * D, k]` logit tensor into per-matrix softmax allocations.
pub fn mu_to_allocations(mu: &Tensor, batch: usize) -> Vec<Allocation> {
    let (rows, k) = mu.shape();
    assert!(
        batch >= 1 && rows % batch == 0,
        "logit rows {rows} not divisible by batch {batch}"
    );
    let d = rows / batch;
    let mut out = Vec::with_capacity(batch);
    for b in 0..batch {
        let mut splits = Vec::with_capacity(d * k);
        for r in b * d..(b + 1) * d {
            let mut row: Vec<f32> = mu.row(r).to_vec();
            softmax_row_inplace(&mut row);
            splits.extend(row.iter().map(|&v| v as f64));
        }
        out.push(Allocation::from_splits(k, splits));
    }
    out
}

/// FlowGNN: alternating bipartite GNN layers (capacity constraints) and
/// per-demand DNN layers (demand constraints), per §3.2 / Figure 4.
#[derive(Clone)]
struct FlowGnn {
    /// Per layer: transform for PathNodes, `[2d -> d]`.
    path_layers: Vec<Linear>,
    /// Per layer: transform for EdgeNodes, `[2d -> d]`.
    edge_layers: Vec<Linear>,
    /// Per layer: the demand-coordination DNN, `[k*d -> k*d]`.
    dnn_layers: Vec<Linear>,
    k: usize,
    slope: f32,
    growth: usize,
}

impl FlowGnn {
    fn new(
        store: &mut ParamStore,
        k: usize,
        layers: usize,
        growth: usize,
        slope: f32,
        rng: &mut impl rand::Rng,
    ) -> Self {
        assert!(growth >= 1);
        let mut path_layers = Vec::new();
        let mut edge_layers = Vec::new();
        let mut dnn_layers = Vec::new();
        let mut d = 1usize;
        for l in 0..layers {
            path_layers.push(Linear::new(store, &format!("gnn{l}.path"), 2 * d, d, rng));
            edge_layers.push(Linear::new(store, &format!("gnn{l}.edge"), 2 * d, d, rng));
            dnn_layers.push(Linear::new(
                store,
                &format!("gnn{l}.dnn"),
                k * d,
                k * d,
                rng,
            ));
            if l + 1 < layers {
                d += growth;
            }
        }
        FlowGnn {
            path_layers,
            edge_layers,
            dnn_layers,
            k,
            slope,
            growth,
        }
    }

    /// Final embedding dimension: `1 + (layers - 1) * growth`.
    fn out_dim(&self) -> usize {
        1 + (self.path_layers.len() - 1) * self.growth
    }

    /// Tape-free inference forward: the same arithmetic as
    /// [`FlowGnn::forward`] on plain tensors, with every intermediate freed
    /// as soon as the next layer has consumed it. Deployment (and the
    /// batched serving path) runs this; training uses the recorded variant.
    fn infer(&self, store: &ParamStore, env: &Env, input: &ModelInput) -> Tensor {
        let a = env.incidence();
        let batch = input.batch;
        let path_init = &input.path_init;
        let edge_init = &input.edge_init;
        let mut p = path_init.clone();
        let mut e = edge_init.clone();
        let num_demands = env.num_demands();
        let k = self.k;
        let layers = self.path_layers.len();
        for l in 0..layers {
            let msg_to_path = a.fwd.spmm_batch(&e, batch);
            let msg_to_edge = a.bwd.spmm_batch(&p, batch);
            // Fused [x | msg] * W: the concat buffer is never materialized.
            let p_act = self.path_layers[l].infer_act2(store, &p, &msg_to_path, self.slope);
            drop(msg_to_path);
            let e_new = self.edge_layers[l].infer_act2(store, &e, &msg_to_edge, self.slope);
            drop(msg_to_edge);
            e = e_new;
            let d = self.path_layers[l].out_dim();
            let grouped = p_act.into_reshaped(batch * num_demands, k * d);
            let dnn_act = self.dnn_layers[l].infer_act(store, &grouped, self.slope);
            p = dnn_act.into_reshaped(batch * num_demands * k, d);
            if l + 1 < layers {
                for _ in 0..self.growth {
                    p = tensor_ops::concat_cols(&p, path_init);
                    e = tensor_ops::concat_cols(&e, edge_init);
                }
            }
        }
        p
    }

    /// Forward: returns PathNode embeddings `[batch * P, out_dim]`. The
    /// batch dimension rides along as vertically stacked per-matrix blocks:
    /// dense layers are row-wise and need no change, and message passing
    /// applies the incidence operator block-diagonally via `spmm_batch`.
    fn forward(
        &self,
        store: &ParamStore,
        g: &mut Graph,
        env: &Env,
        input: &ModelInput,
        bounds: &mut Vec<BoundLinear>,
    ) -> Var {
        let a = env.incidence(); // paths x edges
        let at = a.transposed();
        let batch = input.batch;
        let path_init = g.input(input.path_init.clone());
        let edge_init = g.input(input.edge_init.clone());
        let mut p = path_init;
        let mut e = edge_init;
        let num_demands = env.num_demands();
        let k = self.k;
        let layers = self.path_layers.len();
        for l in 0..layers {
            // GNN sublayer: bipartite message passing (capacity constraints).
            let msg_to_path = g.spmm_batch(a, e, batch); // [B*P, d]
            let msg_to_edge = g.spmm_batch(&at, p, batch); // [B*E, d]
            let p_cat = g.concat_cols(p, msg_to_path);
            let (p_act, b1) = self.path_layers[l].forward_act(store, g, p_cat, self.slope);
            bounds.push(b1);
            let e_cat = g.concat_cols(e, msg_to_edge);
            let (e_act, b2) = self.edge_layers[l].forward_act(store, g, e_cat, self.slope);
            bounds.push(b2);
            // DNN sublayer: coordinate the k PathNodes of each demand
            // (demand constraints).
            let d = self.path_layers[l].out_dim();
            let grouped = g.reshape(p_act, batch * num_demands, k * d);
            let (dnn_act, b3) = self.dnn_layers[l].forward_act(store, g, grouped, self.slope);
            bounds.push(b3);
            p = g.reshape(dnn_act, batch * num_demands * k, d);
            e = e_act;
            // Dimension growth: re-append the initialization values (§4).
            if l + 1 < layers {
                for _ in 0..self.growth {
                    p = g.concat_cols(p, path_init);
                    e = g.concat_cols(e, edge_init);
                }
            }
        }
        p
    }
}

/// The shared per-demand policy network (§3.3): `k * embed_dim` inputs, a
/// small dense stack, `k` output logits.
#[derive(Clone)]
struct PolicyNet {
    layers: Vec<Linear>,
    slope: f32,
}

impl PolicyNet {
    fn new(
        store: &mut ParamStore,
        in_dim: usize,
        hidden: usize,
        hidden_layers: usize,
        k: usize,
        slope: f32,
        rng: &mut impl rand::Rng,
    ) -> Self {
        let mut layers = Vec::new();
        let mut d = in_dim;
        for l in 0..hidden_layers {
            layers.push(Linear::new(store, &format!("policy.h{l}"), d, hidden, rng));
            d = hidden;
        }
        layers.push(Linear::new(store, "policy.out", d, k, rng));
        PolicyNet { layers, slope }
    }

    fn forward(
        &self,
        store: &ParamStore,
        g: &mut Graph,
        x: Var,
        bounds: &mut Vec<BoundLinear>,
    ) -> Var {
        let mut h = x;
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            // Slope 1.0 = identity activation on the output layer.
            let slope = if i + 1 < n { self.slope } else { 1.0 };
            let (act, b) = layer.forward_act(store, g, h, slope);
            bounds.push(b);
            h = act;
        }
        h
    }

    /// Tape-free inference variant of [`PolicyNet::forward`].
    fn infer(&self, store: &ParamStore, x: Tensor) -> Tensor {
        let mut h = x;
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let slope = if i + 1 < n { self.slope } else { 1.0 };
            h = layer.infer_act(store, &h, slope);
        }
        h
    }
}

/// The full Teal model: FlowGNN + policy network + Gaussian log-std.
#[derive(Clone)]
pub struct TealModel {
    env: Arc<Env>,
    store: ParamStore,
    gnn: FlowGnn,
    policy: PolicyNet,
    logstd: ParamId,
    name: String,
}

impl TealModel {
    /// Construct with the paper's defaults (override via `cfg`).
    pub fn new(env: Arc<Env>, cfg: TealConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = teal_nn::rng::seeded(cfg.seed ^ 0x7ea1_c0de);
        let k = env.k();
        let gnn = FlowGnn::new(
            &mut store,
            k,
            cfg.gnn_layers,
            cfg.embed_growth,
            cfg.leaky_slope,
            &mut rng,
        );
        let policy = PolicyNet::new(
            &mut store,
            k * gnn.out_dim(),
            cfg.policy_hidden,
            cfg.policy_hidden_layers,
            k,
            cfg.leaky_slope,
            &mut rng,
        );
        let logstd = store.register("logstd", Tensor::full(1, k, cfg.init_logstd));
        TealModel {
            env,
            store,
            gnn,
            policy,
            logstd,
            name: "Teal".to_string(),
        }
    }

    /// Total trainable scalars (policy-network compactness is a §3.3 claim).
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Tape-free inference: mean logits `[batch * D, k]` for a (batched)
    /// input. Identical arithmetic to the recorded forward pass, but no
    /// autograd bookkeeping and intermediates freed eagerly — the serving
    /// hot path.
    pub fn infer_mu(&self, input: &ModelInput) -> Tensor {
        let embed = self.gnn.infer(&self.store, &self.env, input);
        let k = self.env.k();
        let flat =
            embed.into_reshaped(input.batch * self.env.num_demands(), k * self.gnn.out_dim());
        self.policy.infer(&self.store, flat)
    }
}

impl PolicyModel for TealModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn env(&self) -> &Arc<Env> {
        &self.env
    }

    fn forward(&self, g: &mut Graph, input: &ModelInput) -> Forward {
        let mut bounds = Vec::new();
        let embed = self
            .gnn
            .forward(&self.store, g, &self.env, input, &mut bounds);
        let k = self.env.k();
        let flat = g.reshape(
            embed,
            input.batch * self.env.num_demands(),
            k * self.gnn.out_dim(),
        );
        let mu = self.policy.forward(&self.store, g, flat, &mut bounds);
        let logstd = self.store.bind(g, self.logstd);
        Forward::new(mu, Some(embed), logstd, bounds, self.logstd)
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Deployment override: tape-free inference (same math, no autograd).
    fn allocate_deterministic(&self, input: &ModelInput) -> Allocation {
        assert_eq!(
            input.batch, 1,
            "allocate_deterministic takes a single-matrix input"
        );
        mu_to_allocation(&self.infer_mu(input))
    }

    /// Deployment override: batched tape-free inference.
    fn allocate_batch(&self, input: &ModelInput) -> Vec<Allocation> {
        mu_to_allocations(&self.infer_mu(input), input.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teal_topology::b4;
    use teal_traffic::TrafficMatrix;

    fn small_env() -> Arc<Env> {
        Arc::new(Env::for_topology(b4()))
    }

    #[test]
    fn forward_shapes() {
        let env = small_env();
        let model = TealModel::new(Arc::clone(&env), TealConfig::default());
        let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
        let input = env.model_input(&tm, None);
        let mut g = Graph::new();
        let fwd = model.forward(&mut g, &input);
        assert_eq!(g.value(fwd.mu).shape(), (env.num_demands(), 4));
        let emb = fwd.embeddings.unwrap();
        assert_eq!(g.value(emb).shape(), (env.paths().num_paths(), 6));
        assert!(g.value(fwd.mu).all_finite());
    }

    #[test]
    fn deterministic_allocation_is_simplex_valid() {
        let env = small_env();
        let model = TealModel::new(Arc::clone(&env), TealConfig::default());
        let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
        let alloc = model.allocate_deterministic(&env.model_input(&tm, None));
        assert!(alloc.demand_feasible(1e-5));
        for d in 0..env.num_demands() {
            let s: f64 = alloc.demand_splits(d).iter().sum();
            assert!(
                (s - 1.0).abs() < 1e-4,
                "softmax splits must sum to 1, got {s}"
            );
        }
    }

    #[test]
    fn tape_free_inference_matches_recorded_forward() {
        // The serving path (infer_mu) and the training path (forward on a
        // tape) must produce the same logits: same kernels, same
        // accumulation order.
        let env = small_env();
        let model = TealModel::new(Arc::clone(&env), TealConfig::default());
        let tms: Vec<TrafficMatrix> = (0..2)
            .map(|i| TrafficMatrix::new(vec![3.0 + 9.0 * i as f64; env.num_demands()]))
            .collect();
        let input = env.batch_input(&tms, None);
        let mut g = Graph::new();
        let fwd = model.forward(&mut g, &input);
        let recorded = g.value(fwd.mu);
        let inferred = model.infer_mu(&input);
        assert!(
            inferred.approx_eq(recorded, 1e-6),
            "tape-free inference diverged from the recorded forward"
        );
    }

    #[test]
    fn batched_forward_shapes_and_equivalence() {
        let env = small_env();
        let model = TealModel::new(Arc::clone(&env), TealConfig::default());
        let tms: Vec<TrafficMatrix> = (0..3)
            .map(|i| TrafficMatrix::new(vec![2.0 + 3.0 * i as f64; env.num_demands()]))
            .collect();
        let input = env.batch_input(&tms, None);
        let mut g = Graph::new();
        let fwd = model.forward(&mut g, &input);
        assert_eq!(g.value(fwd.mu).shape(), (3 * env.num_demands(), 4));
        let emb = fwd.embeddings.unwrap();
        assert_eq!(g.value(emb).shape(), (3 * env.paths().num_paths(), 6));

        let batched = model.allocate_batch(&input);
        assert_eq!(batched.len(), 3);
        for (tm, b) in tms.iter().zip(&batched) {
            let seq = model.allocate_deterministic(&env.model_input(tm, None));
            for (x, y) in b.splits().iter().zip(seq.splits()) {
                assert!((x - y).abs() <= 1e-6, "batched {x} vs sequential {y}");
            }
        }
    }

    #[test]
    fn policy_is_topology_size_agnostic() {
        // §3.3: the policy network's parameter count must not depend on the
        // number of demands. Compare B4 against a larger topology.
        let env_small = small_env();
        let m_small = TealModel::new(Arc::clone(&env_small), TealConfig::default());
        let topo_big = teal_topology::generate(teal_topology::TopoKind::Swan, 0.3, 7);
        let env_big = Arc::new(Env::for_topology(topo_big));
        let m_big = TealModel::new(Arc::clone(&env_big), TealConfig::default());
        assert_eq!(m_small.num_parameters(), m_big.num_parameters());
    }

    #[test]
    fn gradients_flow_end_to_end() {
        let env = small_env();
        let mut model = TealModel::new(Arc::clone(&env), TealConfig::default());
        let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
        let input = env.model_input(&tm, None);
        let mut g = Graph::new();
        let fwd = model.forward(&mut g, &input);
        let loss = g.sum_all(fwd.mu);
        g.backward(loss);
        model.absorb(&g, &fwd);
        // The first GNN layer's weights must receive gradient (end-to-end
        // backprop through policy + 6 GNN/DNN layers).
        assert!(model.store().grad_norm() > 0.0);
    }

    #[test]
    fn forward_depends_on_capacities() {
        let env = small_env();
        let model = TealModel::new(Arc::clone(&env), TealConfig::default());
        let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
        let base = model.allocate_deterministic(&env.model_input(&tm, None));
        let failed = env.topo().with_failed_link(0, 1);
        let after = model.allocate_deterministic(&env.model_input(&tm, Some(&failed)));
        assert_ne!(base, after, "failing a link must change the model output");
    }

    #[test]
    fn variable_layer_counts() {
        let env = small_env();
        for layers in [4usize, 6, 8] {
            let cfg = TealConfig {
                gnn_layers: layers,
                ..TealConfig::default()
            };
            let model = TealModel::new(Arc::clone(&env), cfg);
            let tm = TrafficMatrix::new(vec![1.0; env.num_demands()]);
            let input = env.model_input(&tm, None);
            let mut g = Graph::new();
            let fwd = model.forward(&mut g, &input);
            let emb = fwd.embeddings.unwrap();
            assert_eq!(g.value(emb).cols(), layers);
        }
    }
}

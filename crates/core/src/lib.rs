//! `teal-core`: the paper's primary contribution — Teal, a learning-
//! accelerated WAN traffic engineering scheme (SIGCOMM 2023).
//!
//! Pipeline (Figure 3): traffic demands and link capacities enter
//! [`model::TealModel`]'s FlowGNN (§3.2), whose per-path embeddings feed a
//! shared per-demand policy network (§3.3) trained with the COMA* multi-
//! agent RL algorithm in [`coma`] (Appendix B); the resulting allocation is
//! fine-tuned by a few warm-started ADMM iterations in [`engine`] (§3.4).
//!
//! Supporting modules: [`env`] (per-topology context), [`flowsim`]
//! (incremental reward simulation for counterfactual advantages),
//! [`direct`] (the surrogate-loss ablation), [`ablation`] (naive DNN /
//! naive GNN / global-policy variants, §5.7) and [`tsne`] (Figure 16).

pub mod ablation;
pub mod coma;
pub mod direct;
pub mod engine;
pub mod env;
pub mod flowsim;
pub mod model;
pub mod tsne;

pub use coma::{train_coma, validate, validate_reward, ComaConfig, TrainReport};
pub use flowsim::RewardKind;
pub use direct::{train_direct, DirectConfig};
pub use engine::{EngineConfig, TealEngine};
pub use env::{Env, ModelInput};
pub use flowsim::FlowSim;
pub use model::{mu_to_allocation, Forward, PolicyModel, TealConfig, TealModel};

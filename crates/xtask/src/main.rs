//! `cargo xtask lint` — the workspace's offline repo-invariant checker.
//!
//! This is a *source-level* pass (no rustc, no syn): a small line lexer
//! strips comments and string literals, and six rules run over the
//! stripped code of every first-party source file (`src/` of the root
//! crate and of each `crates/*` member; `vendor/`, `tests/`, `examples/`
//! and generated artifacts are out of scope):
//!
//! * **safety-comment** — every `unsafe` keyword site must be preceded by
//!   a contiguous `// SAFETY:` comment block (attributes and neighbouring
//!   `unsafe` lines may sit in between, blank or code lines may not).
//! * **no-unwrap** — non-test code in `crates/serve/src` must not call
//!   `.unwrap()` or `.expect(...)`: the serving daemon's failure story is
//!   catch-and-refuse, and the checked-sync facade exists precisely so
//!   lock acquisition needs no `expect`. (`unwrap_or*` combinators are
//!   fine — the rule matches the exact panicking calls.)
//! * **no-raw-clock** — non-test code in `crates/serve/src` must read the
//!   clock through `telemetry::now()`, never `Instant::now()` directly,
//!   so time stays a single seam (`telemetry.rs` itself is the one
//!   exempt file).
//! * **checked-sync** — a module carrying the `// teal-lint: checked-sync`
//!   marker has opted into the `crate::sync` facade; its non-test code
//!   must not import the std primitives the facade shadows (`Mutex`,
//!   `RwLock`, `Condvar`, `Arc`, `atomic`, `mpsc` — and, in serve
//!   modules, direct `std::thread::` spawning). Primitives the facade
//!   does not model (`OnceLock`, `PoisonError`, ...) stay legal.
//! * **ffi-confined** — raw FFI (`extern` declarations, `std::os::*` fd
//!   plumbing) lives in exactly one audited file, the serve crate's
//!   `net/sys.rs` epoll bindings; everywhere else must go through its
//!   safe wrappers.
//! * **forbid-unsafe** — a crate whose sources contain zero `unsafe`
//!   must say so: its crate root needs `#![forbid(unsafe_code)]`.
//!
//! Findings print one per line, machine-readable, sorted:
//! `path:line: [rule] message`. The process exits non-zero if any finding
//! is not covered by `xtask-lint-allow.txt` (exact `path:line:rule`
//! entries). That allowlist ships **empty** and is meant to stay so — it
//! exists for emergency grandfathering during a refactor, not as a
//! steady-state escape hatch.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {}
        _ => {
            eprintln!("usage: cargo xtask lint");
            return ExitCode::from(2);
        }
    }
    let root = workspace_root();
    let files = collect_sources(&root);
    if files.is_empty() {
        eprintln!("xtask lint: no sources found under {}", root.display());
        return ExitCode::from(2);
    }
    let findings = lint_workspace(&files);
    let allow = load_allowlist(&root.join("xtask-lint-allow.txt"));
    let mut reported = 0usize;
    let mut allowed = 0usize;
    for f in &findings {
        if allow.contains(&f.key()) {
            allowed += 1;
            continue;
        }
        println!("{f}");
        reported += 1;
    }
    eprintln!(
        "xtask lint: {} file(s), {} finding(s), {} allowlisted",
        files.len(),
        reported,
        allowed
    );
    if reported == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The repo root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Every first-party source file, as (repo-relative path with `/`
/// separators, contents). Scope: root `src/` plus each `crates/*/src/`.
fn collect_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    push_rs_files(&root.join("src"), root, &mut files);
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            push_rs_files(&entry.path().join("src"), root, &mut files);
        }
    }
    files.sort();
    files
}

fn push_rs_files(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            push_rs_files(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, text));
        }
    }
}

/// Allowlist entries: exact `path:line:rule` keys, `#` comments ignored.
fn load_allowlist(path: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl Finding {
    fn key(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.rule)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One source line after lexing: executable code with comments and string
/// *contents* blanked out, plus the text of any line comment.
#[derive(Debug, Default, Clone)]
struct LineView {
    code: String,
    comment: Option<String>,
}

/// Strip comments and string literals, line by line. Handles `//` line
/// comments, nested `/* */` block comments, `"..."` with escapes,
/// lifetime/char literals well enough to not open strings on `'a'`, and
/// raw strings up to `r##"..."##`. Contents of strings are dropped so the
/// rules never match words inside literals or docs.
fn lex(text: &str) -> Vec<LineView> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        Block(u32),
        Str,
        RawStr(u8),
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    for raw in text.lines() {
        let mut code = String::new();
        let mut comment = None;
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < bytes.len() {
            match state {
                State::Block(depth) => {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        state = if depth <= 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                State::Str => {
                    if bytes[i] == '\\' {
                        i += 2;
                    } else {
                        if bytes[i] == '"' {
                            state = State::Code;
                        }
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if bytes[i] == '"'
                        && bytes[i + 1..]
                            .iter()
                            .take(hashes as usize)
                            .filter(|&&c| c == '#')
                            .count()
                            == hashes as usize
                    {
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
                State::Code => match bytes[i] {
                    '/' if bytes.get(i + 1) == Some(&'/') => {
                        comment = Some(bytes[i + 2..].iter().collect::<String>());
                        i = bytes.len();
                    }
                    '/' if bytes.get(i + 1) == Some(&'*') => {
                        state = State::Block(1);
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' if bytes.get(i + 1) == Some(&'"')
                        || (bytes.get(i + 1) == Some(&'#')
                            && matches!(bytes.get(i + 2), Some(&'#') | Some(&'"'))) =>
                    {
                        // r"...", r#"..."#, r##"..."## — count the hashes.
                        let mut hashes = 0u8;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            state = State::RawStr(hashes);
                            code.push('"');
                            i = j + 1;
                        } else {
                            code.push('r');
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal ('x', '\n', '\'') vs lifetime ('a).
                        if bytes.get(i + 1) == Some(&'\\') {
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                },
            }
        }
        // `Str`/`RawStr`/`Block` all legitimately span lines in Rust;
        // the state simply carries over.
        out.push(LineView { code, comment });
    }
    out
}

/// True if `needle` occurs in `haystack` delimited by non-identifier
/// characters on both sides.
fn contains_word(haystack: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = !haystack[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Which lines (by index) sit inside `#[cfg(test)] mod ... { ... }`
/// regions, found by brace counting over stripped code.
fn test_mod_lines(lines: &[LineView]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].code.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            // Find the mod opening within the next few lines (other
            // attributes may sit in between).
            let mut j = i + 1;
            while j < lines.len() && lines[j].code.trim().starts_with("#[") {
                j += 1;
            }
            if j < lines.len() && lines[j].code.trim_start().starts_with("mod ") {
                let mut depth = 0i64;
                let mut opened = false;
                let mut k = j;
                while k < lines.len() {
                    for c in lines[k].code.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    in_test[k] = true;
                    if opened && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                in_test[i] = true;
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    in_test
}

/// Is the `unsafe` at `lines[at]` covered by a `// SAFETY:` comment run
/// directly above? The walk-up skips attribute lines and neighbouring
/// lines that themselves contain `unsafe` (one comment may cover a
/// multi-line unsafe expression); it stops at the first blank or ordinary
/// code line.
fn has_safety_comment(lines: &[LineView], at: usize) -> bool {
    if lines[at]
        .comment
        .as_deref()
        .is_some_and(|c| c.contains("SAFETY:"))
    {
        return true;
    }
    let mut i = at;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        let code = line.code.trim();
        if code.is_empty() {
            match &line.comment {
                Some(c) if c.contains("SAFETY:") => return true,
                Some(_) => continue,  // continuation of the comment block
                None => return false, // blank line breaks the run
            }
        }
        if code.starts_with("#[") || code.starts_with("#![") {
            continue;
        }
        if contains_word(code, "unsafe") {
            // A neighbouring unsafe line shares the comment above it.
            continue;
        }
        return false;
    }
    false
}

const SERVE_SRC: &str = "crates/serve/src/";
const CHECKED_SYNC_MARKER: &str = "teal-lint: checked-sync";
/// The one file allowed to declare raw FFI (`extern` blocks) and touch
/// `std::os::*` fd plumbing: the serve crate's hand-rolled epoll/eventfd
/// bindings. Everything else must go through its safe wrappers.
const FFI_HOME: &str = "crates/serve/src/net/sys.rs";

/// std::sync items the checked-sync facade shadows; importing them in an
/// opted-in module bypasses the model checker.
const FACADE_SHADOWED: &[&str] = &[
    "atomic",
    "Arc",
    "Barrier",
    "Condvar",
    "Mutex",
    "MutexGuard",
    "RwLock",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Weak",
    "mpsc",
];

fn leading_ident(s: &str) -> &str {
    let end = s
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(s.len());
    &s[..end]
}

/// Does this stripped code line pull a facade-shadowed name out of
/// `std::sync`? When `ban_threads` is set (serve modules, whose facade
/// also shims spawning), direct `std::thread::` use is flagged too; the
/// nn facade deliberately leaves OS-thread creation to the pool, so
/// thread spawning stays legal there.
fn references_shadowed_std_sync(code: &str, ban_threads: bool) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("std::sync::") {
        let tail = &rest[pos + "std::sync::".len()..];
        if let Some(body) = tail.strip_prefix('{') {
            let body = body.split('}').next().unwrap_or(body);
            for item in body.split(',') {
                if FACADE_SHADOWED.contains(&leading_ident(item.trim())) {
                    return true;
                }
            }
        } else if FACADE_SHADOWED.contains(&leading_ident(tail)) {
            return true;
        }
        rest = tail;
    }
    ban_threads && code.contains("std::thread::")
}

fn lint_file(path: &str, text: &str, out: &mut Vec<Finding>) {
    let lines = lex(text);
    let in_test = test_mod_lines(&lines);
    let is_serve = path.starts_with(SERVE_SRC);
    let is_telemetry = path == "crates/serve/src/telemetry.rs";
    // The opt-in marker must be a standalone comment line — prose
    // *mentioning* the marker (module docs, this file) does not opt in.
    let checked_sync = lines.iter().any(|l| {
        l.comment
            .as_deref()
            .is_some_and(|c| c.trim().starts_with(CHECKED_SYNC_MARKER))
    });

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = &line.code;

        if contains_word(code, "unsafe") && !has_safety_comment(&lines, idx) {
            out.push(Finding {
                file: path.to_string(),
                line: lineno,
                rule: "safety-comment",
                message: "`unsafe` site without a `// SAFETY:` comment directly above".to_string(),
            });
        }

        if is_serve && !in_test[idx] {
            if code.contains(".unwrap()") || code.contains(".expect(") {
                out.push(Finding {
                    file: path.to_string(),
                    line: lineno,
                    rule: "no-unwrap",
                    message: "`unwrap()`/`expect()` in non-test serving code; return an error \
                              or use the crate::sync facade"
                        .to_string(),
                });
            }
            if !is_telemetry && code.contains("Instant::now") {
                out.push(Finding {
                    file: path.to_string(),
                    line: lineno,
                    rule: "no-raw-clock",
                    message: "direct `Instant::now()`; route clock reads through \
                              `telemetry::now()`"
                        .to_string(),
                });
            }
        }

        // Raw FFI stays in one audited file. The lexer drops string
        // contents, so `extern "C"` in real code still matches the bare
        // `extern` keyword while prose/string mentions don't.
        if path != FFI_HOME
            && !in_test[idx]
            && (contains_word(code, "extern") || code.contains("std::os::"))
        {
            out.push(Finding {
                file: path.to_string(),
                line: lineno,
                rule: "ffi-confined",
                message: format!(
                    "raw FFI (`extern` declarations, `std::os::*` fd plumbing) is confined \
                     to {FFI_HOME}; call its safe wrappers instead"
                ),
            });
        }

        if checked_sync && !in_test[idx] && references_shadowed_std_sync(code, is_serve) {
            out.push(Finding {
                file: path.to_string(),
                line: lineno,
                rule: "checked-sync",
                message: "module opted into the checked-sync facade imports a std::sync \
                          primitive the facade shadows; use `crate::sync`"
                    .to_string(),
            });
        }
    }
}

/// The crate a path belongs to, as (crate key, is crate root file).
fn crate_of(path: &str) -> (String, bool) {
    if let Some(rest) = path.strip_prefix("crates/") {
        let name = rest.split('/').next().unwrap_or(rest);
        let root = path == format!("crates/{name}/src/lib.rs")
            || path == format!("crates/{name}/src/main.rs");
        (format!("crates/{name}"), root)
    } else {
        (
            ".".to_string(),
            path == "src/lib.rs" || path == "src/main.rs",
        )
    }
}

fn lint_workspace(files: &[(String, String)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (path, text) in files {
        lint_file(path, text, &mut out);
    }

    // forbid-unsafe: group files per crate, find crate roots, require the
    // attribute when the crate has zero unsafe sites.
    use std::collections::BTreeMap;
    struct CrateInfo {
        has_unsafe: bool,
        root: Option<(String, bool)>, // (path, has forbid attribute)
    }
    let mut crates: BTreeMap<String, CrateInfo> = BTreeMap::new();
    for (path, text) in files {
        let (key, is_root) = crate_of(path);
        let lines = lex(text);
        let has_unsafe = lines.iter().any(|l| contains_word(&l.code, "unsafe"));
        let info = crates.entry(key).or_insert(CrateInfo {
            has_unsafe: false,
            root: None,
        });
        info.has_unsafe |= has_unsafe;
        if is_root {
            let has_forbid = lines
                .iter()
                .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"));
            info.root = Some((path.clone(), has_forbid));
        }
    }
    for (key, info) in crates {
        let Some((root_path, has_forbid)) = info.root else {
            continue;
        };
        if !info.has_unsafe && !has_forbid {
            out.push(Finding {
                file: root_path,
                line: 1,
                rule: "forbid-unsafe",
                message: format!(
                    "crate {key} has no unsafe code; add `#![forbid(unsafe_code)]` to its root"
                ),
            });
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, text: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        lint_file(path, text, &mut out);
        out
    }

    #[test]
    fn lexer_strips_strings_comments_and_char_literals() {
        let lines = lex(concat!(
            "let s = \"unsafe in a string\"; // unsafe in a comment\n",
            "/* unsafe\n   in a block */ let c = 'u'; let lt: &'static str = s;\n",
            "let r = r#\"unsafe raw\"#;\n",
        ));
        assert!(!contains_word(&lines[0].code, "unsafe"));
        assert_eq!(lines[0].comment.as_deref(), Some(" unsafe in a comment"));
        assert!(!contains_word(&lines[1].code, "unsafe"));
        assert!(!contains_word(&lines[2].code, "unsafe"));
        assert!(lines[2].code.contains("let c"));
        assert!(lines[2].code.contains("'static"));
        assert!(!contains_word(&lines[3].code, "unsafe"));
    }

    #[test]
    fn word_matching_ignores_identifier_prefixes() {
        assert!(!contains_word("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!contains_word("#![deny(unsafe_op_in_unsafe_fn)]", "unsafe"));
        assert!(contains_word("unsafe impl Send for X {}", "unsafe"));
        assert!(contains_word("let x = unsafe { y };", "unsafe"));
    }

    #[test]
    fn safety_comment_walkup_accepts_runs_and_attributes() {
        let ok = "// SAFETY: the pointer is valid because reasons that\n\
                  // span two lines.\n\
                  #[allow(clippy::undocumented_unsafe_blocks)]\n\
                  unsafe impl Send for X {}\n";
        assert!(findings("crates/nn/src/x.rs", ok).is_empty());

        let missing = "let y = 1;\nunsafe impl Send for X {}\n";
        let f = findings("crates/nn/src/x.rs", missing);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
        assert_eq!(f[0].line, 2);

        let blank_breaks = "// SAFETY: too far away\n\nunsafe { x() };\n";
        assert_eq!(findings("crates/nn/src/x.rs", blank_breaks).len(), 1);

        let adjacent = "// SAFETY: one comment for both lines\n\
                        unsafe { a() };\n\
                        unsafe { b() };\n";
        assert!(findings("crates/nn/src/x.rs", adjacent).is_empty());
    }

    #[test]
    fn unwrap_rule_is_serve_only_and_skips_tests_and_combinators() {
        let text = "fn f() { x.unwrap(); }\n\
                    fn g() { x.unwrap_or_else(id); y.expect_err(\"no\"); }\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                        fn t() { x.unwrap(); y.expect(\"fine in tests\"); }\n\
                    }\n";
        let f = findings("crates/serve/src/daemon.rs", text);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-unwrap");
        assert_eq!(f[0].line, 1);
        assert!(findings("crates/nn/src/pool.rs", text).is_empty());
    }

    #[test]
    fn raw_clock_rule_exempts_telemetry_and_other_crates() {
        let text = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(findings("crates/serve/src/daemon.rs", text).len(), 1);
        assert!(findings("crates/serve/src/telemetry.rs", text).is_empty());
        assert!(findings("crates/sim/src/schemes.rs", text).is_empty());
    }

    #[test]
    fn checked_sync_rule_bans_shadowed_imports_only() {
        let marked = "// teal-lint: checked-sync\n\
                      use std::sync::OnceLock;\n\
                      use std::sync::PoisonError;\n";
        assert!(findings("crates/nn/src/pool.rs", marked).is_empty());

        let bad = "// teal-lint: checked-sync\n\
                   use std::sync::{Mutex, PoisonError};\n";
        let f = findings("crates/nn/src/pool.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "checked-sync");
        assert_eq!(f[0].line, 2);

        let atomic = "// teal-lint: checked-sync\n\
                      use std::sync::atomic::AtomicBool;\n";
        assert_eq!(findings("crates/nn/src/pool.rs", atomic).len(), 1);

        let thread = "// teal-lint: checked-sync\n\
                      fn f() { std::thread::spawn(|| ()); }\n";
        assert_eq!(findings("crates/serve/src/daemon.rs", thread).len(), 1);
        // The nn pool spawns its own OS workers; only serve's facade
        // shims threads.
        assert!(findings("crates/nn/src/pool.rs", thread).is_empty());

        let unmarked = "use std::sync::Mutex;\n";
        assert!(findings("crates/serve/src/server.rs", unmarked).is_empty());

        let in_tests = "// teal-lint: checked-sync\n\
                        #[cfg(test)]\n\
                        mod tests {\n\
                            use std::sync::Arc;\n\
                        }\n";
        assert!(findings("crates/serve/src/registry.rs", in_tests).is_empty());

        // Prose mentioning the marker does not opt a module in.
        let prose = "//! Carry the `// teal-lint: checked-sync` marker to opt in.\n\
                     use std::sync::Mutex;\n";
        assert!(findings("crates/serve/src/sync.rs", prose).is_empty());
    }

    #[test]
    fn ffi_rule_confines_extern_and_std_os_to_sys() {
        // The one audited home may declare FFI and use std::os fd types.
        let ffi = "// SAFETY: signatures transcribed from the kernel ABI\n\
                   extern \"C\" { fn close(fd: i32) -> i32; }\n\
                   use std::os::fd::AsRawFd;\n";
        assert!(findings("crates/serve/src/net/sys.rs", ffi).is_empty());

        // Anywhere else, both the extern block and the fd import fire.
        let f = findings("crates/serve/src/net/mod.rs", ffi);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "ffi-confined"));
        assert_eq!(findings("crates/nn/src/pool.rs", ffi).len(), 2);

        // Prose and string mentions are not declarations.
        let prose = "//! Raw FFI (`extern \"C\"`) is confined to sys.rs.\n\
                     let s = \"no extern here, no std::os:: either\";\n";
        assert!(findings("crates/serve/src/server.rs", prose).is_empty());

        // Test modules may exercise the wrappers however they like.
        let in_tests = "#[cfg(test)]\n\
                        mod tests {\n\
                            use std::os::fd::AsRawFd;\n\
                        }\n";
        assert!(findings("crates/serve/src/daemon.rs", in_tests).is_empty());
    }

    #[test]
    fn forbid_rule_fires_only_for_zero_unsafe_crates() {
        let clean = vec![
            (
                "crates/topology/src/lib.rs".to_string(),
                "pub fn f() {}\n".to_string(),
            ),
            (
                "crates/nn/src/lib.rs".to_string(),
                "pub mod par;\n".to_string(),
            ),
            (
                "crates/nn/src/par.rs".to_string(),
                "// SAFETY: disjoint by construction\nunsafe { x() };\n".to_string(),
            ),
        ];
        let f = lint_workspace(&clean);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "forbid-unsafe");
        assert_eq!(f[0].file, "crates/topology/src/lib.rs");

        let fixed = vec![(
            "crates/topology/src/lib.rs".to_string(),
            "#![forbid(unsafe_code)]\npub fn f() {}\n".to_string(),
        )];
        assert!(lint_workspace(&fixed).is_empty());
    }

    #[test]
    fn test_mod_detection_tracks_braces() {
        let text = "fn a() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                        fn inner() { if x { y(); } }\n\
                    }\n\
                    fn b() { x.unwrap(); }\n";
        let f = findings("crates/serve/src/x.rs", text);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 6);
    }
}

//! # teal — Learning-Accelerated WAN Traffic Engineering
//!
//! A from-scratch Rust reproduction of *Teal: Learning-Accelerated
//! Optimization of WAN Traffic Engineering* (SIGCOMM 2023): a flow-centric
//! graph neural network (FlowGNN) feeding a shared per-demand policy network
//! trained with multi-agent reinforcement learning (COMA*), fine-tuned by a
//! few parallel ADMM iterations.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`nn`] — tensors, autograd, optimizers (the PyTorch/GPU substitute);
//! * [`topology`] — WAN graphs, generators, k-shortest paths;
//! * [`traffic`] — synthetic heavy-tailed traffic matrices;
//! * [`lp`] — the TE problem, simplex / ADMM / Fleischer solvers, and
//!   feasible-flow semantics;
//! * [`core`] — Teal itself: FlowGNN, COMA*, the deployment engine;
//! * [`baselines`] — LP-top, NCFlow, POP, TEAVAR*;
//! * [`sim`] — the online/offline evaluation harness;
//! * [`serve`] — the multi-topology serving daemon (micro-batching
//!   coalescer, hot model-weight swap, latency telemetry).
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use teal::core::{train_coma, ComaConfig, Env, EngineConfig, TealConfig, TealEngine, TealModel};
//! use teal::topology::b4;
//! use teal::traffic::{TrafficConfig, TrafficModel};
//!
//! // 1. Topology + candidate paths.
//! let env = Arc::new(Env::for_topology(b4()));
//! // 2. Traffic.
//! let mut traffic = TrafficModel::new(&env.topo().all_pairs(), TrafficConfig::default(), 0);
//! traffic.calibrate(env.topo(), env.paths());
//! let train = traffic.series(0, 32);
//! let val = traffic.series(32, 8);
//! // 3. Train.
//! let mut model = TealModel::new(Arc::clone(&env), TealConfig::default());
//! train_coma(&mut model, &train, &val, &ComaConfig::default());
//! // 4. Deploy: one forward pass + 2 ADMM iterations per traffic matrix.
//! let engine = TealEngine::new(model, EngineConfig::paper_default(12));
//! let tm = traffic.series(40, 1).remove(0);
//! let (allocation, elapsed) = engine.allocate(&tm);
//! println!("allocated {} demands in {:?}", allocation.num_demands(), elapsed);
//! ```

pub use teal_baselines as baselines;
pub use teal_core as core;
pub use teal_lp as lp;
pub use teal_nn as nn;
pub use teal_serve as serve;
pub use teal_sim as sim;
pub use teal_topology as topology;
pub use teal_traffic as traffic;

//! Offline shim implementing the subset of the Criterion benchmarking API
//! this workspace uses: `criterion_group!` / `criterion_main!`, benchmark
//! groups with `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Measurements are real (warm-up, then timed batches), but the statistics
//! are deliberately simple: mean / min / max plus nearest-rank p50/p99 over
//! the collected per-sample iteration times (serving benches report tail
//! latency, so percentiles are first-class). Results are printed as a table
//! and, when the `CRITERION_JSON_PATH` environment variable is set, written
//! as a JSON array to that path — the hook the CI workflow uses to persist
//! `BENCH_throughput.json` and `BENCH_serve.json`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full benchmark id, e.g. `throughput/batched/B4`.
    pub id: String,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time, nanoseconds.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time, nanoseconds.
    pub max_ns: f64,
    /// Median (nearest-rank) per-iteration time, nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile (nearest-rank) per-iteration time, nanoseconds.
    /// With fewer than 100 samples this is the slowest sample.
    pub p99_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Append a caller-computed record to the results table, so benches that
/// measure something other than whole-iteration wall time (per-request
/// latency percentiles, say) can land their numbers in the same JSON
/// summary the CI workflow persists. Real Criterion covers this with
/// `iter_custom`; the shim exposes the sink directly.
pub fn push_record(record: BenchRecord) {
    eprintln!(
        "bench {:<48} mean {:>12}  (p50 {}, p99 {}, min {}, max {}, {} samples x {} iters)",
        record.id,
        fmt_ns(record.mean_ns),
        fmt_ns(record.p50_ns),
        fmt_ns(record.p99_ns),
        fmt_ns(record.min_ns),
        fmt_ns(record.max_ns),
        record.samples,
        record.iters
    );
    RESULTS.lock().expect("results poisoned").push(record);
}

/// Prevent the optimizer from eliding a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Hierarchical benchmark name: `function/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose a two-level id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// A flat id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Measurement settings shared by a group or a bare `Criterion`.
#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// The top-level harness handle passed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }

    /// Benchmark a closure under a flat name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.settings, &mut f);
        self
    }
}

/// A named group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        run_bench(&id, self.settings, &mut f);
        self
    }

    /// Benchmark a closure that receives a fixed input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        run_bench(&full, self.settings, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (kept for API parity; measurement happens eagerly).
    pub fn finish(self) {}
}

/// Per-bench measurement summary produced by [`Bencher::iter`].
struct Measurement {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    p50_ns: f64,
    p99_ns: f64,
    samples: usize,
    iters: u64,
}

/// Nearest-rank percentile of an ascending-sorted sample set (`q` in
/// `[0, 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    settings: Settings,
    record: Option<Measurement>,
}

impl Bencher {
    /// Measure `f`: warm up, pick a batch size that fits the measurement
    /// budget, then time `sample_size` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (at least one call) and single-shot estimate.
        let warm_start = Instant::now();
        let mut est_ns = f64::INFINITY;
        loop {
            let t0 = Instant::now();
            black_box(f());
            est_ns = est_ns.min(t0.elapsed().as_nanos() as f64);
            if warm_start.elapsed() >= self.settings.warm_up_time {
                break;
            }
        }
        let est_ns = est_ns.max(1.0);
        let budget_per_sample =
            self.settings.measurement_time.as_nanos() as f64 / self.settings.sample_size as f64;
        let iters = ((budget_per_sample / est_ns).floor() as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.settings.sample_size);
        for _ in 0..self.settings.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        self.record = Some(Measurement {
            mean_ns: mean,
            min_ns: samples[0],
            max_ns: *samples.last().expect("nonempty samples"),
            p50_ns: percentile(&samples, 0.50),
            p99_ns: percentile(&samples, 0.99),
            samples: samples.len(),
            iters,
        });
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, settings: Settings, f: &mut F) {
    let mut b = Bencher {
        settings,
        record: None,
    };
    f(&mut b);
    let m = b
        .record
        .expect("benchmark closure never called Bencher::iter");
    let rec = BenchRecord {
        id: id.to_string(),
        mean_ns: m.mean_ns,
        min_ns: m.min_ns,
        max_ns: m.max_ns,
        p50_ns: m.p50_ns,
        p99_ns: m.p99_ns,
        samples: m.samples,
        iters: m.iters,
    };
    eprintln!(
        "bench {:<48} mean {:>12}  (p50 {}, p99 {}, min {}, max {}, {} samples x {} iters)",
        rec.id,
        fmt_ns(rec.mean_ns),
        fmt_ns(rec.p50_ns),
        fmt_ns(rec.p99_ns),
        fmt_ns(rec.min_ns),
        fmt_ns(rec.max_ns),
        rec.samples,
        rec.iters
    );
    RESULTS.lock().expect("results poisoned").push(rec);
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Write all collected records as JSON to `CRITERION_JSON_PATH` (if set).
/// Called automatically by `criterion_main!`.
pub fn write_json_summary() {
    let results = RESULTS.lock().expect("results poisoned");
    let Ok(path) = std::env::var("CRITERION_JSON_PATH") else {
        return;
    };
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
             \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
             \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            r.id,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.p50_ns,
            r.p99_ns,
            r.samples,
            r.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: failed to write {path}: {e}");
    } else {
        eprintln!("criterion shim: wrote {} results to {path}", results.len());
    }
}

/// Define a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the listed groups, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; measuring there
            // would only slow the suite down, so bail out like Criterion does.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
            $crate::write_json_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(30));
        g.warm_up_time(Duration::from_millis(5));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n * 100).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn records_are_collected() {
        let before = RESULTS.lock().unwrap().len();
        let mut c = Criterion::default();
        sample_bench(&mut c);
        let results = RESULTS.lock().unwrap();
        assert!(results.len() >= before + 2);
        let rec = results.last().unwrap();
        assert!(rec.mean_ns > 0.0);
        assert!(rec.min_ns <= rec.mean_ns && rec.mean_ns <= rec.max_ns);
        assert!(rec.min_ns <= rec.p50_ns && rec.p50_ns <= rec.p99_ns);
        assert!(rec.p99_ns <= rec.max_ns);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 0.50), 50.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}

//! Offline shim for `crossbeam::scope`, backed by `std::thread::scope`.
//!
//! The workspace only uses crossbeam for scoped threads; since Rust 1.63 the
//! standard library provides the same guarantee (all threads joined before
//! the scope returns), so this shim is a thin adapter that preserves the
//! crossbeam call shape: `scope(|s| { s.spawn(|_| ...); }).expect(...)`.
//!
//! Panic semantics differ slightly from upstream: a panicking worker
//! propagates the panic out of [`scope`] (via `std::thread::scope`) instead
//! of surfacing as an `Err`, so the `Ok` returned here is unconditional.
//! Every call site in this workspace immediately `expect`s the result, which
//! behaves identically under both semantics.

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives a scope handle (unused by
    /// this workspace, but part of the crossbeam signature).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a thread scope; all spawned workers are joined before this
/// returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Namespace parity with `crossbeam::thread`.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_join_and_mutate_borrowed_data() {
        let mut data = vec![0usize; 64];
        scope(|s| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                s.spawn(move |_| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = i * 16 + j;
                    }
                });
            }
        })
        .expect("scope failed");
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn nested_spawn_via_handle() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
                total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .expect("scope failed");
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 2);
    }
}

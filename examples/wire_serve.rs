//! The TCP serving loop end to end: bind a `TealServer` on loopback,
//! connect a pipelined `TealClient`, and submit a mixed window — plain
//! requests, deadline'd requests (admission control), and failed-link
//! requests (the paper's §5.3 failure recovery, served without
//! retraining) — then read the sheds/expiries off the serving telemetry.
//!
//! Run with: `cargo run --release --example wire_serve`

use std::sync::Arc;
use std::time::Duration;
use teal::core::{EngineConfig, Env, ServingContext, TealConfig, TealModel};
use teal::serve::{ModelRegistry, ServeDaemon, SubmitRequest, TealClient, TealServer};
use teal::topology::b4;
use teal::traffic::TrafficMatrix;

fn main() {
    // --- 1. Serving core: registry + daemon, exactly as in-process.
    let env = Arc::new(Env::for_topology(b4()));
    let model = TealModel::new(Arc::clone(&env), TealConfig::default());
    let registry = ModelRegistry::new();
    registry.insert(
        "b4",
        ServingContext::new(model, EngineConfig::paper_default(env.topo().num_nodes())),
    );
    let daemon = Arc::new(ServeDaemon::with_defaults(registry));

    // --- 2. Wire front end: a real TCP socket (ephemeral loopback port).
    let server = TealServer::bind(Arc::clone(&daemon), "127.0.0.1:0").expect("bind");
    println!("serving on {}", server.local_addr());
    let client = TealClient::connect(server.local_addr()).expect("connect");

    let tm = |i: usize| TrafficMatrix::new(vec![5.0 + 2.0 * i as f64; env.num_demands()]);

    // --- 3. A pipelined mixed window: 4 plain, 2 deadline'd, 2 on a
    // degraded topology (link 0-1 failed). Replies return out of order by
    // request id; tickets redeem in any order.
    let mut tickets = Vec::new();
    for i in 0..4 {
        tickets.push(("plain", client.submit(&SubmitRequest::new("b4", tm(i)))));
    }
    for i in 4..6 {
        tickets.push((
            "deadline 500ms",
            client
                .submit(&SubmitRequest::new("b4", tm(i)).with_deadline(Duration::from_millis(500))),
        ));
    }
    for i in 6..8 {
        tickets.push((
            "link 0-1 failed",
            client.submit(&SubmitRequest::new("b4", tm(i)).with_failed_link(0, 1)),
        ));
    }
    for (kind, ticket) in tickets {
        match ticket.wait() {
            Ok(reply) => println!(
                "{kind:>16}: batch of {:>2}, {:?}",
                reply.batch_size, reply.latency
            ),
            Err(e) => println!("{kind:>16}: {e}"),
        }
    }

    // --- 4. Admission control in action: a request whose budget is
    // already spent is shed instead of queued.
    let shed = client
        .submit(&SubmitRequest::new("b4", tm(0)).with_deadline(Duration::ZERO))
        .wait();
    println!("zero-budget request: {:?}", shed.err());

    // --- 5. Telemetry across the socket boundary: scrape the live
    // snapshot over the *same* connection (a v2 STATS frame, pipelined
    // like any request) — no side channel into the daemon needed.
    let stats = client.stats().expect("stats scrape over TCP");
    println!(
        "completed {} | shed {} | expired {} | mean batch {:.1}",
        stats.completed,
        stats.shed,
        stats.expired,
        stats.mean_batch_size()
    );
    for t in &stats.per_topology {
        println!("  {}: p50 {:?} p99 {:?}", t.topology, t.p50, t.p99);
        println!(
            "    stages p99: queue-wait {:?} | solve {:?} | write {:?}",
            t.queue_wait.p99, t.solve.p99, t.write.p99
        );
        if let Some(admm) = &t.admm {
            println!(
                "    admm: {} windows / {} lanes, {:.2} iters/lane, {} frozen",
                admm.windows,
                admm.lanes,
                admm.mean_iterations(),
                admm.frozen_lanes
            );
        }
    }
    // Each reply also carried its own stage breakdown (`reply.stages`);
    // the scraped snapshot aggregates the same spans into histograms.
}

//! Concurrent-racing LP solving, reproducing Figure 2.
//!
//! §2.1: "To exploit multiple CPU threads, LP solvers often resort to
//! concurrently running independent instances of different optimization
//! algorithms, where each instance executes serially on a separate thread;
//! the solution is yielded by whichever instance completes first." The
//! consequence is the famously marginal multicore speedup the paper measures
//! on Gurobi (3.8x at 16 threads).
//!
//! We reproduce the mechanism: with `t` threads we launch `t` serial solver
//! instances whose configurations differ (ADMM penalty ρ and over-relaxation
//! of the tolerance), and take the first to converge. Extra threads help only
//! insofar as one of the alternative configurations happens to converge
//! faster — exactly the sublinear behaviour of Figure 2.

use crate::admm::{AdmmConfig, AdmmSolver};
use crate::problem::{Allocation, Objective, TeInstance};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Result of a concurrent-racing solve.
#[derive(Debug)]
pub struct RaceResult {
    /// The winning allocation.
    pub alloc: Allocation,
    /// Wall-clock time until the first instance finished.
    pub elapsed: Duration,
    /// Index of the winning configuration.
    pub winner: usize,
}

/// Candidate ρ values assigned round-robin to racing instances. The first is
/// the default; alternatives are plausible but usually slower, so extra
/// threads yield diminishing returns.
const RHO_LADDER: [f64; 8] = [1.0, 0.5, 2.0, 0.25, 4.0, 0.125, 8.0, 16.0];

/// Solve `inst` with `threads` racing serial instances and return the first
/// result (plus timing).
pub fn race_solve(inst: &TeInstance, obj: Objective, threads: usize, tol: f64) -> RaceResult {
    assert!(threads >= 1);
    let solver = AdmmSolver::new(inst, obj);
    let start = Instant::now();
    let done = AtomicBool::new(false);
    let winner: Mutex<Option<(usize, Allocation, Duration)>> = Mutex::new(None);

    crossbeam::scope(|s| {
        for t in 0..threads {
            let solver = &solver;
            let done = &done;
            let winner = &winner;
            let inst_nd = inst.num_demands();
            let inst_k = inst.k();
            s.spawn(move |_| {
                let rho = RHO_LADDER[t % RHO_LADDER.len()];
                // Each racer is a *serial* instance (as Gurobi's concurrent
                // mode runs serial algorithms per thread); it checks the
                // shared flag each iteration and stops once someone won.
                let cfg = AdmmConfig {
                    rho,
                    max_iters: 20_000,
                    tol,
                    serial: true,
                };
                let init = Allocation::zeros(inst_nd, inst_k);
                let (result, _rep) = solver.run_with_cancel(&init, cfg, Some(done));
                // First finisher wins; racers cancelled by the flag find
                // `done` already true and cannot record.
                if !done.swap(true, Ordering::SeqCst) {
                    let mut w = winner.lock().unwrap();
                    *w = Some((t, result, start.elapsed()));
                }
            });
        }
    })
    .expect("racing solver panicked");

    let (idx, alloc, elapsed) = winner.into_inner().unwrap().expect("no racer finished");
    RaceResult {
        alloc,
        elapsed,
        winner: idx,
    }
}

/// Measure each racing configuration's *serial* solve time, one at a time.
///
/// On a `t`-core machine, Gurobi-style concurrent racing finishes when the
/// fastest of the first `t` configurations converges; with dedicated cores
/// that wall-clock time is `min` over those serial times. This helper makes
/// Figure 2 reproducible on machines with few cores (including the 1-core
/// CI boxes this reproduction targets): measure once per configuration, then
/// derive the race outcome for any thread count as a prefix minimum.
pub fn measure_racers(
    inst: &TeInstance,
    obj: Objective,
    num_configs: usize,
    tol: f64,
) -> Vec<Duration> {
    let solver = AdmmSolver::new(inst, obj);
    let mut times = Vec::with_capacity(num_configs);
    for &rho in RHO_LADDER.iter().take(num_configs) {
        let cfg = AdmmConfig {
            rho,
            max_iters: 20_000,
            tol,
            serial: true,
        };
        let init = Allocation::zeros(inst.num_demands(), inst.k());
        let start = Instant::now();
        let _ = solver.run(&init, cfg);
        times.push(start.elapsed());
    }
    times
}

/// Wall-clock time a concurrent race would take with `threads` dedicated
/// cores, from per-configuration serial measurements.
pub fn race_time_with_threads(racer_times: &[Duration], threads: usize) -> Duration {
    racer_times
        .iter()
        .take(threads.max(1).min(racer_times.len()))
        .min()
        .copied()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::evaluate;
    use teal_topology::{PathSet, Topology};
    use teal_traffic::TrafficMatrix;

    fn diamond() -> Topology {
        let mut t = Topology::new("d", 4);
        t.add_link(0, 1, 10.0, 1.0);
        t.add_link(1, 3, 10.0, 1.0);
        t.add_link(0, 2, 10.0, 1.5);
        t.add_link(2, 3, 10.0, 1.5);
        t
    }

    #[test]
    fn race_produces_good_solution() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![25.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let r = race_solve(&inst, Objective::TotalFlow, 2, 1e-4);
        let flow = evaluate(&inst, &r.alloc).realized_flow;
        assert!(flow > 18.0, "flow {flow}");
        assert!(r.winner < 2);
    }

    #[test]
    fn single_thread_works() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![5.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let r = race_solve(&inst, Objective::TotalFlow, 1, 1e-4);
        assert_eq!(r.winner, 0);
        let flow = evaluate(&inst, &r.alloc).realized_flow;
        assert!((flow - 5.0).abs() < 0.3, "flow {flow}");
    }
}

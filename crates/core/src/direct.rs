//! Direct loss minimization — the "Teal w/ direct loss" ablation (§3.3,
//! §5.7).
//!
//! The total feasible flow is non-differentiable (reconciliation zeroes the
//! gradient), so this trainer optimizes the surrogate from Appendix A
//! instead: the total *intended* flow minus total link overuse,
//!
//! `Σ_d Σ_p F_d(p)·d − Σ_e max(0, Σ_{p∋e} Σ_d F_d(p)·d − c(e))`,
//!
//! which is piecewise-differentiable and can be pushed through the autograd
//! tape directly (splits = softmax(μ), loads via SpMM with the transposed
//! incidence).

use crate::env::Env;
use crate::flowsim::FlowSim;
use crate::model::PolicyModel;
use teal_nn::{Adam, Graph, Tensor};
use teal_traffic::TrafficMatrix;

/// Direct-loss trainer hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct DirectConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
}

impl Default for DirectConfig {
    fn default() -> Self {
        DirectConfig {
            epochs: 12,
            lr: 2e-3,
            grad_clip: 5.0,
        }
    }
}

/// Train by gradient descent on the surrogate loss; the model is left
/// holding the best-validation weights. Returns per-epoch validation
/// satisfied-demand percentages.
pub fn train_direct(
    model: &mut dyn PolicyModel,
    train: &[TrafficMatrix],
    val: &[TrafficMatrix],
    cfg: &DirectConfig,
) -> Vec<f64> {
    assert!(!train.is_empty(), "empty training set");
    let env = std::sync::Arc::clone(model.env());
    let mut opt = Adam::new(cfg.lr);
    let mut best_val = f64::NEG_INFINITY;
    let mut best_snap = model.store().snapshot();
    let mut history = Vec::new();

    for _ in 0..cfg.epochs {
        for tm in train {
            step(model, &env, tm, cfg, &mut opt);
        }
        let val_pct = crate::coma::validate(model, &env, val);
        history.push(val_pct);
        if val_pct > best_val {
            best_val = val_pct;
            best_snap = model.store().snapshot();
        }
    }
    model.store_mut().restore(&best_snap);
    history
}

fn step(
    model: &mut dyn PolicyModel,
    env: &Env,
    tm: &TrafficMatrix,
    cfg: &DirectConfig,
    opt: &mut Adam,
) {
    let input = env.model_input(tm, None);
    let mut g = Graph::new();
    let fwd = model.forward(&mut g, &input);

    let nd = env.num_demands();
    let k = env.k();
    let inv = 1.0 / env.mean_cap();

    // splits = softmax(μ) rows; intended per-path flow = split * volume.
    let splits = g.softmax_rows(fwd.mu); // [D, k]
    let flat = g.reshape(splits, nd * k, 1); // [P, 1]
    let vols: Vec<f32> = (0..nd)
        .flat_map(|d| std::iter::repeat_n((tm.demand(d) * inv) as f32, k))
        .collect();
    let vol_const = g.input(Tensor::from_vec(nd * k, 1, vols));
    let flows = g.mul(flat, vol_const); // [P, 1]

    // Per-edge loads via the transposed incidence (E x P).
    let at = env.incidence().transposed();
    let loads = g.spmm(&at, flows); // [E, 1]
    let caps: Vec<f32> = env
        .topo()
        .edges()
        .iter()
        .map(|e| (e.capacity * inv) as f32)
        .collect();
    let cap_const = g.input(Tensor::from_vec(caps.len(), 1, caps));
    let over = g.sub(loads, cap_const);
    let overuse = g.relu(over);

    let intended = g.sum_all(flows);
    let penalty = g.sum_all(overuse);
    let surrogate = g.sub(intended, penalty);
    // Normalize by total demand so the lr is topology-independent.
    let norm = (tm.total() * inv).max(1e-9) as f32;
    let loss = g.scale(surrogate, -1.0 / norm);
    g.backward(loss);

    model.store_mut().zero_grads();
    model.absorb(&g, &fwd);
    if cfg.grad_clip > 0.0 {
        model.store_mut().clip_grad_norm(cfg.grad_clip);
    }
    opt.step(model.store_mut());
}

/// The surrogate value itself (for tests/diagnostics): intended flow minus
/// total overuse, in raw (unnormalized) units.
pub fn surrogate_value(env: &Env, tm: &TrafficMatrix, alloc: &teal_lp::Allocation) -> f64 {
    let inst = env.instance(tm);
    let stats = teal_lp::evaluate(&inst, alloc);
    stats.intended_flow - stats.total_overuse
}

/// Deterministic satisfied-demand percentage of a model on one matrix.
pub fn satisfied_pct(model: &dyn PolicyModel, env: &Env, tm: &TrafficMatrix) -> f64 {
    let alloc = model.allocate_deterministic(&env.model_input(tm, None));
    let mut sim = FlowSim::new(env, tm, None);
    sim.set_allocation(&alloc);
    let total = sim.total_demand();
    if total > 0.0 {
        (100.0 * sim.reward() / total).min(100.0)
    } else {
        100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coma::validate;
    use crate::model::{TealConfig, TealModel};
    use std::sync::Arc;
    use teal_topology::{PathSet, Topology};
    use teal_traffic::{TrafficConfig, TrafficModel};

    fn tiny_env() -> Arc<Env> {
        let mut t = Topology::new("tiny", 5);
        t.add_link(0, 1, 60.0, 1.0);
        t.add_link(1, 4, 60.0, 1.0);
        t.add_link(0, 2, 60.0, 1.2);
        t.add_link(2, 4, 60.0, 1.2);
        t.add_link(0, 3, 40.0, 1.4);
        t.add_link(3, 4, 40.0, 1.4);
        t.add_link(1, 2, 50.0, 1.0);
        let pairs = t.all_pairs();
        let paths = PathSet::compute(&t, &pairs, 4);
        Arc::new(Env::new(t, paths))
    }

    fn traffic(env: &Env, n: usize, seed: u64) -> Vec<TrafficMatrix> {
        let mut model = TrafficModel::new(&env.topo().all_pairs(), TrafficConfig::default(), seed);
        model.calibrate(env.topo(), env.paths());
        model.series(0, n)
    }

    #[test]
    fn direct_training_does_not_regress() {
        let env = tiny_env();
        let mut model = TealModel::new(
            Arc::clone(&env),
            TealConfig {
                gnn_layers: 3,
                ..TealConfig::default()
            },
        );
        let train = traffic(&env, 6, 21);
        let val = traffic(&env, 3, 77);
        let before = validate(&model, &env, &val);
        let hist = train_direct(
            &mut model,
            &train,
            &val,
            &DirectConfig {
                epochs: 8,
                lr: 5e-3,
                grad_clip: 5.0,
            },
        );
        let after = validate(&model, &env, &val);
        assert_eq!(hist.len(), 8);
        assert!(
            after >= before - 1e-6,
            "before {before:.2}% after {after:.2}%"
        );
    }

    #[test]
    fn surrogate_penalizes_overuse() {
        let env = tiny_env();
        let nd = env.num_demands();
        // Huge demands: everything oversubscribes, surrogate goes negative
        // relative to intended.
        let tm = TrafficMatrix::new(vec![1000.0; nd]);
        let alloc = teal_lp::Allocation::shortest_path(nd, env.k());
        let s = surrogate_value(&env, &tm, &alloc);
        let inst = env.instance(&tm);
        let intended = teal_lp::evaluate(&inst, &alloc).intended_flow;
        assert!(
            s < intended,
            "surrogate {s} must be below intended {intended}"
        );
    }
}

//! Experiment implementations — one entry point per table/figure in the
//! paper (see DESIGN.md §4 for the index and EXPERIMENTS.md for results).

pub mod ablation;
pub mod comparison;
pub mod failures;
pub mod objectives;
pub mod robustness;
pub mod tables;

use crate::testbed::{train_teal_engine, Testbed, TestbedSpec, TrainBudget};
use std::collections::HashMap;
use std::time::Duration;
use teal_core::{TealConfig, TealEngine, TealModel};
use teal_topology::TopoKind;

/// Ratio of the paper's measured LP-all runtime to the 5-minute TE interval,
/// per topology (§5.2: <1 s on SWAN/UsCarrier, 585 s on Kdl, ~5.5 h on ASN).
/// Our online experiments set the TE interval so that *our* measured LP-all
/// runtime stands in the same ratio — reproducing the staleness structure
/// without faking any measured time.
pub fn paper_lp_ratio(kind: TopoKind) -> f64 {
    match kind {
        TopoKind::B4 => 0.002,
        TopoKind::Swan => 0.003,
        TopoKind::UsCarrier => 0.01,
        TopoKind::Kdl => 1.95,
        TopoKind::Asn => 66.0,
    }
}

/// Shared state across experiments: built testbeds and trained engines are
/// cached so `expts all` trains each model once.
pub struct Harness {
    fast: bool,
    beds: HashMap<TopoKind, Testbed>,
    models: HashMap<TopoKind, TealModel>,
    /// Measured single-matrix LP-all time per testbed (for interval
    /// calibration), seconds.
    lp_time: HashMap<TopoKind, f64>,
}

impl Harness {
    /// `fast` shrinks every testbed and budget for smoke runs.
    pub fn new(fast: bool) -> Self {
        Harness {
            fast,
            beds: HashMap::new(),
            models: HashMap::new(),
            lp_time: HashMap::new(),
        }
    }

    /// Whether fast mode is on.
    pub fn fast(&self) -> bool {
        self.fast
    }

    /// Build (or fetch) the testbed for a topology kind.
    pub fn bed(&mut self, kind: TopoKind) -> &Testbed {
        if !self.beds.contains_key(&kind) {
            let spec = if self.fast {
                TestbedSpec::fast_for(kind)
            } else {
                TestbedSpec::default_for(kind)
            };
            eprintln!(
                "[harness] building testbed {:?} (scale {:.2})...",
                kind, spec.scale
            );
            self.beds.insert(kind, Testbed::build(spec));
        }
        &self.beds[&kind]
    }

    /// Default training budget.
    pub fn budget(&self) -> TrainBudget {
        if self.fast {
            TrainBudget {
                epochs: 2,
                lr: 3e-3,
                max_agents_per_step: 200,
            }
        } else {
            TrainBudget::default()
        }
    }

    /// Train (or fetch) the Teal model for a topology, returning a fresh
    /// engine around a clone of the trained weights.
    pub fn teal_engine(&mut self, kind: TopoKind) -> TealEngine<TealModel> {
        if !self.models.contains_key(&kind) {
            let budget = self.budget();
            let bed = self.bed(kind);
            eprintln!(
                "[harness] training Teal on {} ({} demands, {} epochs)...",
                bed.name(),
                bed.env.num_demands(),
                budget.epochs
            );
            let engine = train_teal_engine(bed, TealConfig::default(), budget);
            let model = engine.model().clone();
            self.models.insert(kind, model);
        }
        let bed = &self.beds[&kind];
        let cfg = teal_core::EngineConfig::paper_default(bed.env.topo().num_nodes());
        TealEngine::new(self.models[&kind].clone(), cfg)
    }

    /// Measure (once) the LP-all computation time on this testbed and derive
    /// the online TE interval from the paper's runtime/interval ratio.
    pub fn online_interval(&mut self, kind: TopoKind) -> Duration {
        if !self.lp_time.contains_key(&kind) {
            let bed = self.bed(kind);
            let env = std::sync::Arc::clone(&bed.env);
            let tm = bed.test[0].clone();
            let mut lp = teal_sim::LpAllScheme::new(env, teal_lp::Objective::TotalFlow);
            use teal_sim::Scheme as _;
            let bed = self.bed(kind);
            let (_, dt) = lp.allocate(bed.env.topo(), &tm);
            self.lp_time.insert(kind, dt.as_secs_f64());
        }
        let secs = (self.lp_time[&kind] / paper_lp_ratio(kind)).max(1e-3);
        Duration::from_secs_f64(secs)
    }
}

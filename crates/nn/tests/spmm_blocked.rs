//! Property tests: the cache-blocked / lane-unrolled [`Csr::spmm_batch`]
//! ≡ the scalar reference walk to 1e-6.
//!
//! The production kernel takes three shapes — a four-lane unrolled gather
//! for `d == 1`, a column-blocked tile walk for wide matrices, and the
//! plain streaming walk otherwise. All three must agree with
//! [`Csr::spmm_batch_reference`] (single-threaded, no blocking, no
//! unrolling) on random incidence structures and batch sizes; CI runs the
//! suite under `TEAL_NN_THREADS=1` and `=4`, so thread-count independence
//! is pinned too. Random inputs come in two flavors: genuinely random
//! sparse matrices wide enough to cross the blocking threshold, and real
//! path-edge incidence structures from random generated topologies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teal_nn::sparse::Csr;
use teal_nn::tensor::Tensor;
use teal_topology::{gravity_pairs, large_wan, PathSet};

const TOL: f32 = 1e-6;

/// `Σ |v| · |x|` per output element — the magnitude actually accumulated.
/// Reassociated f32 sums agree to ~ULP of this, not of the (possibly
/// cancelled) final value, so the 1e-6 budget is taken relative to it.
fn abs_bound(a: &Csr, x: &Tensor, batch: usize) -> Tensor {
    let d = x.cols();
    let mut out = Tensor::zeros(a.rows() * batch, d);
    for b in 0..batch {
        for r in 0..a.rows() {
            for (c, v) in a.row_entries(r) {
                for j in 0..d {
                    let acc =
                        out.get(b * a.rows() + r, j) + v.abs() * x.get(b * a.cols() + c, j).abs();
                    out.set(b * a.rows() + r, j, acc);
                }
            }
        }
    }
    out
}

/// The kernels reassociate f32 sums; each element must match the scalar
/// reference within `1e-6 * max(1, Σ|v·x|)`.
fn assert_close(a: &Csr, x: &Tensor, batch: usize) -> Result<(), String> {
    let got = a.spmm_batch(x, batch);
    let want = a.spmm_batch_reference(x, batch);
    prop_assert_eq!(got.shape(), want.shape());
    let bound = abs_bound(a, x, batch);
    for (i, (g, w)) in got.data().iter().zip(want.data().iter()).enumerate() {
        let scale = 1.0f32.max(bound.data()[i]);
        prop_assert!(
            (g - w).abs() <= TOL * scale,
            "element {}: blocked {} vs reference {} (bound {})",
            i,
            g,
            w,
            scale
        );
    }
    Ok(())
}

/// A random CSR wide enough to cross the column-block threshold when asked.
fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, nnz: usize) -> Csr {
    let mut triplets = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let r = rng.gen_range(0..rows);
        let c = rng.gen_range(0..cols);
        let v = rng.gen_range(-2.0f64..2.0) as f32;
        triplets.push((r, c, v));
    }
    Csr::from_triplets(rows, cols, &triplets)
}

fn random_x(rng: &mut StdRng, rows: usize, d: usize) -> Tensor {
    Tensor::from_vec(
        rows,
        d,
        (0..rows * d)
            .map(|_| rng.gen_range(-1.0f64..1.0) as f32)
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Wide random matrices (cols > 1024, nnz >= 4096): the blocked tile
    /// walk and, at d == 1, the unrolled gather, against the scalar oracle.
    #[test]
    fn blocked_kernel_matches_reference(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = rng.gen_range(40..160);
        let cols = rng.gen_range(1200..3000);
        let nnz = rng.gen_range(4200..9000);
        let a = random_csr(&mut rng, rows, cols, nnz);
        for &d in &[1usize, 2, 5, 6] {
            for &batch in &[1usize, 2, 5] {
                let x = random_x(&mut rng, cols * batch, d);
                assert_close(&a, &x, batch)?;
            }
        }
    }

    /// Small/narrow matrices stay on the plain walk — same oracle, and the
    /// d == 1 unroll must hold below the blocking threshold too.
    #[test]
    fn unblocked_kernel_matches_reference(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let rows = rng.gen_range(5..80);
        let cols = rng.gen_range(3..200);
        let nnz = rng.gen_range(1..600);
        let a = random_csr(&mut rng, rows, cols, nnz);
        for &d in &[1usize, 3, 6] {
            for &batch in &[1usize, 4] {
                let x = random_x(&mut rng, cols * batch, d);
                assert_close(&a, &x, batch)?;
            }
        }
    }

    /// Real FlowGNN structure: path-edge incidence of a random generated
    /// WAN, in both message-passing directions, across batch sizes.
    #[test]
    fn incidence_kernels_match_reference(seed in 0u64..1_000_000, n in 64usize..128) {
        let topo = large_wan(n, seed);
        let pairs = gravity_pairs(&topo, 3 * n, seed ^ 1);
        let paths = PathSet::compute(&topo, &pairs, 4);
        let trips = paths.incidence_triplets();
        let fwd = Csr::from_triplets(paths.num_paths(), topo.num_edges(), &trips);
        let bwd = fwd.transposed();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
        for a in [&fwd, &bwd] {
            for &d in &[1usize, 4] {
                for &batch in &[1usize, 3] {
                    let x = random_x(&mut rng, a.cols() * batch, d);
                    assert_close(a, &x, batch)?;
                }
            }
        }
    }
}

/// Batched call ≡ stacked per-block calls, bitwise, on a matrix that takes
/// the blocked path — the blocking decision must never depend on batch.
#[test]
fn blocked_batch_equals_per_block_bitwise() {
    let mut rng = StdRng::seed_from_u64(99);
    let a = random_csr(&mut rng, 96, 2048, 6000);
    for &d in &[2usize, 6] {
        let x0 = random_x(&mut rng, 2048, d);
        let x1 = random_x(&mut rng, 2048, d);
        let mut stacked = x0.data().to_vec();
        stacked.extend_from_slice(x1.data());
        let x = Tensor::from_vec(2 * 2048, d, stacked);
        let y = a.spmm_batch(&x, 2);
        let y0 = a.spmm_batch(&x0, 1);
        let y1 = a.spmm_batch(&x1, 1);
        for r in 0..96 {
            assert_eq!(y.row(r), y0.row(r), "d={d} block 0 row {r}");
            assert_eq!(y.row(r + 96), y1.row(r), "d={d} block 1 row {r}");
        }
    }
}

//! Checked-sync facade for this crate's concurrency-bearing module
//! ([`crate::pool`]): the same primitives compile against `std::sync` in a
//! normal build and against the vendored `loom` model checker under
//! `--cfg teal_loom` (set via `RUSTFLAGS`), so the pool's job-completion
//! protocol (claim → execute → `done`/condvar handoff) is exhaustively
//! checkable without forking the code. The serving crate carries the same
//! pattern in `teal-serve/src/sync.rs`; see its docs for the conventions
//! (the `// teal-lint: checked-sync` marker, why `lock()` recovers from
//! poisoning, what the loom shims intentionally do not model).

#[cfg(not(teal_loom))]
mod imp {
    use std::ops::{Deref, DerefMut};
    use std::sync::PoisonError;

    pub use std::sync::atomic;
    pub use std::sync::Arc;

    /// `std::sync::Mutex` minus poisoning: a panicking pool chunk is caught
    /// and re-thrown by the submitter, and the protected state (`done`
    /// counter, panic payload slot) is valid at every panic point, so
    /// recovery is sound — and keeps `expect` out of the hot claim loop.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    /// `std::sync::Condvar` over the facade's guards.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        pub fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            MutexGuard(self.0.wait(guard.0).unwrap_or_else(PoisonError::into_inner))
        }

        pub fn notify_all(&self) {
            self.0.notify_all()
        }
    }
}

#[cfg(teal_loom)]
mod imp {
    #[allow(unused_imports)] // parity with the std facade's full surface
    pub use loom::sync::atomic;
    #[allow(unused_imports)]
    pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard};
}

pub(crate) use imp::*;

//! Scheme shootout: the paper's headline comparison (§5.2) in miniature.
//!
//! Builds a Kdl-like testbed, trains Teal briefly, then runs Teal, LP-all,
//! LP-top, NCFlow, POP, and Fleischer's approximation through the *online*
//! control loop, where slow schemes serve live traffic with stale routes.
//! Prints a Figure-6-style table: average computation time and online
//! satisfied demand per scheme.
//!
//! Run with: `cargo run --release --example scheme_shootout`

use std::sync::Arc;
use std::time::Duration;
use teal::core::{train_coma, ComaConfig, EngineConfig, Env, TealConfig, TealEngine, TealModel};
use teal::lp::Objective;
use teal::sim::{
    run_online, FleischerScheme, LpAllScheme, LpTopScheme, NcflowScheme, PopScheme, Scheme,
    TealScheme,
};
use teal::topology::{generate, PathSet, TopoKind};
use teal::traffic::{TrafficConfig, TrafficModel};

fn main() {
    // A scaled Kdl (chain-like carrier WAN) with a few hundred demands.
    let topo = generate(TopoKind::Kdl, 0.08, 11);
    println!(
        "topology: Kdl-like, {} nodes, {} edges",
        topo.num_nodes(),
        topo.num_edges()
    );
    let mut pairs = topo.all_pairs();
    pairs.truncate(900);
    let paths = PathSet::compute(&topo, &pairs, 4);
    let mut traffic = TrafficModel::new(&pairs, TrafficConfig::default(), 11);
    traffic.calibrate(&topo, &paths);
    let env = Arc::new(Env::new(topo, paths));
    let train = traffic.series(0, 20);
    let val = traffic.series(20, 4);
    let test = traffic.series(24, 10);

    // Brief training run (the paper trains for a week on GPUs; see
    // EXPERIMENTS.md for the quality this budget reaches).
    let mut model = TealModel::new(Arc::clone(&env), TealConfig::default());
    let cfg = ComaConfig {
        epochs: 5,
        lr: 3e-3,
        agent_fraction: 0.5,
        ..ComaConfig::default()
    };
    eprintln!("training Teal ({} demands)...", env.num_demands());
    let _ = train_coma(&mut model, &train, &val, &cfg);
    let engine = TealEngine::new(model, EngineConfig::paper_default(env.topo().num_nodes()));

    // TE interval chosen so LP-all stands in the same runtime-to-interval
    // ratio as the paper measured on Kdl (585 s against a 300 s budget).
    let mut probe = LpAllScheme::new(Arc::clone(&env), Objective::TotalFlow);
    let (_, lp_dt) = probe.allocate(env.topo(), &test[0]);
    let interval = Duration::from_secs_f64(lp_dt.as_secs_f64() / 1.95);
    println!(
        "LP-all solve: {:.2}s -> TE interval set to {:.2}s (paper's Kdl ratio)\n",
        lp_dt.as_secs_f64(),
        interval.as_secs_f64()
    );

    let mut schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(LpAllScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(LpTopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(NcflowScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(PopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(FleischerScheme::new(Arc::clone(&env))),
        Box::new(TealScheme::new(engine)),
    ];

    println!(
        "{:<12} {:>16} {:>22}",
        "scheme", "avg comp time", "online satisfied (%)"
    );
    for s in &mut schemes {
        let res = run_online(&env, env.topo(), &test, s.as_mut(), interval);
        println!(
            "{:<12} {:>14.1}ms {:>21.1}%",
            s.name(),
            1e3 * res.mean_comp_time_s(),
            res.mean_satisfied_pct()
        );
    }
    println!(
        "\nSlow schemes lose demand to stale routes; Teal's fixed-cost forward \
         pass keeps it inside the TE budget (the paper's Figure 6)."
    );
}

//! Fast flow-level reward simulation with incremental counterfactual
//! evaluation.
//!
//! COMA* (Appendix B) needs, for every RL agent `i`, the reward the system
//! *would* have obtained had only agent `i` changed its action:
//! `R(s, (a_-i, a'_i))`. Recomputing total feasible flow from scratch per
//! counterfactual costs O(total paths); instead [`FlowSim`] maintains
//! per-edge loads and survival ratios and re-evaluates only the paths whose
//! bottleneck ratios can change — those crossing an edge whose load the
//! perturbed demand touches.

use crate::env::Env;
use teal_lp::Allocation;
use teal_traffic::TrafficMatrix;

/// Which scalar reward the simulator reports (the RL objective of §5.5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RewardKind {
    /// Total feasible flow (the default objective).
    TotalFlow,
    /// Negated max link utilization (so that higher is better).
    NegMaxUtil,
    /// Feasible flow discounted by normalized path latency with weight γ.
    DelayPenalized(f64),
}

/// Mutable flow-level state for one `(env, traffic matrix)` pair.
pub struct FlowSim<'a> {
    env: &'a Env,
    /// Demand volumes (copied out of the matrix).
    vols: Vec<f64>,
    /// Capacities (possibly from a failed-topology override).
    caps: Vec<f64>,
    /// Current split ratios, demand-major (`num_paths` entries).
    splits: Vec<f64>,
    /// Intended flow per path slot.
    intended: Vec<f64>,
    /// Intended load per edge.
    loads: Vec<f64>,
    /// Survival ratio per edge: min(1, cap/load) (0 for dead loaded links).
    ratios: Vec<f64>,
    /// Realized flow per path slot.
    realized: Vec<f64>,
    /// Σ realized · weight (the reward for flow-valued objectives).
    total_realized: f64,
    /// Reward definition.
    kind: RewardKind,
    /// Per-path value weight (1 for total flow; latency discount for the
    /// delay-penalized objective).
    pweights: Vec<f64>,
}

impl<'a> FlowSim<'a> {
    /// Build the simulator for a traffic matrix, optionally overriding the
    /// capacities (link failures). Uses the total-flow reward.
    pub fn new(env: &'a Env, tm: &TrafficMatrix, caps_override: Option<&[f64]>) -> Self {
        Self::with_reward(env, tm, caps_override, RewardKind::TotalFlow)
    }

    /// Build with an explicit reward definition.
    pub fn with_reward(
        env: &'a Env,
        tm: &TrafficMatrix,
        caps_override: Option<&[f64]>,
        kind: RewardKind,
    ) -> Self {
        let num_edges = env.topo().num_edges();
        let caps = match caps_override {
            Some(c) => {
                assert_eq!(c.len(), num_edges);
                c.to_vec()
            }
            None => env.topo().capacities(),
        };
        let num_paths = env.paths().num_paths();
        let pweights = match kind {
            RewardKind::DelayPenalized(gamma) => {
                let max_w = env
                    .paths()
                    .paths()
                    .iter()
                    .map(|p| p.weight)
                    .fold(0.0f64, f64::max)
                    .max(1e-12);
                env.paths()
                    .paths()
                    .iter()
                    .map(|p| (1.0 - gamma * p.weight / max_w).max(0.0))
                    .collect()
            }
            _ => vec![1.0; num_paths],
        };
        FlowSim {
            env,
            vols: tm.demands().to_vec(),
            caps,
            splits: vec![0.0; num_paths],
            intended: vec![0.0; num_paths],
            loads: vec![0.0; num_edges],
            ratios: vec![1.0; num_edges],
            realized: vec![0.0; num_paths],
            total_realized: 0.0,
            kind,
            pweights,
        }
    }

    /// The scalar reward under the configured [`RewardKind`]: weighted
    /// realized flow, or negated max link utilization.
    pub fn reward(&self) -> f64 {
        match self.kind {
            RewardKind::NegMaxUtil => -self.max_util(),
            _ => self.total_realized,
        }
    }

    fn max_util(&self) -> f64 {
        let mut m = 0.0f64;
        for (&l, &c) in self.loads.iter().zip(&self.caps) {
            if c > 0.0 {
                m = m.max(l / c);
            } else if l > 0.0 {
                return f64::INFINITY;
            }
        }
        m
    }

    /// Demand volume total.
    pub fn total_demand(&self) -> f64 {
        self.vols.iter().sum()
    }

    /// Install a full allocation and recompute all state from scratch.
    pub fn set_allocation(&mut self, alloc: &Allocation) {
        let k = self.env.k();
        assert_eq!(alloc.num_demands() * k, self.splits.len());
        self.splits.copy_from_slice(alloc.splits());
        self.loads.iter_mut().for_each(|l| *l = 0.0);
        for (p, &s) in self.splits.iter().enumerate() {
            let vol = self.vols[p / k];
            let f = s.max(0.0) * vol;
            self.intended[p] = f;
            if f > 0.0 {
                for &e in &self.env.paths().paths()[p].edges {
                    self.loads[e] += f;
                }
            }
        }
        for e in 0..self.loads.len() {
            self.ratios[e] = ratio(self.loads[e], self.caps[e]);
        }
        self.total_realized = 0.0;
        for p in 0..self.splits.len() {
            self.realized[p] = self.intended[p] * self.path_ratio(p);
            self.total_realized += self.realized[p] * self.pweights[p];
        }
    }

    fn path_ratio(&self, p: usize) -> f64 {
        let mut r = 1.0f64;
        for &e in &self.env.paths().paths()[p].edges {
            let re = self.ratios[e];
            if re < r {
                r = re;
            }
        }
        r
    }

    /// Reward if demand `d` used `new_splits` while all other demands kept
    /// their current splits. State is restored before returning.
    pub fn counterfactual_reward(&mut self, d: usize, new_splits: &[f64]) -> f64 {
        let k = self.env.k();
        assert_eq!(new_splits.len(), k);
        let vol = self.vols[d];
        if vol <= 0.0 {
            return self.reward();
        }

        // 1. Apply load deltas on the demand's edges, remembering changes.
        let mut changed_edges: Vec<(usize, f64, f64)> = Vec::new(); // (e, old_load, old_ratio)
        for (j, &ns) in new_splits.iter().enumerate().take(k) {
            let p = d * k + j;
            let delta = (ns.max(0.0) - self.splits[p].max(0.0)) * vol;
            if delta == 0.0 {
                continue;
            }
            for &e in &self.env.paths().paths()[p].edges {
                if !changed_edges.iter().any(|&(ee, _, _)| ee == e) {
                    changed_edges.push((e, self.loads[e], self.ratios[e]));
                }
                self.loads[e] += delta;
            }
        }
        if changed_edges.is_empty() {
            return self.reward();
        }
        // MLU reward: the max utilization needs no per-path reconciliation —
        // scan the loads, then revert.
        if self.kind == RewardKind::NegMaxUtil {
            let r = -self.max_util();
            for &(e, old_load, old_ratio) in &changed_edges {
                self.loads[e] = old_load;
                self.ratios[e] = old_ratio;
            }
            return r;
        }
        // 2. Recompute ratios on changed edges; collect paths whose
        //    bottleneck may move.
        let mut affected: Vec<u32> = Vec::new();
        for &(e, _, old_ratio) in &changed_edges {
            self.ratios[e] = ratio(self.loads[e], self.caps[e]);
            if (self.ratios[e] - old_ratio).abs() > 1e-15 {
                affected.extend_from_slice(self.env.paths().paths_on_edge(e));
            }
        }
        affected.sort_unstable();
        affected.dedup();
        // The perturbed demand's own paths always need re-evaluation.
        for j in 0..k {
            let p = (d * k + j) as u32;
            if let Err(pos) = affected.binary_search(&p) {
                affected.insert(pos, p);
            }
        }

        // 3. Re-evaluate affected paths under the counterfactual splits.
        let mut total = self.total_realized;
        for &p in &affected {
            let p = p as usize;
            let pd = p / k;
            let intended = if pd == d {
                new_splits[p % k].max(0.0) * vol
            } else {
                self.intended[p]
            };
            let new_real = intended * self.path_ratio(p);
            total += (new_real - self.realized[p]) * self.pweights[p];
        }

        // 4. Revert edge state.
        for &(e, old_load, old_ratio) in &changed_edges {
            self.loads[e] = old_load;
            self.ratios[e] = old_ratio;
        }
        total
    }

    /// Convenience for tests: exact recompute of the reward for an arbitrary
    /// allocation (no incremental logic).
    pub fn full_reward(&mut self, alloc: &Allocation) -> f64 {
        self.set_allocation(alloc);
        self.reward()
    }
}

fn ratio(load: f64, cap: f64) -> f64 {
    if load <= cap || load <= 0.0 {
        1.0
    } else if cap <= 0.0 {
        0.0
    } else {
        cap / load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;
    use teal_lp::{evaluate, Allocation, TeInstance};
    use teal_topology::{PathSet, Topology};
    use teal_traffic::TrafficMatrix;

    fn diamond_env() -> Env {
        let mut t = Topology::new("d", 4);
        t.add_link(0, 1, 10.0, 1.0);
        t.add_link(1, 3, 10.0, 1.0);
        t.add_link(0, 2, 10.0, 1.5);
        t.add_link(2, 3, 10.0, 1.5);
        t.add_link(0, 3, 5.0, 4.0);
        let pairs = t.all_pairs();
        let paths = PathSet::compute(&t, &pairs, 4);
        Env::new(t, paths)
    }

    fn uniform_alloc(env: &Env) -> Allocation {
        let k = env.k();
        let mut a = Allocation::zeros(env.num_demands(), k);
        for d in 0..env.num_demands() {
            for j in 0..k {
                a.demand_splits_mut(d)[j] = 1.0 / k as f64;
            }
        }
        a
    }

    #[test]
    fn reward_matches_flow_evaluate() {
        let env = diamond_env();
        let tm = TrafficMatrix::new(vec![7.0; env.num_demands()]);
        let alloc = uniform_alloc(&env);
        let mut sim = FlowSim::new(&env, &tm, None);
        sim.set_allocation(&alloc);
        let inst = TeInstance::new(env.topo(), env.paths(), &tm);
        let reference = evaluate(&inst, &alloc).realized_flow;
        assert!(
            (sim.reward() - reference).abs() < 1e-9 * (1.0 + reference),
            "sim {} vs evaluate {}",
            sim.reward(),
            reference
        );
    }

    #[test]
    fn counterfactual_matches_full_recompute() {
        let env = diamond_env();
        let tm = TrafficMatrix::new(
            (0..env.num_demands())
                .map(|d| 3.0 + (d % 5) as f64 * 2.0)
                .collect(),
        );
        let alloc = uniform_alloc(&env);
        let mut sim = FlowSim::new(&env, &tm, None);
        sim.set_allocation(&alloc);
        let base = sim.reward();
        let k = env.k();
        for d in 0..env.num_demands() {
            let new_splits = vec![0.7, 0.3, 0.0, 0.0];
            let cf = sim.counterfactual_reward(d, &new_splits);
            // Reference: full recompute.
            let mut changed = alloc.clone();
            changed.set_demand_splits(d, &new_splits);
            let mut sim2 = FlowSim::new(&env, &tm, None);
            let reference = sim2.full_reward(&changed);
            assert!(
                (cf - reference).abs() < 1e-9 * (1.0 + reference),
                "demand {d}: incremental {cf} vs full {reference}"
            );
            // State must be restored.
            assert!((sim.reward() - base).abs() < 1e-12 * (1.0 + base));
            let _ = k;
        }
    }

    #[test]
    fn counterfactual_with_failed_links() {
        let env = diamond_env();
        let tm = TrafficMatrix::new(vec![6.0; env.num_demands()]);
        let mut caps = env.topo().capacities();
        caps[0] = 0.0;
        caps[1] = 0.0;
        let alloc = uniform_alloc(&env);
        let mut sim = FlowSim::new(&env, &tm, Some(&caps));
        sim.set_allocation(&alloc);
        for d in 0..env.num_demands().min(4) {
            let cf = sim.counterfactual_reward(d, &[0.0, 0.0, 0.5, 0.5]);
            let mut changed = alloc.clone();
            changed.set_demand_splits(d, &[0.0, 0.0, 0.5, 0.5]);
            let mut sim2 = FlowSim::new(&env, &tm, Some(&caps));
            let reference = sim2.full_reward(&changed);
            assert!((cf - reference).abs() < 1e-9 * (1.0 + reference));
        }
    }

    #[test]
    fn neg_max_util_reward_matches_evaluate() {
        let env = diamond_env();
        let tm = TrafficMatrix::new(vec![9.0; env.num_demands()]);
        let alloc = uniform_alloc(&env);
        let mut sim = FlowSim::with_reward(&env, &tm, None, RewardKind::NegMaxUtil);
        sim.set_allocation(&alloc);
        let inst = TeInstance::new(env.topo(), env.paths(), &tm);
        let reference = -evaluate(&inst, &alloc).max_link_util;
        assert!(
            (sim.reward() - reference).abs() < 1e-9,
            "{} vs {}",
            sim.reward(),
            reference
        );
    }

    #[test]
    fn neg_max_util_counterfactual_matches_full() {
        let env = diamond_env();
        let tm = TrafficMatrix::new(vec![7.0; env.num_demands()]);
        let alloc = uniform_alloc(&env);
        let mut sim = FlowSim::with_reward(&env, &tm, None, RewardKind::NegMaxUtil);
        sim.set_allocation(&alloc);
        let base = sim.reward();
        for d in 0..env.num_demands().min(6) {
            let cf = sim.counterfactual_reward(d, &[1.0, 0.0, 0.0, 0.0]);
            let mut changed = alloc.clone();
            changed.set_demand_splits(d, &[1.0, 0.0, 0.0, 0.0]);
            let mut sim2 = FlowSim::with_reward(&env, &tm, None, RewardKind::NegMaxUtil);
            let full = sim2.full_reward(&changed);
            assert!((cf - full).abs() < 1e-9, "demand {d}: {cf} vs {full}");
            assert!((sim.reward() - base).abs() < 1e-12, "state not restored");
        }
    }

    #[test]
    fn delay_penalized_counterfactual_matches_full() {
        let env = diamond_env();
        let tm = TrafficMatrix::new(vec![11.0; env.num_demands()]);
        let alloc = uniform_alloc(&env);
        let kind = RewardKind::DelayPenalized(0.5);
        let mut sim = FlowSim::with_reward(&env, &tm, None, kind);
        sim.set_allocation(&alloc);
        for d in 0..env.num_demands().min(6) {
            let cf = sim.counterfactual_reward(d, &[0.1, 0.2, 0.3, 0.4]);
            let mut changed = alloc.clone();
            changed.set_demand_splits(d, &[0.1, 0.2, 0.3, 0.4]);
            let mut sim2 = FlowSim::with_reward(&env, &tm, None, kind);
            let full = sim2.full_reward(&changed);
            assert!(
                (cf - full).abs() < 1e-9 * (1.0 + full.abs()),
                "demand {d}: {cf} vs {full}"
            );
        }
    }

    #[test]
    fn delay_penalty_discounts_reward() {
        let env = diamond_env();
        let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
        let alloc = uniform_alloc(&env);
        let mut plain = FlowSim::new(&env, &tm, None);
        plain.set_allocation(&alloc);
        let mut pen = FlowSim::with_reward(&env, &tm, None, RewardKind::DelayPenalized(0.8));
        pen.set_allocation(&alloc);
        assert!(pen.reward() < plain.reward(), "penalty must reduce reward");
        assert!(pen.reward() > 0.0);
    }

    #[test]
    fn zero_volume_demand_counterfactual_is_noop() {
        let env = diamond_env();
        let mut demands = vec![5.0; env.num_demands()];
        demands[3] = 0.0;
        let tm = TrafficMatrix::new(demands);
        let alloc = uniform_alloc(&env);
        let mut sim = FlowSim::new(&env, &tm, None);
        sim.set_allocation(&alloc);
        let base = sim.reward();
        assert_eq!(sim.counterfactual_reward(3, &[1.0, 0.0, 0.0, 0.0]), base);
    }
}

//! Criterion bench: ADMM iteration cost — fine-tuning (2/5 iters, §3.4) vs
//! solve-to-convergence (the LP-all substitute), the iteration-count
//! ablation DESIGN.md calls out, and the serving-window comparison: one
//! batched sweep ([`teal_lp::AdmmBatchSolver`]) fine-tuning a whole window
//! against the old per-matrix solver loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teal_lp::{
    AdmmConfig, AdmmSkeleton, AdmmSolver, Allocation, BatchArena, Objective, TeInstance,
};
use teal_topology::{generate, PathSet, TopoKind};
use teal_traffic::{TrafficConfig, TrafficMatrix, TrafficModel};

fn instance(cap: usize) -> (teal_topology::Topology, PathSet, TrafficMatrix) {
    let topo = generate(TopoKind::Swan, 0.5, 42);
    let mut pairs = topo.all_pairs();
    pairs.truncate(cap);
    let paths = PathSet::compute(&topo, &pairs, 4);
    let mut model = TrafficModel::new(&pairs, TrafficConfig::default(), 42);
    model.calibrate(&topo, &paths);
    let tm = model.series(0, 1).remove(0);
    (topo, paths, tm)
}

fn bench_admm(c: &mut Criterion) {
    let (topo, paths, tm) = instance(1200);
    let inst = TeInstance::new(&topo, &paths, &tm);
    let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
    let init = Allocation::shortest_path(tm.len(), 4);
    let mut group = c.benchmark_group("admm");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for iters in [2usize, 5, 20, 100] {
        group.bench_with_input(BenchmarkId::new("iters", iters), &iters, |b, &n| {
            let cfg = AdmmConfig {
                rho: 1.0,
                max_iters: n,
                tol: 0.0,
                serial: false,
            };
            b.iter(|| solver.run(&init, cfg))
        });
    }
    group.finish();
}

/// Serving-window fine-tuning: the old path minted one serial per-matrix
/// solver per window entry (each run re-walking the incidence index); the
/// batched sweep repairs the whole window in one pass per iteration. Both
/// sides run 5 iterations (the ≥100-node fine-tune count) from the same
/// warm starts. On the 1-core CI container the win is the index-locality
/// one (no per-matrix re-walk); on multicore the demand/edge × batch tiles
/// also spread over the pool workers.
fn bench_fine_tune_window(c: &mut Criterion) {
    let topo = generate(TopoKind::Swan, 0.5, 42);
    let mut pairs = topo.all_pairs();
    pairs.truncate(1200);
    let paths = PathSet::compute(&topo, &pairs, 4);
    let mut model = TrafficModel::new(&pairs, TrafficConfig::default(), 42);
    model.calibrate(&topo, &paths);
    let skel = AdmmSkeleton::new(&topo, &paths, Objective::TotalFlow);
    let cfg = AdmmConfig {
        rho: 1.0,
        max_iters: 5,
        tol: 0.0,
        serial: false,
    };
    // The per-matrix loop mirrors the old allocate_batch: serial sweeps per
    // matrix, outer loop over the window.
    let looped_cfg = AdmmConfig {
        serial: true,
        ..cfg
    };
    let mut group = c.benchmark_group("admm_fine_tune_window");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for window in [4usize, 16] {
        let tms: Vec<TrafficMatrix> = model.series(0, window);
        let inits: Vec<Allocation> = tms
            .iter()
            .map(|tm| Allocation::shortest_path(tm.len(), 4))
            .collect();
        group.bench_with_input(BenchmarkId::new("looped", window), &window, |b, _| {
            b.iter(|| {
                // Exactly the old allocate_batch fine-tuning stage: one
                // serial-sweep solver per matrix, outer parallelism across
                // matrices via par_map (inert on one core, where matrices
                // solve back-to-back on the calling thread).
                teal_nn::par::par_map(tms.len(), 1, |i| {
                    Some(skel.solver(&tms[i]).run(&inits[i], looped_cfg).0)
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", window), &window, |b, _| {
            // The serving steady state: solver reminted and arena reused
            // across windows, so iterations past the first allocate nothing
            // on the ADMM hot path.
            let mut solver = skel.batch_solver(&tms);
            let mut arena = BatchArena::new();
            let mut outs = Vec::new();
            let mut reports = Vec::new();
            b.iter(|| {
                skel.remint_batch_solver(&mut solver, &tms);
                solver.run_batch_into(&inits, cfg, &mut arena, &mut outs, &mut reports);
                outs.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_admm, bench_fine_tune_window);
criterion_main!(benches);

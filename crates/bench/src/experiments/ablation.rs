//! Figures 14, 15, 16 — ablations, hyperparameter sensitivity, and the
//! flow-embedding visualization.

use super::Harness;
use crate::table::{emit, emit_csv, Table};
use crate::testbed::Testbed;
use std::sync::Arc;
use teal_core::ablation::{GlobalPolicyModel, NaiveDnnModel, NaiveGnnModel};
use teal_core::{
    train_coma, train_direct, validate, ComaConfig, DirectConfig, EngineConfig, Env, PolicyModel,
    TealConfig, TealEngine, TealModel,
};
use teal_lp::{evaluate, solve_lp, LpConfig, Objective};
use teal_topology::TopoKind;

/// Matrices per batched allocation chunk (Teal's batched serving path).
const ABLATION_BATCH: usize = 8;

fn coma_cfg(budget: crate::testbed::TrainBudget, env: &Env) -> ComaConfig {
    ComaConfig {
        epochs: budget.epochs,
        lr: budget.lr,
        agent_fraction: (budget.max_agents_per_step as f64 / env.num_demands().max(1) as f64)
            .min(1.0),
        ..ComaConfig::default()
    }
}

/// Satisfied % of a model (with optional ADMM) on the test set, running the
/// batched forward pass and a shared per-topology ADMM skeleton — the same
/// serving path the deployment engine uses.
fn score(bed: &Testbed, model: &dyn PolicyModel, with_admm: bool) -> f64 {
    let skeleton = with_admm
        .then(|| teal_lp::AdmmSkeleton::new(bed.env.topo(), bed.env.paths(), Objective::TotalFlow));
    let admm_cfg = teal_lp::AdmmConfig::fine_tune(bed.env.topo().num_nodes());
    let mut acc = 0.0;
    for chunk in bed.test.chunks(ABLATION_BATCH) {
        let allocs = model.allocate_batch(&bed.env.batch_input(chunk, None));
        for (tm, mut alloc) in chunk.iter().zip(allocs) {
            if let Some(skel) = &skeleton {
                alloc = skel.solver(tm).run(&alloc, admm_cfg).0;
            }
            let inst = bed.env.instance(tm);
            acc +=
                (100.0 * evaluate(&inst, &alloc).realized_flow / tm.total().max(1e-12)).min(100.0);
        }
    }
    acc / bed.test.len().max(1) as f64
}

/// Figure 14: ablation of Teal's key features on SWAN and ASN testbeds.
pub fn fig14(h: &mut Harness) {
    let mut t = Table::new(
        "Figure 14: ablation study — satisfied demand (%)",
        &["variant", "SWAN", "ASN"],
    );
    let mut results: Vec<(String, Vec<String>)> = vec![
        ("Teal".into(), vec![]),
        ("Teal w/o ADMM".into(), vec![]),
        ("Teal w/ direct loss".into(), vec![]),
        ("Teal w/ global policy".into(), vec![]),
        ("Teal w/ naive GNN".into(), vec![]),
        ("Teal w/ naive DNN".into(), vec![]),
    ];
    for kind in [TopoKind::Swan, TopoKind::Asn] {
        // Full Teal (cached in the harness).
        let _ = h.teal_engine(kind);
        let budget = h.budget();
        let bed = h.bed(kind);
        let env = Arc::clone(&bed.env);
        let cfg = coma_cfg(budget, &env);

        // Teal and Teal w/o ADMM share the trained model.
        let teal_model = {
            let engine = h.teal_engine(kind);
            engine.model().clone()
        };
        let bed = h.bed(kind);
        results[0]
            .1
            .push(format!("{:.1}", score(bed, &teal_model, true)));
        results[1]
            .1
            .push(format!("{:.1}", score(bed, &teal_model, false)));

        // Direct loss.
        let mut direct = TealModel::new(Arc::clone(&env), TealConfig::default());
        let d_cfg = DirectConfig {
            epochs: cfg.epochs,
            lr: cfg.lr,
            grad_clip: 5.0,
        };
        let _ = train_direct(&mut direct, &bed.train, &bed.val, &d_cfg);
        results[2]
            .1
            .push(format!("{:.1}", score(bed, &direct, true)));

        // Global policy: infeasible beyond a parameter budget, as in §5.7.
        let max_params = 40_000_000usize;
        match GlobalPolicyModel::new(Arc::clone(&env), TealConfig::default(), 64, max_params) {
            Ok(mut gp) => {
                let _ = train_coma(&mut gp, &bed.train, &bed.val, &cfg);
                results[3].1.push(format!("{:.1}", score(bed, &gp, false)));
            }
            Err(_) => results[3].1.push("infeasible (memory)".into()),
        }

        // Naive GNN.
        let mut ng = NaiveGnnModel::new(Arc::clone(&env), 16, 4, 3);
        let _ = train_coma(&mut ng, &bed.train, &bed.val, &cfg);
        results[4].1.push(format!("{:.1}", score(bed, &ng, false)));

        // Naive DNN.
        let mut ndn = NaiveDnnModel::new(Arc::clone(&env), 64, 6, 3);
        let _ = train_coma(&mut ndn, &bed.train, &bed.val, &cfg);
        results[5].1.push(format!("{:.1}", score(bed, &ndn, false)));
    }
    let mut rows_csv = Vec::new();
    for (name, cells) in results {
        rows_csv.push(format!("{},{}", name, cells.join(",")));
        let mut row = vec![name];
        row.extend(cells);
        t.row(row);
    }
    emit("fig14", &t.render());
    emit_csv("fig14", "variant,swan,asn", &rows_csv);
}

/// Figure 15: hyperparameter sensitivity (layers, embedding dims, policy
/// depth) on the ASN testbed.
pub fn fig15(h: &mut Harness) {
    let kind = TopoKind::Asn;
    let budget = h.budget();
    let cfg_rl = {
        let bed = h.bed(kind);
        coma_cfg(budget, &bed.env)
    };
    let train_and_score = |h: &mut Harness, cfg: TealConfig| -> f64 {
        let bed = h.bed(kind);
        let mut model = TealModel::new(Arc::clone(&bed.env), cfg);
        let _ = train_coma(&mut model, &bed.train, &bed.val, &cfg_rl);
        score(bed, &model, true)
    };

    let mut t = Table::new(
        "Figure 15: sensitivity analysis on ASN — satisfied demand (%)",
        &["sweep", "setting", "satisfied (%)"],
    );
    let mut rows_csv = Vec::new();
    // (a) FlowGNN layers.
    let layer_choices: &[usize] = if h.fast() { &[4, 6] } else { &[4, 6, 8, 10] };
    for &layers in layer_choices {
        let v = train_and_score(
            h,
            TealConfig {
                gnn_layers: layers,
                ..TealConfig::default()
            },
        );
        t.row(vec![
            "gnn layers".into(),
            layers.to_string(),
            format!("{v:.1}"),
        ]);
        rows_csv.push(format!("layers,{layers},{v:.2}"));
    }
    // (b) Embedding dimension (via per-layer growth: 1 -> 6 dims, 2 -> 11,
    //     4 -> 21; the nearest realizable analogs of the paper's 6/12/24).
    let growth_choices: &[usize] = if h.fast() { &[1] } else { &[1, 2, 4] };
    for &growth in growth_choices {
        let dim = 1 + 5 * growth;
        let v = train_and_score(
            h,
            TealConfig {
                embed_growth: growth,
                ..TealConfig::default()
            },
        );
        t.row(vec![
            "embedding dim".into(),
            dim.to_string(),
            format!("{v:.1}"),
        ]);
        rows_csv.push(format!("embed,{dim},{v:.2}"));
    }
    // (c) Policy dense layers.
    let dense_choices: &[usize] = if h.fast() { &[1] } else { &[1, 2, 4] };
    for &dense in dense_choices {
        let v = train_and_score(
            h,
            TealConfig {
                policy_hidden_layers: dense,
                ..TealConfig::default()
            },
        );
        t.row(vec![
            "dense layers".into(),
            dense.to_string(),
            format!("{v:.1}"),
        ]);
        rows_csv.push(format!("dense,{dense},{v:.2}"));
    }
    emit("fig15", &t.render());
    emit_csv("fig15", "sweep,setting,satisfied_pct", &rows_csv);
}

/// Figure 16: t-SNE of the trained FlowGNN's flow embeddings on the SWAN
/// testbed, labeled by LP-all's busy paths, with the cluster-separation
/// score quantifying the visual claim.
pub fn fig16(h: &mut Harness) {
    use teal_core::tsne::{busy_path_labels, separation_score, tsne, TsneConfig};
    let kind = TopoKind::Swan;
    let engine: TealEngine<TealModel> = h.teal_engine(kind);
    let fast = h.fast();
    let bed = h.bed(kind);
    let env = Arc::clone(&bed.env);
    let tm = bed.test[0].clone();

    // Embeddings from a forward pass.
    let mut g = teal_nn::Graph::new();
    let fwd = engine.model().forward(&mut g, &env.model_input(&tm, None));
    let embed = g
        .value(fwd.embeddings.expect("Teal yields embeddings"))
        .clone();

    // Reference optimal allocation.
    let inst = env.instance(&tm);
    let (reference, _) = solve_lp(&inst, Objective::TotalFlow, &LpConfig::default());
    let labels = busy_path_labels(&reference);

    // Subsample paths for t-SNE tractability (balanced between classes).
    let max_points = if fast { 150 } else { 500 };
    let mut idx: Vec<usize> = (0..embed.rows()).collect();
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(16);
    idx.shuffle(&mut rng);
    idx.truncate(max_points);
    let mut data = Vec::with_capacity(idx.len() * embed.cols());
    let mut sub_labels = Vec::with_capacity(idx.len());
    for &i in &idx {
        data.extend_from_slice(embed.row(i));
        sub_labels.push(labels[i]);
    }
    let sub = teal_nn::Tensor::from_vec(idx.len(), embed.cols(), data);
    let pts = tsne(&sub, &TsneConfig::default());
    let sep = separation_score(&pts, &sub_labels);

    let busy = sub_labels.iter().filter(|&&b| b).count();
    let mut t = Table::new(
        "Figure 16: t-SNE of FlowGNN flow embeddings (SWAN)",
        &["metric", "value"],
    );
    t.row(vec!["paths projected".into(), pts.len().to_string()]);
    t.row(vec![
        "busy paths (largest LP-all split)".into(),
        busy.to_string(),
    ]);
    t.row(vec!["cluster separation score".into(), format!("{sep:.2}")]);
    t.row(vec![
        "interpretation".into(),
        "score >> 0 : busy paths form a distinct cluster (paper's Figure 16)".into(),
    ]);
    emit("fig16", &t.render());
    let rows: Vec<String> = pts
        .iter()
        .zip(&sub_labels)
        .map(|((x, y), &b)| format!("{x:.4},{y:.4},{}", if b { 1 } else { 0 }))
        .collect();
    emit_csv("fig16", "tsne_x,tsne_y,busy", &rows);

    let _ = validate(engine.model(), &env, &bed.val);
    let _ = EngineConfig::paper_default(1);
}

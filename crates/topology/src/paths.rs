//! Shortest paths and the precomputed candidate-path sets used by the path
//! formulation of TE.
//!
//! Production TE (and the paper, §2) splits each demand across 4 precomputed
//! shortest paths. [`PathSet::compute`] runs Yen's k-shortest-simple-paths
//! algorithm per demand pair, in parallel across pairs; if a pair admits
//! fewer than `k` simple paths, the available paths are repeated cyclically
//! so every demand has exactly `k` slots (split ratios on duplicates simply
//! add on the same physical path).

use crate::graph::{EdgeId, NodeId, Topology};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A simple path through the topology.
#[derive(Clone, Debug, PartialEq)]
pub struct Path {
    /// Visited nodes, `nodes[0]` = source, last = destination.
    pub nodes: Vec<NodeId>,
    /// Directed edge ids, `edges.len() == nodes.len() - 1`.
    pub edges: Vec<EdgeId>,
    /// Total routing weight (latency proxy).
    pub weight: f64,
}

impl Path {
    /// Number of hops (edges).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for the degenerate empty path.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// True when no node repeats.
    pub fn is_simple(&self) -> bool {
        let set: HashSet<_> = self.nodes.iter().collect();
        set.len() == self.nodes.len()
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; tie-break on node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path from `src` to `dst` by edge weight, optionally
/// masking out edges and nodes (used by Yen's spur computation).
pub fn dijkstra_masked(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    banned_edges: &HashSet<EdgeId>,
    banned_nodes: &HashSet<NodeId>,
) -> Option<Path> {
    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if node == dst {
            break;
        }
        if d > dist[node] {
            continue;
        }
        for &(next, eid) in topo.neighbors(node) {
            if banned_edges.contains(&eid) || banned_nodes.contains(&next) {
                continue;
            }
            let nd = d + topo.edge(eid).weight;
            if nd < dist[next] {
                dist[next] = nd;
                prev[next] = Some((node, eid));
                heap.push(HeapEntry {
                    dist: nd,
                    node: next,
                });
            }
        }
    }
    if !dist[dst].is_finite() {
        return None;
    }
    let mut nodes = vec![dst];
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, e) = prev[cur]?;
        nodes.push(p);
        edges.push(e);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    Some(Path {
        nodes,
        edges,
        weight: dist[dst],
    })
}

/// Plain shortest path.
pub fn dijkstra(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Path> {
    dijkstra_masked(topo, src, dst, &HashSet::new(), &HashSet::new())
}

/// Hop counts from `src` to every node (BFS, unit weights).
pub fn bfs_hops(topo: &Topology, src: NodeId) -> Vec<Option<usize>> {
    let n = topo.num_nodes();
    let mut hops = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    hops[src] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let d = hops[u].unwrap();
        for &(v, _) in topo.neighbors(u) {
            if hops[v].is_none() {
                hops[v] = Some(d + 1);
                queue.push_back(v);
            }
        }
    }
    hops
}

/// Yen's algorithm: up to `k` loop-free shortest paths from `src` to `dst`.
pub fn k_shortest_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let Some(first) = dijkstra(topo, src, dst) else {
        return Vec::new();
    };
    let mut accepted: Vec<Path> = vec![first];
    // Candidate pool; may contain duplicates which we filter on insert.
    let mut candidates: Vec<Path> = Vec::new();

    while accepted.len() < k {
        let prev = accepted.last().unwrap().clone();
        for i in 0..prev.nodes.len() - 1 {
            let spur_node = prev.nodes[i];
            let root_nodes = &prev.nodes[..=i];
            let root_edges = &prev.edges[..i];
            let root_weight: f64 = root_edges.iter().map(|&e| topo.edge(e).weight).sum();

            // Ban the next edge of every accepted path sharing this root.
            let mut banned_edges = HashSet::new();
            for p in &accepted {
                if p.nodes.len() > i && p.nodes[..=i] == *root_nodes {
                    if let Some(&e) = p.edges.get(i) {
                        banned_edges.insert(e);
                    }
                }
            }
            // Ban root nodes (except the spur) to keep paths simple.
            let banned_nodes: HashSet<NodeId> = root_nodes[..i].iter().copied().collect();

            if let Some(spur) = dijkstra_masked(topo, spur_node, dst, &banned_edges, &banned_nodes)
            {
                let mut nodes = root_nodes[..i].to_vec();
                nodes.extend_from_slice(&spur.nodes);
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur.edges);
                let cand = Path {
                    nodes,
                    edges,
                    weight: root_weight + spur.weight,
                };
                if cand.is_simple()
                    && !accepted.iter().any(|p| p.edges == cand.edges)
                    && !candidates.iter().any(|p| p.edges == cand.edges)
                {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Take the lightest candidate (tie-break by edge list for determinism).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.weight
                    .partial_cmp(&b.weight)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| a.edges.cmp(&b.edges))
            })
            .map(|(i, _)| i)
            .unwrap();
        accepted.push(candidates.swap_remove(best));
    }
    accepted
}

/// Precomputed candidate paths for a set of demand pairs.
#[derive(Clone, Debug)]
pub struct PathSet {
    k: usize,
    pairs: Vec<(NodeId, NodeId)>,
    /// `pairs.len() * k` paths, demand-major. Pairs with fewer than `k`
    /// simple paths repeat theirs cyclically.
    paths: Vec<Path>,
}

impl PathSet {
    /// Compute `k` shortest paths per pair, in parallel across pairs.
    pub fn compute(topo: &Topology, pairs: &[(NodeId, NodeId)], k: usize) -> PathSet {
        assert!(k >= 1);
        let chunk_results = parallel_paths(topo, pairs, k);
        let mut paths = Vec::with_capacity(pairs.len() * k);
        for (pair, mut found) in pairs.iter().zip(chunk_results) {
            assert!(
                !found.is_empty(),
                "no path between {} and {} — topology must be connected",
                pair.0,
                pair.1
            );
            let base = found.len();
            for i in base..k {
                let repeat = found[i % base].clone();
                found.push(repeat);
            }
            paths.extend(found.into_iter().take(k));
        }
        PathSet {
            k,
            pairs: pairs.to_vec(),
            paths,
        }
    }

    /// Paths per demand (always exactly `k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The demand pairs, in order.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Number of demands.
    pub fn num_demands(&self) -> usize {
        self.pairs.len()
    }

    /// Total number of path slots (`num_demands * k`).
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// All paths, demand-major.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// The `k` candidate paths of demand `d`.
    pub fn paths_for(&self, d: usize) -> &[Path] {
        &self.paths[d * self.k..(d + 1) * self.k]
    }

    /// Global path index for demand `d`, candidate `j`.
    pub fn path_index(&self, d: usize, j: usize) -> usize {
        d * self.k + j
    }

    /// COO triplets of the path-edge incidence matrix `A` (`num_paths` x
    /// `num_edges`), `A[p][e] = 1` iff edge `e` lies on path `p`. This is the
    /// bipartite structure FlowGNN's GNN layers message-pass over (§3.2).
    pub fn incidence_triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut t = Vec::new();
        for (p_idx, p) in self.paths.iter().enumerate() {
            for &e in &p.edges {
                t.push((p_idx, e, 1.0));
            }
        }
        t
    }

    /// For each edge, the list of path indices crossing it.
    pub fn edge_to_paths(&self, num_edges: usize) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); num_edges];
        for (p_idx, p) in self.paths.iter().enumerate() {
            for &e in &p.edges {
                out[e].push(p_idx);
            }
        }
        for v in &mut out {
            v.dedup();
        }
        out
    }
}

/// Run Yen's per pair on a crossbeam thread pool, preserving input order.
fn parallel_paths(topo: &Topology, pairs: &[(NodeId, NodeId)], k: usize) -> Vec<Vec<Path>> {
    let n = pairs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(8);
    if threads <= 1 || n < 32 {
        return pairs
            .iter()
            .map(|&(s, t)| k_shortest_paths(topo, s, t, k))
            .collect();
    }
    let mut out: Vec<Vec<Path>> = vec![Vec::new(); n];
    let chunk = n.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (ci, (pair_chunk, out_chunk)) in
            pairs.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let _ = ci;
            scope.spawn(move |_| {
                for (p, o) in pair_chunk.iter().zip(out_chunk.iter_mut()) {
                    *o = k_shortest_paths(topo, p.0, p.1, k);
                }
            });
        }
    })
    .expect("path computation worker panicked");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-node diamond: 0-1-3 (weights 1+1), 0-2-3 (1+2), 0-3 direct (5).
    fn diamond() -> Topology {
        let mut t = Topology::new("diamond", 4);
        t.add_link(0, 1, 10.0, 1.0);
        t.add_link(1, 3, 10.0, 1.0);
        t.add_link(0, 2, 10.0, 1.0);
        t.add_link(2, 3, 10.0, 2.0);
        t.add_link(0, 3, 10.0, 5.0);
        t
    }

    #[test]
    fn dijkstra_picks_lightest() {
        let t = diamond();
        let p = dijkstra(&t, 0, 3).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 3]);
        assert!((p.weight - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dijkstra_unreachable_none() {
        let mut t = Topology::new("d", 3);
        t.add_link(0, 1, 1.0, 1.0);
        assert!(dijkstra(&t, 0, 2).is_none());
    }

    #[test]
    fn yen_orders_by_weight() {
        let t = diamond();
        let ps = k_shortest_paths(&t, 0, 3, 3);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].nodes, vec![0, 1, 3]); // weight 2
        assert_eq!(ps[1].nodes, vec![0, 2, 3]); // weight 3
        assert_eq!(ps[2].nodes, vec![0, 3]); // weight 5
        assert!(ps.windows(2).all(|w| w[0].weight <= w[1].weight));
        assert!(ps.iter().all(|p| p.is_simple()));
    }

    #[test]
    fn yen_handles_fewer_than_k() {
        let mut t = Topology::new("line", 3);
        t.add_link(0, 1, 1.0, 1.0);
        t.add_link(1, 2, 1.0, 1.0);
        let ps = k_shortest_paths(&t, 0, 2, 4);
        assert_eq!(ps.len(), 1); // only one simple path exists
    }

    #[test]
    fn pathset_pads_to_k() {
        let mut t = Topology::new("line", 3);
        t.add_link(0, 1, 1.0, 1.0);
        t.add_link(1, 2, 1.0, 1.0);
        let ps = PathSet::compute(&t, &[(0, 2), (2, 0)], 4);
        assert_eq!(ps.num_demands(), 2);
        assert_eq!(ps.num_paths(), 8);
        // All 4 slots of demand 0 are the same physical path.
        let d0 = ps.paths_for(0);
        assert!(d0.iter().all(|p| p.edges == d0[0].edges));
    }

    #[test]
    fn incidence_matches_paths() {
        let t = diamond();
        let ps = PathSet::compute(&t, &[(0, 3)], 4);
        let trips = ps.incidence_triplets();
        let total_edges: usize = ps.paths().iter().map(|p| p.len()).sum();
        assert_eq!(trips.len(), total_edges);
        for (p_idx, e, v) in trips {
            assert_eq!(v, 1.0);
            assert!(ps.paths()[p_idx].edges.contains(&e));
        }
    }

    #[test]
    fn edge_to_paths_inverse() {
        let t = diamond();
        let ps = PathSet::compute(&t, &[(0, 3), (3, 0)], 4);
        let e2p = ps.edge_to_paths(t.num_edges());
        for (e, plist) in e2p.iter().enumerate() {
            for &p in plist {
                assert!(ps.paths()[p].edges.contains(&e));
            }
        }
    }

    #[test]
    fn bfs_hops_simple() {
        let t = diamond();
        let hops = bfs_hops(&t, 0);
        assert_eq!(hops[0], Some(0));
        assert_eq!(hops[3], Some(1)); // direct link exists
    }

    #[test]
    fn parallel_matches_serial() {
        let t = diamond();
        let pairs = t.all_pairs();
        // Force both code paths by calling compute (parallel for >=32 pairs is
        // not triggered here, so just check determinism of repeated calls).
        let a = PathSet::compute(&t, &pairs, 4);
        let b = PathSet::compute(&t, &pairs, 4);
        for (pa, pb) in a.paths().iter().zip(b.paths()) {
            assert_eq!(pa.edges, pb.edges);
        }
    }
}

//! Failure recovery (§5.3): Teal reacts to link failures *without
//! retraining* by recomputing allocations on the altered topology (failed
//! links get zero capacity).
//!
//! The example fails links on B4 one at a time, showing (a) the loss if the
//! stale pre-failure routes kept serving, and (b) what Teal recovers within
//! one sub-second recomputation.
//!
//! Run with: `cargo run --release --example failure_recovery`

use std::sync::Arc;
use teal::core::{train_coma, ComaConfig, EngineConfig, Env, TealConfig, TealEngine, TealModel};
use teal::lp::evaluate;
use teal::topology::b4;
use teal::traffic::{TrafficConfig, TrafficModel};

fn main() {
    let env = Arc::new(Env::for_topology(b4()));
    let mut traffic = TrafficModel::new(&env.topo().all_pairs(), TrafficConfig::default(), 21);
    traffic.calibrate(env.topo(), env.paths());
    let train = traffic.series(0, 32);
    let val = traffic.series(32, 6);
    let tm = traffic.series(40, 1).remove(0);

    let mut model = TealModel::new(Arc::clone(&env), TealConfig::default());
    let cfg = ComaConfig {
        epochs: 8,
        lr: 3e-3,
        ..ComaConfig::default()
    };
    let _ = train_coma(&mut model, &train, &val, &cfg);
    let engine = TealEngine::new(model, EngineConfig::paper_default(12));

    // Pre-failure allocation on the intact topology.
    let (pre, _) = engine.allocate(&tm);
    let intact = env.instance(&tm);
    let base_pct = 100.0 * evaluate(&intact, &pre).realized_flow / tm.total();
    println!("no failure: {base_pct:.1}% satisfied\n");
    println!(
        "{:<12} {:>14} {:>16} {:>12}",
        "failed link", "stale routes", "Teal recomputed", "recompute"
    );

    // Fail each of the first 6 bidirectional links in turn.
    let mut seen = std::collections::HashSet::new();
    let mut shown = 0;
    for e in env.topo().edges() {
        let key = (e.src.min(e.dst), e.src.max(e.dst));
        if !seen.insert(key) || shown >= 6 {
            continue;
        }
        shown += 1;
        let failed = env.topo().with_failed_link(e.src, e.dst);
        let failed_inst = env.instance_on(&failed, &tm);
        // (a) Stale routes keep dropping everything crossing the dead link.
        let stale_pct = 100.0 * evaluate(&failed_inst, &pre).realized_flow / tm.total();
        // (b) Teal recomputes on the failed topology — no retraining.
        let (fresh, dt) = engine.allocate_on(&failed, &tm);
        let fresh_pct = 100.0 * evaluate(&failed_inst, &fresh).realized_flow / tm.total();
        println!(
            "{:<12} {:>13.1}% {:>15.1}% {:>9.1} ms",
            format!("{}-{}", e.src, e.dst),
            stale_pct,
            fresh_pct,
            1e3 * dt.as_secs_f64()
        );
        assert!(
            fresh_pct >= stale_pct - 5.0,
            "recomputation should not be materially worse than stale routes"
        );
    }
    println!(
        "\nFast recomputation shrinks the window during which flows traverse dead \
         links — the effect behind Figures 8 and 9."
    );
}

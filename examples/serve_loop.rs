//! Quickstart for the `teal-serve` daemon: register two topologies, submit
//! a burst of concurrent requests that coalesce into shared forward
//! passes, hot-swap model weights without dropping traffic, and read the
//! serving telemetry.
//!
//! Run with: `cargo run --release --example serve_loop`

use std::sync::Arc;
use teal::core::{EngineConfig, Env, PolicyModel, ServingContext, TealConfig, TealModel};
use teal::nn::checkpoint;
use teal::serve::{ModelRegistry, ServeConfig, ServeDaemon, SubmitRequest};
use teal::topology::{b4, generate, TopoKind};
use teal::traffic::{TrafficConfig, TrafficModel};

fn context(env: &Arc<Env>, seed: u64) -> ServingContext<TealModel> {
    let model = TealModel::new(
        Arc::clone(env),
        TealConfig {
            seed,
            ..TealConfig::default()
        },
    );
    ServingContext::new(model, EngineConfig::paper_default(env.topo().num_nodes()))
}

fn main() {
    // --- 1. One serving context per topology, all behind one registry.
    let env_b4 = Arc::new(Env::for_topology(b4()));
    let env_swan = Arc::new(Env::for_topology(generate(TopoKind::Swan, 0.3, 7)));
    let registry = ModelRegistry::new();
    registry.insert("b4", context(&env_b4, 0));
    registry.insert("swan", context(&env_swan, 1));
    println!("registered topologies: {:?}", registry.ids());

    // --- 2. Start the daemon (dispatcher thread + micro-batch coalescer).
    let daemon = ServeDaemon::start(registry, ServeConfig::default());

    // --- 3. A burst of concurrent clients. Tickets are submitted first and
    // redeemed after, so requests pile up and share forward passes.
    let mut traffic = TrafficModel::new(&env_b4.topo().all_pairs(), TrafficConfig::default(), 7);
    traffic.calibrate(env_b4.topo(), env_b4.paths());
    let tms = traffic.series(0, 16);
    let mut swan_traffic =
        TrafficModel::new(&env_swan.topo().all_pairs(), TrafficConfig::default(), 9);
    swan_traffic.calibrate(env_swan.topo(), env_swan.paths());
    let swan_tms = swan_traffic.series(0, 16);

    std::thread::scope(|s| {
        for client in 0..4 {
            let daemon = &daemon;
            let (tms, swan_tms) = (&tms, &swan_tms);
            s.spawn(move || {
                let tickets: Vec<_> = (0..8)
                    .map(|j| {
                        let i = client * 8 + j;
                        if i % 2 == 0 {
                            daemon.submit(SubmitRequest::new("b4", tms[i / 2].clone()))
                        } else {
                            daemon.submit(SubmitRequest::new("swan", swan_tms[i / 2].clone()))
                        }
                    })
                    .collect();
                for (j, ticket) in tickets.into_iter().enumerate() {
                    let reply = ticket.wait().expect("request served");
                    if j == 0 {
                        println!(
                            "client {client}: first reply in {:?} (coalesced batch of {})",
                            reply.latency, reply.batch_size
                        );
                    }
                }
            });
        }
    });

    // --- 4. Hot model-weight swap: retrain offline, checkpoint, swap in.
    // In-flight requests keep the weights they snapshotted; new requests
    // get the new model. No restart, no dropped traffic.
    let retrained = TealModel::new(Arc::clone(&env_b4), TealConfig::default());
    let ckpt = checkpoint::to_string(retrained.store());
    daemon
        .registry()
        .swap_checkpoint_str("b4", &ckpt)
        .expect("hot swap");
    println!(
        "hot-swapped b4 weights ({} bytes of checkpoint)",
        ckpt.len()
    );
    let reply = daemon
        .allocate("b4", tms[0].clone())
        .expect("post-swap request");
    println!("post-swap allocation served in {:?}", reply.latency);

    // --- 5. Telemetry: per-topology latency percentiles, the per-stage
    // breakdown (queue-wait / solve / write), solver introspection, and
    // the thread-pool occupancy gauges.
    let stats = daemon.stats();
    println!(
        "served {} requests, mean coalesced batch {:.2}, max queue depth {}",
        stats.completed,
        stats.mean_batch_size(),
        stats.max_queue_depth
    );
    for t in &stats.per_topology {
        println!(
            "  {:>6}: {:>3} requests / {:>2} batches  p50 {:?}  p99 {:?}",
            t.topology, t.requests, t.batches, t.p50, t.p99
        );
        println!(
            "          stages p99: queue-wait {:?} | solve {:?} | write {:?}",
            t.queue_wait.p99, t.solve.p99, t.write.p99
        );
        if let Some(admm) = &t.admm {
            println!(
                "          admm: {} windows / {} lanes, {:.2} iters/lane, {} frozen, residual p/d {:.3e}/{:.3e}",
                admm.windows,
                admm.lanes,
                admm.mean_iterations(),
                admm.frozen_lanes,
                admm.last_primal_residual,
                admm.last_dual_residual
            );
        }
    }
    if let Some(slow) = stats.slow.first() {
        println!(
            "slowest request: {:?} on {} (queue-wait {:?}, solve {:?}, batch of {})",
            slow.latency, slow.topology, slow.stages.queue_wait, slow.stages.solve, slow.batch_size
        );
    }
    println!(
        "nn pool: {} jobs, {} caller / {} helper chunks, {} capped skips",
        stats.pool.jobs,
        stats.pool.caller_chunks,
        stats.pool.helper_chunks,
        stats.pool.capped_skips
    );

    // --- 6. The same snapshot renders as Prometheus exposition text for a
    // scraper (`TelemetrySnapshot::to_prometheus`); print a taste.
    let prom = stats.to_prometheus();
    let taste: Vec<&str> = prom
        .lines()
        .filter(|l| l.starts_with("teal_serve_stage_seconds") && l.contains("0.99"))
        .collect();
    println!(
        "prometheus ({} lines total), stage p99 series:",
        prom.lines().count()
    );
    for line in taste {
        println!("  {line}");
    }
}

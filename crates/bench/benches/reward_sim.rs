//! Criterion bench: reward simulation — full allocation evaluation vs the
//! incremental counterfactual COMA* relies on (the ablation of incremental
//! vs full recomputation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use teal_core::{Env, FlowSim};
use teal_lp::Allocation;
use teal_topology::{generate, PathSet, TopoKind};
use teal_traffic::{TrafficConfig, TrafficModel};

fn bench_reward(c: &mut Criterion) {
    let topo = generate(TopoKind::Swan, 0.5, 42);
    let mut pairs = topo.all_pairs();
    pairs.truncate(1500);
    let paths = PathSet::compute(&topo, &pairs, 4);
    let mut model = TrafficModel::new(&pairs, TrafficConfig::default(), 42);
    model.calibrate(&topo, &paths);
    let tm = model.series(0, 1).remove(0);
    let env = Arc::new(Env::new(topo, paths));

    let nd = env.num_demands();
    let mut alloc = Allocation::zeros(nd, 4);
    for d in 0..nd {
        alloc.set_demand_splits(d, &[0.25, 0.25, 0.25, 0.25]);
    }
    let mut group = c.benchmark_group("reward_sim");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("full_set_allocation", |b| {
        let mut sim = FlowSim::new(&env, &tm, None);
        b.iter(|| {
            sim.set_allocation(&alloc);
            sim.reward()
        })
    });
    group.bench_function("incremental_counterfactual", |b| {
        let mut sim = FlowSim::new(&env, &tm, None);
        sim.set_allocation(&alloc);
        let mut d = 0usize;
        b.iter(|| {
            d = (d + 1) % nd;
            sim.counterfactual_reward(d, &[0.7, 0.3, 0.0, 0.0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reward);
criterion_main!(benches);

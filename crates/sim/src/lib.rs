//! `teal-sim`: the evaluation harness — a uniform scheme interface, the
//! online TE control loop with staleness accounting (§5.1), the offline
//! setting (§5.6), failure replay (§5.3), and figure statistics.
// No raw-pointer or FFI work belongs in this crate; the workspace's
// audited unsafe lives in `teal-nn`/`teal-lp` only (see the root crate's
// unsafe inventory docs).
#![forbid(unsafe_code)]

pub mod metrics;
pub mod online;
pub mod schemes;

pub use online::{
    run_failure_interval, run_offline, run_offline_batched, run_online, run_online_batched,
    IntervalRecord, OnlineResult,
};
pub use schemes::{
    FleischerScheme, LpAllScheme, LpTopScheme, NcflowScheme, PopScheme, Scheme, ShortestPathScheme,
    TealScheme, TeavarScheme,
};

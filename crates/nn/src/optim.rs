//! Optimizers. The paper trains with Adam at learning rate 1e-4 (§4).

use crate::module::ParamStore;
use crate::tensor::Tensor;

/// Adam optimizer (Kingma & Ba, 2014) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    /// First-moment estimates, lazily sized to the store on first step.
    m: Vec<Tensor>,
    /// Second-moment estimates.
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the paper's defaults (lr as given, betas 0.9/0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Override the exponential-decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update using the gradients accumulated in the store, then
    /// leave the gradients untouched (call `zero_grads` separately).
    pub fn step(&mut self, store: &mut ParamStore) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);

        // Lazily initialize moment buffers.
        if self.m.is_empty() {
            for (p, _) in store.pairs_mut() {
                let (r, c) = p.shape();
                self.m.push(Tensor::zeros(r, c));
                self.v.push(Tensor::zeros(r, c));
            }
        }

        for (i, (p, g)) in store.pairs_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((pv, &gv), (mv, vv)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mv = b1 * *mv + (1.0 - b1) * gv;
                *vv = b2 * *vv + (1.0 - b2) * gv * gv;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *pv -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
    }
}

/// Plain SGD, used by tests as a reference and by the direct-loss ablation
/// when comparing optimizers.
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with a fixed learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// One descent step on the accumulated gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        let lr = self.lr;
        for (p, g) in store.pairs_mut() {
            p.axpy(-lr, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::module::ParamStore;

    /// Minimize (p - 3)^2 and check convergence.
    fn quadratic_descent(use_adam: bool) -> f32 {
        let mut store = ParamStore::new();
        let id = store.register("p", Tensor::scalar(0.0));
        let mut adam = Adam::new(0.1);
        let mut sgd = Sgd::new(0.1);
        for _ in 0..200 {
            store.zero_grads();
            let mut g = Graph::new();
            let p = store.bind(&mut g, id);
            let target = g.input(Tensor::scalar(3.0));
            let d = g.sub(p, target);
            let loss = g.mul(d, d);
            g.backward(loss);
            store.absorb_grad(&g, id, p);
            if use_adam {
                adam.step(&mut store);
            } else {
                sgd.step(&mut store);
            }
        }
        store.get(id).item()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = quadratic_descent(true);
        assert!((p - 3.0).abs() < 0.05, "adam converged to {p}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = quadratic_descent(false);
        assert!((p - 3.0).abs() < 0.01, "sgd converged to {p}");
    }

    #[test]
    fn adam_lr_mutable() {
        let mut a = Adam::new(1e-4);
        assert_eq!(a.lr(), 1e-4);
        a.set_lr(1e-3);
        assert_eq!(a.lr(), 1e-3);
    }
}

//! Cross-crate integration tests: the full Teal pipeline against the
//! baselines on real (small) instances.

use std::sync::Arc;
use teal::core::PolicyModel;
use teal::core::{
    train_coma, validate, ComaConfig, EngineConfig, Env, TealConfig, TealEngine, TealModel,
};
use teal::lp::{evaluate, solve_lp, Allocation, LpConfig, Objective};
use teal::topology::b4;
use teal::traffic::{TrafficConfig, TrafficModel};

fn b4_env() -> Arc<Env> {
    Arc::new(Env::for_topology(b4()))
}

fn traffic(env: &Env, start: usize, n: usize, seed: u64) -> Vec<teal::traffic::TrafficMatrix> {
    let mut model = TrafficModel::new(&env.topo().all_pairs(), TrafficConfig::default(), seed);
    model.calibrate(env.topo(), env.paths());
    model.series(start, n)
}

#[test]
fn train_then_allocate_beats_untrained() {
    let env = b4_env();
    let train = traffic(&env, 0, 16, 3);
    let val = traffic(&env, 16, 4, 3);
    let test = traffic(&env, 20, 4, 3);

    let mut model = TealModel::new(Arc::clone(&env), TealConfig::default());
    let untrained = validate(&model, &env, &test);
    let cfg = ComaConfig {
        epochs: 8,
        lr: 3e-3,
        ..ComaConfig::default()
    };
    let _ = train_coma(&mut model, &train, &val, &cfg);
    let trained = validate(&model, &env, &test);
    assert!(
        trained >= untrained - 1.0,
        "training regressed: untrained {untrained:.1}%, trained {trained:.1}%"
    );

    // Deployment engine produces feasible allocations quickly.
    let engine = TealEngine::new(model, EngineConfig::paper_default(12));
    for tm in &test {
        let (alloc, dt) = engine.allocate(tm);
        assert!(alloc.demand_feasible(1e-6));
        assert!(dt.as_secs_f64() < 5.0, "B4 allocation took {dt:?}");
    }
}

#[test]
fn scheme_quality_ordering_holds() {
    // On a fixed contended instance: LP-all >= LP-top >= shortest-path, and
    // nothing beats the exact optimum.
    let env = b4_env();
    let tm = traffic(&env, 0, 1, 9).remove(0);
    let inst = env.instance(&tm);
    let cfg = LpConfig::default();

    let flow = |alloc: &Allocation| evaluate(&inst, alloc).realized_flow;

    let (lp_all, _) = solve_lp(&inst, Objective::TotalFlow, &cfg);
    let lp_top = teal::baselines::solve_lp_top(&inst, Objective::TotalFlow, 0.10, &cfg);
    let ncflow = teal::baselines::solve_ncflow(
        &inst,
        Objective::TotalFlow,
        &teal::baselines::NcflowConfig {
            clusters: 3,
            rounds: 2,
            lp: cfg,
        },
    );
    let pop = teal::baselines::solve_pop(
        &inst,
        Objective::TotalFlow,
        &teal::baselines::PopConfig {
            replicas: 2,
            split_threshold: 0.25,
            seed: 1,
            lp: cfg,
        },
    );
    let sp = Allocation::shortest_path(inst.num_demands(), inst.k());

    let f_all = flow(&lp_all);
    assert!(flow(&lp_top) <= f_all + 1e-6);
    assert!(flow(&ncflow) <= f_all + 1e-6);
    assert!(flow(&pop) <= f_all + 1e-6);
    assert!(flow(&sp) <= f_all + 1e-6);
    assert!(
        flow(&lp_top) >= flow(&sp) - 1e-6,
        "LP-top must not lose to pure shortest path"
    );
}

#[test]
fn training_is_deterministic_under_seed() {
    let env = b4_env();
    let train = traffic(&env, 0, 4, 5);
    let val = traffic(&env, 4, 2, 5);
    let run = || {
        let mut model = TealModel::new(Arc::clone(&env), TealConfig::default());
        let cfg = ComaConfig {
            epochs: 2,
            seed: 77,
            ..ComaConfig::default()
        };
        let rep = train_coma(&mut model, &train, &val, &cfg);
        (rep.best_val_satisfied_pct, model.store().snapshot())
    };
    let (v1, s1) = run();
    let (v2, s2) = run();
    assert_eq!(v1, v2, "validation scores differ between identical runs");
    for (a, b) in s1.iter().zip(&s2) {
        assert!(a.approx_eq(b, 0.0), "weights differ between identical runs");
    }
}

#[test]
fn admm_fine_tuning_never_ruins_demand_feasibility() {
    let env = b4_env();
    let model = TealModel::new(Arc::clone(&env), TealConfig::default());
    let engine = TealEngine::new(model, EngineConfig::paper_default(12));
    for seed in 0..5 {
        let tm = traffic(&env, 0, 1, seed).remove(0);
        let (alloc, _) = engine.allocate(&tm);
        assert!(
            alloc.demand_feasible(1e-6),
            "seed {seed} produced infeasible splits"
        );
    }
}

#[test]
fn failure_recovery_without_retraining() {
    let env = b4_env();
    let train = traffic(&env, 0, 12, 2);
    let val = traffic(&env, 12, 3, 2);
    let tm = traffic(&env, 15, 1, 2).remove(0);
    let mut model = TealModel::new(Arc::clone(&env), TealConfig::default());
    let cfg = ComaConfig {
        epochs: 5,
        lr: 3e-3,
        ..ComaConfig::default()
    };
    let _ = train_coma(&mut model, &train, &val, &cfg);
    let engine = TealEngine::new(model, EngineConfig::paper_default(12));

    let (pre, _) = engine.allocate(&tm);
    let failed = env.topo().with_failed_link(0, 1);
    let failed_inst = env.instance_on(&failed, &tm);
    let stale = evaluate(&failed_inst, &pre).realized_flow;
    let (fresh, _) = engine.allocate_on(&failed, &tm);
    let recovered = evaluate(&failed_inst, &fresh).realized_flow;
    // Recomputation must roughly match or beat stale routes (which keep
    // sending into the dead link).
    assert!(
        recovered >= stale * 0.95,
        "recomputed {recovered} vs stale {stale}"
    );
}

//! Distilled concurrency models of the serving stack's three load-bearing
//! protocols, compiled only under `--cfg teal_loom` and driven by
//! `tests/model_check.rs`.
//!
//! Each model is the *body* of one model-checked execution: the test wraps
//! it in [`loom::model`]/`loom::Builder::check`, which runs it once per
//! distinct thread interleaving. Models use the real production types
//! wherever the protocol lives in a type — [`WfqScheduler`],
//! [`ResponseSlot`], [`Ticket`] — and distill the surrounding daemon
//! plumbing (shard queues, wire sockets) down to the few operations whose
//! ordering is under test.
//!
//! Every model takes a mutation parameter: the `Pristine` variant is the
//! shipping protocol and must hold in **all** interleavings, while each
//! mutant variant re-introduces one specific historical (or plausible)
//! ordering bug and must *fail* the model — that failure is what proves
//! the checker actually explores the schedule that matters, not just the
//! happy path. A mutant no test can kill is a model too weak to trust.
//!
//! The order-log vector below deliberately uses `std::sync::Mutex`, not
//! the [`crate::sync`] facade: the log is measurement apparatus, not part
//! of the protocol under test, and keeping it off the model checker's
//! radar avoids paying scheduling points (and state-space growth) for
//! bookkeeping. Under the model's one-token-at-a-time execution a std
//! mutex is never even contended.

use crate::request::{ResponseSlot, ServeError, Ticket};
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{thread, Arc, Condvar, Mutex};
use crate::wfq::WfqScheduler;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex as StdMutex;
use std::sync::PoisonError;

/// Grant-order log shared by the WFQ model's tenant threads.
type OrderLog = std::sync::Arc<StdMutex<Vec<&'static str>>>;

fn log_push(log: &OrderLog, tenant: &'static str) {
    log.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(tenant);
}

/// Mutations for [`wfq_one_ahead`].
#[derive(Clone, Copy, Debug)]
pub enum WfqMutation {
    /// The shipping protocol: a tenant reserves its *next* window while
    /// still holding the current grant.
    Pristine,
    /// PR 8's near-miss: reserve the next window only after releasing the
    /// current grant. Each release then races the same tenant's
    /// re-enqueue; in schedules where the re-enqueue loses, the arbiter
    /// sees at most one waiter per flow and degenerates toward strict
    /// alternation — the configured 2:1 weights stop mattering.
    NoOneAhead,
}

/// One-ahead WFQ reservation: gold (weight 2, four windows) and bronze
/// (weight 1, two windows), both pre-enqueued before their threads start.
/// With one-ahead reservations the DRR credit schedule is fully determined
/// by queue contents — every interleaving must grant exactly
/// `g b g g b g`. The [`WfqMutation::NoOneAhead`] mutant breaks that in
/// schedules where a release happens before the same tenant's re-enqueue.
pub fn wfq_one_ahead(mutation: WfqMutation) {
    let sched = Arc::new(WfqScheduler::new(&[
        ("gold".to_string(), 2),
        ("bronze".to_string(), 1),
    ]));
    let order: OrderLog = std::sync::Arc::new(StdMutex::new(Vec::new()));
    // Pre-enqueue BOTH first tickets before either thread starts, so both
    // flows are backlogged at the arbiter before any window is granted —
    // the same guarantee the shard drain loop provides in production. If
    // gold's thread started before bronze's enqueue, a schedule where gold
    // runs to completion first would legitimately grant it every window.
    let tenants = [("gold", 4usize), ("bronze", 2usize)];
    let mut firsts = tenants
        .iter()
        .map(|(tenant, _)| sched.enqueue(tenant))
        .collect::<Vec<_>>();
    let mut handles = Vec::new();
    for (tenant, windows) in tenants {
        let sched = Arc::clone(&sched);
        let order = std::sync::Arc::clone(&order);
        let first = firsts.remove(0);
        handles.push(thread::spawn_named(tenant, move || {
            let mut reservation = Some(first);
            for i in 0..windows {
                let Some(r) = reservation.take() else {
                    unreachable!("reservation is replenished every non-final window")
                };
                let grant = sched.wait(r);
                log_push(&order, tenant);
                match mutation {
                    WfqMutation::Pristine => {
                        if i + 1 < windows {
                            reservation = Some(sched.enqueue(tenant));
                        }
                        drop(grant);
                    }
                    WfqMutation::NoOneAhead => {
                        drop(grant);
                        if i + 1 < windows {
                            reservation = Some(sched.enqueue(tenant));
                        }
                    }
                }
            }
        }));
    }
    for h in handles {
        if h.join().is_err() {
            panic!("wfq tenant thread panicked");
        }
    }
    let got = order.lock().unwrap_or_else(PoisonError::into_inner).clone();
    assert_eq!(
        got,
        ["gold", "bronze", "gold", "gold", "bronze", "gold"],
        "DRR grant order must be schedule-independent with one-ahead reservations"
    );
}

/// Mutations for [`submit_vs_shutdown`].
#[derive(Clone, Copy, Debug)]
pub enum ShutdownMutation {
    /// The shipping protocol: submit re-checks the accepting flag *under
    /// the queue lock* before enqueueing its slot.
    Pristine,
    /// PR 4's bug shape: trust the lock-free fast-path check alone. A
    /// submitter that passes the fast path, loses the race to shutdown's
    /// flag-store + drain, and only then acquires the queue lock enqueues
    /// into a queue nobody will ever fail — its ticket hangs forever.
    NoRecheckUnderLock,
}

/// Submit racing shutdown's `fail_all` drain, distilled from the daemon's
/// accept/shutdown handshake. Two submitters race one shutdown; the
/// invariant is *no stranded ticket*: every submit either observes
/// shutdown at enqueue or its slot is eventually fulfilled (here, by the
/// drain). The mutant strands a slot, which the checker reports as a
/// deadlock when the parent redeems the ticket.
pub fn submit_vs_shutdown(mutation: ShutdownMutation) {
    struct Gate {
        accepting: AtomicBool,
        queue: Mutex<Vec<Arc<ResponseSlot>>>,
    }
    let gate = Arc::new(Gate {
        accepting: AtomicBool::new(true),
        queue: Mutex::new(Vec::new()),
    });
    let mut submitters = Vec::new();
    for _ in 0..2 {
        let gate = Arc::clone(&gate);
        submitters.push(thread::spawn_named("submit", move || -> Option<Ticket> {
            if !gate.accepting.load(Ordering::SeqCst) {
                return None; // shed on the lock-free fast path
            }
            let slot = ResponseSlot::new();
            let mut q = gate.queue.lock();
            if matches!(mutation, ShutdownMutation::Pristine)
                && !gate.accepting.load(Ordering::SeqCst)
            {
                // Shutdown won the race between our fast-path check and
                // this lock acquisition; its drain may already be done, so
                // enqueueing now would strand the slot.
                return None;
            }
            q.push(Arc::clone(&slot));
            drop(q);
            Some(Ticket::new(slot))
        }));
    }
    // Shutdown runs on the model's root thread: close the gate, then fail
    // everything queued. Order is load-bearing — the store must precede
    // the drain so the under-lock recheck is conclusive.
    gate.accepting.store(false, Ordering::SeqCst);
    let drained: Vec<Arc<ResponseSlot>> = {
        let mut q = gate.queue.lock();
        std::mem::take(&mut *q)
    };
    for slot in drained {
        slot.fulfill(Err(ServeError::ShuttingDown));
    }
    for h in submitters {
        let Ok(outcome) = h.join() else {
            panic!("submitter thread panicked");
        };
        if let Some(ticket) = outcome {
            // Every accepted ticket must resolve; a stranded slot parks
            // this wait forever and the checker flags the deadlock.
            assert_eq!(ticket.wait(), Err(ServeError::ShuttingDown));
        }
    }
}

/// Mutations for [`client_register_before_send`].
#[derive(Clone, Copy, Debug)]
pub enum ClientMutation {
    /// The shipping protocol: the request's response slot is registered in
    /// the pending map *before* its bytes are handed to the wire.
    Pristine,
    /// Register the slot only after the send. The reader thread can then
    /// pick up the reply, find no slot under the tag, drop the reply on
    /// the floor — and the late-registered slot waits forever.
    RegisterAfterSend,
}

/// The client's register-before-send ordering, distilled: the wire is a
/// tag queue, the reader resolves tags against the shared pending map.
/// Two requests are in flight so the reader's drain interleaves with the
/// writer's second registration. Invariant: both tickets resolve in every
/// schedule.
pub fn client_register_before_send(mutation: ClientMutation) {
    struct Wire {
        sent: Mutex<VecDeque<u64>>,
        arrived: Condvar,
    }
    let wire = Arc::new(Wire {
        sent: Mutex::new(VecDeque::new()),
        arrived: Condvar::new(),
    });
    let pending: Arc<Mutex<HashMap<u64, Arc<ResponseSlot>>>> = Arc::new(Mutex::new(HashMap::new()));
    const TAGS: [u64; 2] = [7, 8];

    let reader = {
        let wire = Arc::clone(&wire);
        let pending = Arc::clone(&pending);
        thread::spawn_named("reader", move || {
            for _ in TAGS {
                let tag = {
                    let mut sent = wire.sent.lock();
                    loop {
                        if let Some(tag) = sent.pop_front() {
                            break tag;
                        }
                        sent = wire.arrived.wait(sent);
                    }
                };
                // A reply whose tag has no registered slot is dropped on
                // the floor (the production reader can do nothing else
                // with it) — exactly the leak the mutant resurrects.
                let slot = pending.lock().remove(&tag);
                if let Some(slot) = slot {
                    slot.fulfill(Err(ServeError::Internal("model reply".to_string())));
                }
            }
        })
    };

    // The writer runs on the model's root thread.
    let mut tickets = Vec::new();
    for tag in TAGS {
        let slot = ResponseSlot::new();
        let send = |tag: u64| {
            wire.sent.lock().push_back(tag);
            wire.arrived.notify_one();
        };
        match mutation {
            ClientMutation::Pristine => {
                pending.lock().insert(tag, Arc::clone(&slot));
                send(tag);
            }
            ClientMutation::RegisterAfterSend => {
                send(tag);
                pending.lock().insert(tag, Arc::clone(&slot));
            }
        }
        tickets.push(Ticket::new(slot));
    }
    for ticket in tickets {
        // Hangs (deadlock, caught by the checker) if the reader dropped
        // this ticket's reply before the slot was registered.
        assert!(ticket.wait().is_err());
    }
    if reader.join().is_err() {
        panic!("reader thread panicked");
    }
}

/// Mutations for [`shutdown_straggler_sweep`].
#[derive(Clone, Copy, Debug)]
pub enum SweepMutation {
    /// The shipping protocol: after joining the worker, shutdown sweeps
    /// the queue and fails every straggler ticket.
    Pristine,
    /// Omit the post-join sweep. A request enqueued before the stop flag
    /// but abandoned by the exiting worker is never failed — its ticket
    /// hangs.
    NoStragglerSweep,
    /// Issue shutdown's wakeup without holding the queue lock — the bug
    /// this model originally *found* in `ServeDaemon::shutdown`. The stop
    /// flag is an atomic the worker checks under the queue lock, so a bare
    /// store+notify can land between the worker's flag check and its wait
    /// registration; the worker then sleeps through shutdown and the join
    /// hangs.
    NotifyOutsideLock,
}

/// PR 4 regression, distilled: a worker that abandons queued work when the
/// stop flag is up, a submitter that enqueues-then-waits, and a shutdown
/// that must sweep stragglers after the join. Invariant: the submitter's
/// ticket resolves in every schedule — served by the worker, failed by the
/// sweep, or refused at enqueue.
pub fn shutdown_straggler_sweep(mutation: SweepMutation) {
    struct Shard {
        stop: AtomicBool,
        queue: Mutex<VecDeque<Arc<ResponseSlot>>>,
        work: Condvar,
    }
    let shard = Arc::new(Shard {
        stop: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        work: Condvar::new(),
    });

    let worker = {
        let shard = Arc::clone(&shard);
        thread::spawn_named("worker", move || {
            let mut q = shard.queue.lock();
            loop {
                // Stop is checked before popping: shutdown abandons queued
                // work by design, and the post-join sweep is what keeps
                // that abandonment from stranding tickets.
                if shard.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(slot) = q.pop_front() {
                    drop(q);
                    slot.fulfill(Err(ServeError::Internal("model served".to_string())));
                    q = shard.queue.lock();
                    continue;
                }
                q = shard.work.wait(q);
            }
        })
    };

    let submitter = {
        let shard = Arc::clone(&shard);
        thread::spawn_named("submit", move || {
            let slot = ResponseSlot::new();
            let ticket = Ticket::new(Arc::clone(&slot));
            {
                let mut q = shard.queue.lock();
                if shard.stop.load(Ordering::SeqCst) {
                    return; // refused at enqueue; nothing to wait for
                }
                q.push_back(slot);
                shard.work.notify_all();
            }
            // Must resolve in every schedule: served or swept.
            assert!(ticket.wait().is_err());
        })
    };

    // Shutdown runs on the model's root thread. The wakeup holds the
    // queue lock — same reason as in `ServeDaemon::shutdown`: the stop
    // flag is an atomic the worker checks under that lock, so notifying
    // without it can slip into the window between the worker's flag check
    // and its wait registration (see `SweepMutation::NotifyOutsideLock`).
    shard.stop.store(true, Ordering::SeqCst);
    if matches!(mutation, SweepMutation::NotifyOutsideLock) {
        shard.work.notify_all();
    } else {
        let q = shard.queue.lock();
        shard.work.notify_all();
        drop(q);
    }
    if worker.join().is_err() {
        panic!("worker thread panicked");
    }
    if !matches!(mutation, SweepMutation::NoStragglerSweep) {
        // NotifyOutsideLock keeps the sweep so its kill isolates the
        // lost-wakeup, not a missing sweep.
        let stragglers: VecDeque<Arc<ResponseSlot>> = {
            let mut q = shard.queue.lock();
            std::mem::take(&mut *q)
        };
        for slot in stragglers {
            slot.fulfill(Err(ServeError::ShuttingDown));
        }
    }
    if submitter.join().is_err() {
        panic!("submitter thread panicked");
    }
}

//! Criterion bench: the LP backends (simplex vs ADMM-to-convergence vs
//! Fleischer) and the baselines' end-to-end solve cost.

use criterion::{criterion_group, criterion_main, Criterion};
use teal_baselines::{solve_lp_top, solve_ncflow, solve_pop, NcflowConfig, PopConfig};
use teal_lp::{fleischer, solve_lp, LpConfig, Objective, TeInstance};
use teal_topology::{b4, PathSet};
use teal_traffic::{TrafficConfig, TrafficModel};

fn bench_lp(c: &mut Criterion) {
    let topo = b4();
    let pairs = topo.all_pairs();
    let paths = PathSet::compute(&topo, &pairs, 4);
    let mut model = TrafficModel::new(&pairs, TrafficConfig::default(), 42);
    model.calibrate(&topo, &paths);
    let tm = model.series(0, 1).remove(0);
    let inst = TeInstance::new(&topo, &paths, &tm);
    let cfg = LpConfig::default();

    let mut group = c.benchmark_group("lp_solvers_b4");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("simplex_exact", |b| {
        b.iter(|| solve_lp(&inst, Objective::TotalFlow, &cfg))
    });
    let admm_cfg = LpConfig {
        simplex_budget: 0,
        ..LpConfig::default()
    };
    group.bench_function("admm_convergence", |b| {
        b.iter(|| solve_lp(&inst, Objective::TotalFlow, &admm_cfg))
    });
    group.bench_function("fleischer_eps0.1", |b| {
        b.iter(|| fleischer::solve(&inst, 0.1, 1_000_000))
    });
    group.bench_function("lp_top", |b| {
        b.iter(|| solve_lp_top(&inst, Objective::TotalFlow, 0.10, &cfg))
    });
    group.bench_function("ncflow", |b| {
        let nc = NcflowConfig {
            clusters: 3,
            rounds: 2,
            lp: cfg,
        };
        b.iter(|| solve_ncflow(&inst, Objective::TotalFlow, &nc))
    });
    group.bench_function("pop_k2", |b| {
        let pc = PopConfig {
            replicas: 2,
            split_threshold: 0.25,
            seed: 1,
            lp: cfg,
        };
        b.iter(|| solve_pop(&inst, Objective::TotalFlow, &pc))
    });
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);

//! The deployed Teal engine (§3.1, Figure 3): one neural forward pass
//! followed by 2–5 warm-started ADMM iterations.
//!
//! The serving path is split in two layers:
//!
//! * [`ServingContext`] owns everything fixed per topology — the trained
//!   model, the engine configuration, and a prebuilt [`AdmmSkeleton`]
//!   (incidence index + normalized capacities). Nothing is rebuilt per
//!   traffic matrix: `allocate` mints an O(paths) per-matrix solver from the
//!   shared skeleton. All methods take `&self`, so one context wrapped in an
//!   `Arc` safely serves concurrent `allocate` calls from many threads.
//! * [`TealEngine`] is a thin stateless facade over an
//!   `Arc<ServingContext>` preserving the original single-object API.
//!
//! `allocate` measures the wall-clock time of the full pipeline — the number
//! reported as Teal's computation time in the paper's figures. Because the
//! forward pass is a fixed sequence of matrix products and ADMM runs a fixed
//! iteration count, the runtime is independent of the traffic values (the
//! stability highlighted in Figure 7a). [`ServingContext::allocate_batch`]
//! pushes a whole batch of matrices through *one* set of matrix products and
//! one batched ADMM sweep ([`teal_lp::AdmmBatchSolver`]): every fine-tuning
//! iteration repairs the whole window in a single pass over the shared
//! incidence index, parallelized over demand/edge × batch tiles on the
//! `teal_nn::pool` workers — no serial per-matrix solver loop remains on
//! the serving hot path. [`ServingContext::try_allocate_batch`] is the
//! fallible variant: malformed requests surface as [`AllocError`] values
//! (which the `teal-serve` dispatcher maps to per-request `BadRequest`
//! replies) instead of panics.
//!
//! The ADMM stage of every batched call runs in a reusable [`BatchScratch`]
//! (solver + arena + report buffers): dispatch lanes that retain one —
//! [`ServingContext::try_allocate_batch_with`], as the `teal-serve` shards
//! do — reuse every byte of ADMM solver state across windows from their
//! second window onwards, and the plain entry points borrow scratches from
//! a per-context pool so repeat callers get the same reuse without
//! threading state. (The returned `Vec<Allocation>` is owned by the caller
//! — replies consume it — so the *fully* allocation-free steady state,
//! asserted by `teal-lp`'s counting-allocator test, belongs to callers
//! that retain their output buffers and drive
//! `AdmmBatchSolver::run_batch_into` directly.) See [`BatchScratch`] for
//! the ownership and weight-swap-safety rules.

use crate::env::Env;
use crate::model::PolicyModel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use teal_lp::{AdmmConfig, AdmmSkeleton, Allocation, Objective};
use teal_nn::checkpoint::CheckpointError;
use teal_topology::Topology;
use teal_traffic::TrafficMatrix;

/// Why a (batched) allocation request could not be served. Returned by the
/// `try_` serving entry points so a bad request or a poisoned worker is a
/// per-call error the dispatcher can isolate, not a dispatcher crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// Request `index` in the batch is malformed (e.g. a traffic matrix
    /// sized for a different topology).
    BadRequest {
        /// Position of the offending matrix in the submitted batch.
        index: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// The failure-override topology does not match the serving
    /// environment — a server-side configuration fault affecting the whole
    /// batch, never any single request's doing.
    BadTopology(String),
    /// A worker panicked mid-batch (poisoned slot); no result exists for
    /// any matrix in this batch.
    Poisoned(String),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::BadRequest { index, reason } => {
                write!(f, "bad request at batch index {index}: {reason}")
            }
            AllocError::BadTopology(m) => write!(f, "bad topology override: {m}"),
            AllocError::Poisoned(m) => write!(f, "allocation worker panicked: {m}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Render a caught panic payload for [`AllocError::Poisoned`].
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// ADMM fine-tuning iterations; `None` disables ADMM entirely (used for
    /// the MLU/latency objectives in §5.5 and the w/o-ADMM ablation).
    pub admm: Option<AdmmConfig>,
    /// The objective the model was trained for (ADMM uses its linear
    /// coefficients; MLU implies `admm = None`).
    pub objective: Objective,
}

impl EngineConfig {
    /// The paper's deployment defaults for a topology of `num_nodes` nodes.
    pub fn paper_default(num_nodes: usize) -> Self {
        EngineConfig {
            admm: Some(AdmmConfig::fine_tune(num_nodes)),
            objective: Objective::TotalFlow,
        }
    }

    /// No fine-tuning (ablation / non-linear objectives).
    pub fn without_admm(objective: Objective) -> Self {
        EngineConfig {
            admm: None,
            objective,
        }
    }
}

/// Reusable scratch for one serving dispatch lane: the ADMM
/// [`teal_lp::BatchArena`], the reminted-per-window batch solver (its
/// coefficient buffers are grow-only), and the output/report buffers.
///
/// # Ownership rules
///
/// * One lane, one scratch: exactly one window may use a scratch at a time
///   (`&mut` enforces it); concurrent dispatchers each own their own.
/// * **Weight-swap safe:** a scratch holds no model or topology state —
///   only capacity. It may outlive any number of hot checkpoint swaps and
///   be reused against the *new* context (the `teal-serve` shards do
///   exactly this), and results are identical to a fresh scratch.
/// * A scratch that served a window which panicked is still safe to reuse:
///   every buffer is fully reset at the start of the next window.
pub struct BatchScratch {
    arena: teal_lp::BatchArena,
    solver: Option<teal_lp::AdmmBatchSolver>,
    outs: Vec<Allocation>,
    reports: Vec<teal_lp::AdmmReport>,
    /// Aggregated solver introspection of the last window (see
    /// [`SolveReport`]); `None` before the first window or when ADMM is
    /// disabled.
    last_solve: Option<SolveReport>,
    /// Per-window iteration-budget override: when set, the next window's
    /// ADMM stage runs `min(budget, cfg.max_iters)` iterations instead of
    /// the context's configured count — the §3.4 quality/latency knob as a
    /// per-dispatch control. Sticky until changed; `None` means the
    /// configured budget.
    iteration_budget: Option<usize>,
}

/// Per-window solver introspection: what the ADMM fine-tuning stage
/// actually did for one batched window — the §3.4 quality/latency knob
/// made measurable. Aggregated over the window's lanes from the per-matrix
/// [`teal_lp::AdmmReport`]s; `Copy`, so recording it is allocation-free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveReport {
    /// Iteration budget this window ran under — the context's configured
    /// `max_iters`, or the [`BatchScratch::set_iteration_budget`] override
    /// clamped to it. `iterations == lanes × budget` whenever `tol = 0`.
    pub budget: usize,
    /// Matrices in the window (ADMM lanes).
    pub lanes: usize,
    /// Sum of iterations executed across lanes.
    pub iterations: u64,
    /// Fewest iterations any lane ran.
    pub min_iterations: usize,
    /// Most iterations any lane ran.
    pub max_iterations: usize,
    /// Lanes frozen by the convergence mask before the iteration budget
    /// (`tol > 0` only; always 0 under the paper's fixed-iteration
    /// fine-tuning).
    pub frozen_lanes: usize,
    /// Worst final primal (feasibility) residual across lanes.
    pub max_primal_residual: f64,
    /// Worst final dual (stationarity) residual across lanes.
    pub max_dual_residual: f64,
}

impl SolveReport {
    fn from_reports(reports: &[teal_lp::AdmmReport], budget: usize) -> Option<Self> {
        if reports.is_empty() {
            return None;
        }
        let mut agg = SolveReport {
            budget,
            lanes: reports.len(),
            iterations: 0,
            min_iterations: usize::MAX,
            max_iterations: 0,
            frozen_lanes: 0,
            max_primal_residual: 0.0,
            max_dual_residual: 0.0,
        };
        for r in reports {
            agg.iterations += r.iterations as u64;
            agg.min_iterations = agg.min_iterations.min(r.iterations);
            agg.max_iterations = agg.max_iterations.max(r.iterations);
            agg.frozen_lanes += usize::from(r.iterations < budget);
            agg.max_primal_residual = agg.max_primal_residual.max(r.primal_residual);
            agg.max_dual_residual = agg.max_dual_residual.max(r.dual_residual);
        }
        Some(agg)
    }

    /// Mean iterations per lane.
    pub fn mean_iterations(&self) -> f64 {
        self.iterations as f64 / self.lanes.max(1) as f64
    }
}

impl Default for BatchScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchScratch {
    /// An empty scratch; buffers grow to fit the first window served.
    pub fn new() -> Self {
        BatchScratch {
            arena: teal_lp::BatchArena::new(),
            solver: None,
            outs: Vec::new(),
            reports: Vec::new(),
            last_solve: None,
            iteration_budget: None,
        }
    }

    /// Set (or clear) the per-window ADMM iteration budget for windows
    /// served through this scratch. `Some(b)` caps the next window at
    /// `min(b, configured max_iters)` iterations, floored at 1; `None`
    /// restores the configured budget. The override is sticky — a
    /// dispatcher sets it per window from its scheduling policy.
    pub fn set_iteration_budget(&mut self, budget: Option<usize>) {
        self.iteration_budget = budget;
    }

    /// The currently set per-window budget override, if any.
    pub fn iteration_budget(&self) -> Option<usize> {
        self.iteration_budget
    }

    /// Per-matrix ADMM reports of the last window served through this
    /// scratch (empty before the first window, or when fine-tuning is off).
    pub fn reports(&self) -> &[teal_lp::AdmmReport] {
        &self.reports
    }

    /// Aggregated [`SolveReport`] of the last window served through this
    /// scratch — how the ADMM stage spent its iteration budget. `None`
    /// before the first window, when fine-tuning is disabled, or after a
    /// window that failed before the solve.
    pub fn solve_report(&self) -> Option<SolveReport> {
        self.last_solve
    }
}

/// Per-topology serving state: a trained model plus the precomputed ADMM
/// skeleton, ready to serve allocations concurrently.
pub struct ServingContext<M: PolicyModel> {
    model: M,
    cfg: EngineConfig,
    /// Prebuilt per-topology ADMM state (absent when fine-tuning is off).
    skeleton: Option<AdmmSkeleton>,
    /// Arenas backing the scratch-less `allocate_batch` entry points: each
    /// concurrent caller pops one for the duration of its window and
    /// returns it, so repeat callers on the same context reuse ADMM state
    /// buffers instead of re-minting them per window. Callers that want a
    /// guaranteed-private arena (the `teal-serve` shards) pass their own
    /// [`BatchScratch`] to [`ServingContext::try_allocate_batch_with`].
    scratch_pool: Mutex<Vec<BatchScratch>>,
}

impl<M: PolicyModel> ServingContext<M> {
    /// Wrap a (trained) model, precomputing the ADMM skeleton once.
    pub fn new(model: M, cfg: EngineConfig) -> Self {
        let skeleton = cfg.admm.map(|_| {
            let env = model.env();
            AdmmSkeleton::new(env.topo(), env.paths(), cfg.objective)
        });
        ServingContext {
            model,
            cfg,
            skeleton,
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The configuration this context serves under.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The environment.
    pub fn env(&self) -> &Arc<Env> {
        self.model.env()
    }

    /// Rebuild this context around `model` (same environment, new weights),
    /// reusing the prebuilt ADMM skeleton — the hot-swap hook used by the
    /// `teal-serve` registry. Swapping weights never pays the per-topology
    /// skeleton construction again.
    pub fn with_model(&self, model: M) -> Self {
        assert!(
            Arc::ptr_eq(model.env(), self.model.env()),
            "with_model requires a model built for the same environment"
        );
        ServingContext {
            model,
            cfg: self.cfg,
            skeleton: self.skeleton.clone(),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Hot model-weight swap from checkpoint text (see
    /// [`teal_nn::checkpoint`]): clone the current model, load the new
    /// parameters into the clone, and return a fresh context sharing this
    /// one's skeleton. The existing context is untouched, so in-flight
    /// requests holding an `Arc` to it keep serving the old weights until
    /// they finish — no torn reads, no mixed-weights responses.
    pub fn with_checkpoint_str(&self, data: &str) -> Result<Self, CheckpointError>
    where
        M: Clone,
    {
        let mut model = self.model.clone();
        teal_nn::checkpoint::load_str(model.store_mut(), data)?;
        Ok(self.with_model(model))
    }

    /// [`ServingContext::with_checkpoint_str`] reading from a file path.
    pub fn with_checkpoint(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, CheckpointError>
    where
        M: Clone,
    {
        let data = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
        self.with_checkpoint_str(&data)
    }

    /// Allocate a traffic matrix on the trained topology. Returns the
    /// allocation and the measured computation time.
    pub fn allocate(&self, tm: &TrafficMatrix) -> (Allocation, Duration) {
        let start = Instant::now();
        let env = self.model.env();
        let input = env.model_input(tm, None);
        let mut alloc = self.model.allocate_deterministic(&input);
        if let (Some(admm_cfg), Some(skel)) = (self.cfg.admm, &self.skeleton) {
            let (tuned, _) = skel.solver(tm).run(&alloc, admm_cfg);
            alloc = tuned;
        }
        alloc.project_demand_constraints();
        (alloc, start.elapsed())
    }

    /// Allocate against a topology with altered capacities (e.g. failed
    /// links zeroed) *without retraining* — the §5.3 scenario. Paths stay
    /// the ones precomputed on the original topology; only the capacity
    /// vector of the ADMM skeleton is rebuilt, and candidate paths crossing
    /// a zero-capacity link are masked out of the final allocation (flow on
    /// a dead link can never be delivered — the §5.3 recovery invariant).
    pub fn allocate_on(&self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        let start = Instant::now();
        let env = self.model.env();
        let input = env.model_input(tm, Some(topo));
        let mut alloc = self.model.allocate_deterministic(&input);
        if let (Some(admm_cfg), Some(skel)) = (self.cfg.admm, &self.skeleton) {
            let (tuned, _) = skel.with_topology(topo).solver(tm).run(&alloc, admm_cfg);
            alloc = tuned;
        }
        alloc.project_demand_constraints();
        for &p in &dead_path_ids(env, topo) {
            alloc.splits_mut()[p as usize] = 0.0;
        }
        (alloc, start.elapsed())
    }

    /// Allocate a whole batch of traffic matrices: batched forward passes
    /// in cache-blocked sub-batches (one set of matrix products per
    /// `SUB_BATCH` matrices), then one batched ADMM sweep fine-tuning the
    /// whole window in a single pass per iteration over the shared
    /// incidence index. Returns the allocations (aligned with `tms`) and
    /// the total wall-clock time. Panics on malformed input; services that
    /// must survive bad requests use [`ServingContext::try_allocate_batch`].
    pub fn allocate_batch(&self, tms: &[TrafficMatrix]) -> (Vec<Allocation>, Duration) {
        self.try_allocate_batch(tms)
            .unwrap_or_else(|e| panic!("allocate_batch: {e}"))
    }

    /// Batched allocation against a failure-modified topology.
    pub fn allocate_batch_on(
        &self,
        topo: &Topology,
        tms: &[TrafficMatrix],
    ) -> (Vec<Allocation>, Duration) {
        self.try_allocate_batch_on(topo, tms)
            .unwrap_or_else(|e| panic!("allocate_batch_on: {e}"))
    }

    /// Fallible batched allocation: a malformed matrix or a poisoned worker
    /// comes back as an [`AllocError`] identifying the offender instead of
    /// a panic, so a dispatcher can fail one request and keep serving.
    pub fn try_allocate_batch(
        &self,
        tms: &[TrafficMatrix],
    ) -> Result<(Vec<Allocation>, Duration), AllocError> {
        self.allocate_batch_inner(tms, None)
    }

    /// Fallible batched allocation on a failure-modified topology.
    pub fn try_allocate_batch_on(
        &self,
        topo: &Topology,
        tms: &[TrafficMatrix],
    ) -> Result<(Vec<Allocation>, Duration), AllocError> {
        self.allocate_batch_inner(tms, Some(topo))
    }

    /// [`ServingContext::try_allocate_batch`] with a caller-owned
    /// [`BatchScratch`]: the ADMM stage runs entirely in the scratch's
    /// arena, so a dispatch lane that retains its scratch reuses all ADMM
    /// solver state (arena + reminted coefficient buffers) from its second
    /// window onwards — the only per-window minting left on the fine-tune
    /// stage is the returned allocations themselves, which the caller
    /// consumes. Results are identical to the scratch-less entry point.
    pub fn try_allocate_batch_with(
        &self,
        tms: &[TrafficMatrix],
        scratch: &mut BatchScratch,
    ) -> Result<(Vec<Allocation>, Duration), AllocError> {
        self.allocate_batch_inner_with(tms, None, scratch)
    }

    /// [`ServingContext::try_allocate_batch_on`] with a caller-owned
    /// [`BatchScratch`]: the §5.3 failure-recovery path (capacities of
    /// failed links zeroed, no retraining) served out of a retained arena.
    /// A dispatch lane that keeps a scratch for its failure windows reuses
    /// all ADMM solver state across repeated windows on the same degraded
    /// topology — the solver is simply reminted against the
    /// failure-overridden skeleton, so a failure burst serves at
    /// steady-state cost. The scratch may be freely alternated between
    /// override and plain windows (reminting rebinds every shared handle).
    pub fn try_allocate_batch_on_with(
        &self,
        topo: &Topology,
        tms: &[TrafficMatrix],
        scratch: &mut BatchScratch,
    ) -> Result<(Vec<Allocation>, Duration), AllocError> {
        self.allocate_batch_inner_with(tms, Some(topo), scratch)
    }

    /// Matrices per forward-pass sub-batch: large enough to amortize
    /// per-pass overhead, small enough that the working set of each layer
    /// stays cache-resident on modest hardware.
    const SUB_BATCH: usize = 4;

    /// Scratch-less entry point: borrows an arena from the context's pool
    /// for the window (minting one on first use), so repeat callers reuse
    /// ADMM state buffers without threading a [`BatchScratch`] themselves.
    fn allocate_batch_inner(
        &self,
        tms: &[TrafficMatrix],
        topo_override: Option<&Topology>,
    ) -> Result<(Vec<Allocation>, Duration), AllocError> {
        let mut scratch = self
            .scratch_pool
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_default();
        let res = self.allocate_batch_inner_with(tms, topo_override, &mut scratch);
        // Return the scratch even after an error: a poisoned window leaves
        // only dead buffer contents behind, fully reset on next use.
        self.scratch_pool
            .lock()
            .expect("scratch pool lock")
            .push(scratch);
        res
    }

    fn allocate_batch_inner_with(
        &self,
        tms: &[TrafficMatrix],
        topo_override: Option<&Topology>,
        scratch: &mut BatchScratch,
    ) -> Result<(Vec<Allocation>, Duration), AllocError> {
        if tms.is_empty() {
            return Ok((Vec::new(), Duration::ZERO));
        }
        // Cleared up front so a failed (or ADMM-less) window never leaves a
        // stale report behind for callers polling `solve_report`.
        scratch.last_solve = None;
        let start = Instant::now();
        let env = self.model.env();
        // Validate every request up front: one bad matrix must not take the
        // whole batch (or the dispatcher) down mid-compute.
        for (index, tm) in tms.iter().enumerate() {
            if tm.len() != env.num_demands() {
                return Err(AllocError::BadRequest {
                    index,
                    reason: format!(
                        "traffic matrix has {} demands, topology expects {}",
                        tm.len(),
                        env.num_demands()
                    ),
                });
            }
        }
        if let Some(topo) = topo_override {
            if topo.num_edges() != env.topo().num_edges() {
                return Err(AllocError::BadTopology(format!(
                    "override topology has {} edges, environment expects {}",
                    topo.num_edges(),
                    env.topo().num_edges()
                )));
            }
        }
        // Cache-blocked batched forward: sub-batches share one set of
        // matrix products each.
        let mut raw = Vec::with_capacity(tms.len());
        for chunk in tms.chunks(Self::SUB_BATCH) {
            let input = env.batch_input(chunk, topo_override);
            raw.extend(self.model.allocate_batch(&input));
        }
        let mut out = match (self.cfg.admm, &self.skeleton) {
            (Some(admm_cfg), Some(skel)) => {
                // Per-window budget override (the adaptive §3.4 knob): never
                // above the configured budget, never below one iteration.
                let budget = scratch
                    .iteration_budget
                    .map_or(admm_cfg.max_iters, |b| b.clamp(1, admm_cfg.max_iters));
                let admm_cfg = admm_cfg.with_max_iters(budget);
                let override_skel;
                let skel = match topo_override {
                    Some(topo) => {
                        override_skel = skel.with_topology(topo);
                        &override_skel
                    }
                    None => skel,
                };
                // One batched sweep repairs the whole window per iteration;
                // the solver tiles demand/edge × batch work over the shared
                // teal-nn pool internally, so no outer per-matrix loop (and
                // no per-matrix serial override) is needed. The solver is
                // reminted into the scratch's buffers and the sweep runs in
                // its arena — the allocation-free ADMM steady state.
                if let Some(solver) = scratch.solver.as_mut() {
                    skel.remint_batch_solver(solver, tms);
                } else {
                    scratch.solver = Some(skel.batch_solver(tms));
                }
                let solver = scratch.solver.as_ref().expect("solver minted above");
                let (arena, outs, reports) =
                    (&mut scratch.arena, &mut scratch.outs, &mut scratch.reports);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    solver.run_batch_into(&raw, admm_cfg, arena, outs, reports);
                }));
                run.map_err(|payload| AllocError::Poisoned(panic_text(payload)))?;
                scratch.last_solve = SolveReport::from_reports(&scratch.reports, budget);
                std::mem::take(&mut scratch.outs)
            }
            _ => raw,
        };
        let dead = match topo_override {
            Some(topo) => dead_path_ids(env, topo),
            None => Vec::new(),
        };
        for alloc in &mut out {
            alloc.project_demand_constraints();
            for &p in &dead {
                alloc.splits_mut()[p as usize] = 0.0;
            }
        }
        Ok((out, start.elapsed()))
    }
}

/// Candidate paths crossing a zero-capacity (failed) link of `topo`. Flow
/// placed on them could never be delivered; the serving path zeroes their
/// splits after fine-tuning (§5.3's recovery invariant).
fn dead_path_ids(env: &Env, topo: &Topology) -> Vec<u32> {
    let dead_edge: Vec<bool> = topo.edges().iter().map(|e| e.capacity <= 0.0).collect();
    if !dead_edge.iter().any(|&d| d) {
        return Vec::new();
    }
    env.paths()
        .paths()
        .iter()
        .enumerate()
        .filter(|(_, path)| path.edges.iter().any(|&e| dead_edge[e]))
        .map(|(p, _)| p as u32)
        .collect()
}

/// A trained model plus the fine-tuning stage, ready to serve allocations:
/// a thin facade over an [`Arc`]-shared [`ServingContext`].
pub struct TealEngine<M: PolicyModel> {
    ctx: Arc<ServingContext<M>>,
}

impl<M: PolicyModel> Clone for TealEngine<M> {
    fn clone(&self) -> Self {
        TealEngine {
            ctx: Arc::clone(&self.ctx),
        }
    }
}

impl<M: PolicyModel> TealEngine<M> {
    /// Wrap a (trained) model.
    pub fn new(model: M, cfg: EngineConfig) -> Self {
        TealEngine {
            ctx: Arc::new(ServingContext::new(model, cfg)),
        }
    }

    /// The shared serving context (clone the `Arc` to serve from threads).
    pub fn context(&self) -> &Arc<ServingContext<M>> {
        &self.ctx
    }

    /// The underlying model.
    pub fn model(&self) -> &M {
        self.ctx.model()
    }

    /// Mutable access (e.g. to continue training). Panics if the context is
    /// currently shared with other threads — stop serving before mutating.
    pub fn model_mut(&mut self) -> &mut M {
        &mut Arc::get_mut(&mut self.ctx)
            .expect("ServingContext is shared; cannot mutate the model while serving")
            .model
    }

    /// The environment.
    pub fn env(&self) -> &Arc<Env> {
        self.ctx.env()
    }

    /// Allocate a traffic matrix on the trained topology. Returns the
    /// allocation and the measured computation time.
    pub fn allocate(&self, tm: &TrafficMatrix) -> (Allocation, Duration) {
        self.ctx.allocate(tm)
    }

    /// Allocate against a topology with altered capacities (see
    /// [`ServingContext::allocate_on`]).
    pub fn allocate_on(&self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        self.ctx.allocate_on(topo, tm)
    }

    /// Batched allocation (see [`ServingContext::allocate_batch`]).
    pub fn allocate_batch(&self, tms: &[TrafficMatrix]) -> (Vec<Allocation>, Duration) {
        self.ctx.allocate_batch(tms)
    }

    /// Batched allocation on a failure-modified topology.
    pub fn allocate_batch_on(
        &self,
        topo: &Topology,
        tms: &[TrafficMatrix],
    ) -> (Vec<Allocation>, Duration) {
        self.ctx.allocate_batch_on(topo, tms)
    }

    /// Fallible batched allocation (see
    /// [`ServingContext::try_allocate_batch`]).
    pub fn try_allocate_batch(
        &self,
        tms: &[TrafficMatrix],
    ) -> Result<(Vec<Allocation>, Duration), AllocError> {
        self.ctx.try_allocate_batch(tms)
    }

    /// Fallible batched allocation on a failure-modified topology.
    pub fn try_allocate_batch_on(
        &self,
        topo: &Topology,
        tms: &[TrafficMatrix],
    ) -> Result<(Vec<Allocation>, Duration), AllocError> {
        self.ctx.try_allocate_batch_on(topo, tms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{TealConfig, TealModel};
    use teal_topology::b4;

    fn engine() -> TealEngine<TealModel> {
        let env = Arc::new(Env::for_topology(b4()));
        let model = TealModel::new(
            Arc::clone(&env),
            TealConfig {
                gnn_layers: 3,
                ..TealConfig::default()
            },
        );
        TealEngine::new(model, EngineConfig::paper_default(12))
    }

    #[test]
    fn allocate_is_demand_feasible() {
        let eng = engine();
        let tm = TrafficMatrix::new(vec![20.0; eng.env().num_demands()]);
        let (alloc, dt) = eng.allocate(&tm);
        assert!(alloc.demand_feasible(1e-6));
        assert!(dt.as_nanos() > 0);
    }

    #[test]
    fn admm_reduces_overuse_versus_raw_model() {
        let env = Arc::new(Env::for_topology(b4()));
        let model = TealModel::new(
            Arc::clone(&env),
            TealConfig {
                gnn_layers: 3,
                ..TealConfig::default()
            },
        );
        // Heavy demands so the untrained softmax output oversubscribes.
        let tm = TrafficMatrix::new(vec![150.0; env.num_demands()]);
        let raw = model.allocate_deterministic(&env.model_input(&tm, None));
        let inst = env.instance(&tm);
        let raw_overuse = teal_lp::evaluate(&inst, &raw).total_overuse;

        let eng = TealEngine::new(model, EngineConfig::paper_default(12));
        let (tuned, _) = eng.allocate(&tm);
        let tuned_overuse = teal_lp::evaluate(&inst, &tuned).total_overuse;
        assert!(
            tuned_overuse < raw_overuse,
            "ADMM should reduce overuse: raw {raw_overuse}, tuned {tuned_overuse}"
        );
    }

    #[test]
    fn failure_override_changes_output() {
        let eng = engine();
        let tm = TrafficMatrix::new(vec![20.0; eng.env().num_demands()]);
        let (base, _) = eng.allocate(&tm);
        let failed = eng.env().topo().with_failed_link(0, 1);
        let (after, _) = eng.allocate_on(&failed, &tm);
        assert_ne!(base, after);
    }

    #[test]
    fn runtime_is_stable_across_demand_values() {
        // Figure 7a's claim: computation is independent of traffic values.
        let eng = engine();
        let nd = eng.env().num_demands();
        let light = TrafficMatrix::new(vec![0.01; nd]);
        let heavy = TrafficMatrix::new(vec![500.0; nd]);
        let (_, t1) = eng.allocate(&light);
        let (_, t2) = eng.allocate(&heavy);
        // Generous factor-20 bound: identical op counts, only measurement
        // noise differs (CI machines can be jittery).
        let (a, b) = (t1.as_secs_f64(), t2.as_secs_f64());
        let ratio = if a > b { a / b } else { b / a };
        assert!(ratio < 20.0, "runtime ratio {ratio} too unstable");
    }

    #[test]
    fn batch_matches_sequential_allocation() {
        let eng = engine();
        let nd = eng.env().num_demands();
        let tms: Vec<TrafficMatrix> = (0..5)
            .map(|i| TrafficMatrix::new(vec![10.0 + 17.0 * i as f64; nd]))
            .collect();
        let (batched, _) = eng.allocate_batch(&tms);
        assert_eq!(batched.len(), tms.len());
        for (tm, b) in tms.iter().zip(&batched) {
            let (seq, _) = eng.allocate(tm);
            assert!(b.demand_feasible(1e-6));
            for (x, y) in b.splits().iter().zip(seq.splits()) {
                assert!(
                    (x - y).abs() <= 1e-6,
                    "batched {x} vs sequential {y} differ beyond 1e-6"
                );
            }
        }
    }

    #[test]
    fn batch_early_stopping_matches_sequential() {
        // tol > 0 engages the batched solver's convergence mask: lanes with
        // different demand scales converge at different iterations, and the
        // end-to-end batched path must still match sequential exactly.
        let env = Arc::new(Env::for_topology(b4()));
        let model = TealModel::new(
            Arc::clone(&env),
            TealConfig {
                gnn_layers: 3,
                ..TealConfig::default()
            },
        );
        let eng = TealEngine::new(
            model,
            EngineConfig {
                admm: Some(AdmmConfig {
                    rho: 1.0,
                    max_iters: 60,
                    tol: 1e-4,
                    serial: false,
                }),
                objective: Objective::TotalFlow,
            },
        );
        let nd = env.num_demands();
        let tms: Vec<TrafficMatrix> = (0..7)
            .map(|i| TrafficMatrix::new(vec![0.5 + 40.0 * i as f64; nd]))
            .collect();
        let (batched, _) = eng.allocate_batch(&tms);
        for (tm, b) in tms.iter().zip(&batched) {
            let (seq, _) = eng.allocate(tm);
            for (x, y) in b.splits().iter().zip(seq.splits()) {
                assert!(
                    (x - y).abs() <= 1e-6,
                    "early-stopped batched {x} vs sequential {y}"
                );
            }
        }
    }

    #[test]
    fn zero_capacity_edges_carry_no_flow_batched() {
        // The §5.3 recovery invariant on the batched path: after links fail
        // (capacity zeroed), no allocation may place flow on a dead edge —
        // and batched must still equal sequential on the degraded topology.
        let eng = engine();
        let env = eng.env();
        let nd = env.num_demands();
        let failed = env
            .topo()
            .with_failed_link(0, 1)
            .with_failed_link(2, 3)
            .with_failed_link(5, 7);
        let dead: Vec<usize> = failed
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.capacity <= 0.0)
            .map(|(i, _)| i)
            .collect();
        assert!(!dead.is_empty());
        let tms: Vec<TrafficMatrix> = (0..4)
            .map(|i| TrafficMatrix::new(vec![15.0 + 9.0 * i as f64; nd]))
            .collect();
        let (batched, _) = eng.allocate_batch_on(&failed, &tms);
        for (tm, alloc) in tms.iter().zip(&batched) {
            let (seq, _) = eng.allocate_on(&failed, tm);
            for (x, y) in alloc.splits().iter().zip(seq.splits()) {
                assert!((x - y).abs() <= 1e-6, "batched {x} vs sequential {y}");
            }
            let inst = env.instance_on(&failed, tm);
            let stats = teal_lp::evaluate(&inst, alloc);
            for &e in &dead {
                assert_eq!(
                    stats.edge_loads[e], 0.0,
                    "flow placed on zero-capacity edge {e}"
                );
            }
            assert!(alloc.demand_feasible(1e-6));
        }
    }

    #[test]
    fn malformed_batch_is_an_error_not_a_panic() {
        // One bad matrix in a window must surface as a per-request error
        // naming the offender (the daemon maps it to BadRequest), not crash
        // the batch.
        let eng = engine();
        let nd = eng.env().num_demands();
        let tms = vec![
            TrafficMatrix::new(vec![10.0; nd]),
            TrafficMatrix::new(vec![10.0; nd + 3]),
            TrafficMatrix::new(vec![10.0; nd]),
        ];
        match eng.try_allocate_batch(&tms) {
            Err(AllocError::BadRequest { index, .. }) => assert_eq!(index, 1),
            other => panic!("expected BadRequest at index 1, got {other:?}"),
        }
        // The well-formed window still serves.
        let good = vec![tms[0].clone(), tms[2].clone()];
        let (allocs, _) = eng
            .try_allocate_batch(&good)
            .expect("well-formed batch must serve");
        assert_eq!(allocs.len(), 2);
    }

    #[test]
    fn batch_on_failed_topology_matches_sequential() {
        let eng = engine();
        let nd = eng.env().num_demands();
        let failed = eng.env().topo().with_failed_link(0, 1);
        let tms: Vec<TrafficMatrix> = (0..3)
            .map(|i| TrafficMatrix::new(vec![8.0 + i as f64; nd]))
            .collect();
        let (batched, _) = eng.allocate_batch_on(&failed, &tms);
        for (tm, b) in tms.iter().zip(&batched) {
            let (seq, _) = eng.allocate_on(&failed, tm);
            for (x, y) in b.splits().iter().zip(seq.splits()) {
                assert!((x - y).abs() <= 1e-6);
            }
        }
    }

    #[test]
    fn checkpoint_swap_changes_weights_without_touching_original() {
        let env = Arc::new(Env::for_topology(b4()));
        let cfg_model = TealConfig {
            gnn_layers: 3,
            ..TealConfig::default()
        };
        let old = ServingContext::new(
            TealModel::new(Arc::clone(&env), cfg_model),
            EngineConfig::paper_default(12),
        );
        let tm = TrafficMatrix::new(vec![20.0; env.num_demands()]);
        let (before, _) = old.allocate(&tm);

        // Same architecture, different seed → a genuinely different model.
        let donor = TealModel::new(
            Arc::clone(&env),
            TealConfig {
                seed: 99,
                ..cfg_model
            },
        );
        let ckpt = teal_nn::checkpoint::to_string(donor.store());
        let swapped = old.with_checkpoint_str(&ckpt).expect("swap");

        // New context serves the donor's weights exactly.
        let reference = ServingContext::new(donor, EngineConfig::paper_default(12));
        let (want, _) = reference.allocate(&tm);
        let (got, _) = swapped.allocate(&tm);
        assert_eq!(got, want, "swapped context must serve the new weights");
        // Old context is untouched (in-flight requests stay consistent).
        let (after, _) = old.allocate(&tm);
        assert_eq!(before, after, "original context mutated by swap");
        assert_ne!(got, after, "swap had no effect");
    }

    #[test]
    fn scratch_reuse_across_windows_and_hot_swap_matches_fresh() {
        // One retained BatchScratch serving windows of varying size, with a
        // hot checkpoint swap between windows 1 and 2: every window must
        // match the scratch-less path exactly, and nothing may leak from
        // the pre-swap context through the arena into the post-swap one.
        let env = Arc::new(Env::for_topology(b4()));
        let cfg_model = TealConfig {
            gnn_layers: 3,
            ..TealConfig::default()
        };
        let ctx_old = ServingContext::new(
            TealModel::new(Arc::clone(&env), cfg_model),
            EngineConfig::paper_default(12),
        );
        let donor = TealModel::new(
            Arc::clone(&env),
            TealConfig {
                seed: 99,
                ..cfg_model
            },
        );
        let ckpt = teal_nn::checkpoint::to_string(donor.store());
        let ctx_new = ctx_old.with_checkpoint_str(&ckpt).expect("hot swap");

        let nd = env.num_demands();
        let mut scratch = BatchScratch::new();
        let sizes = [5usize, 3, 5, 7];
        for (w, &nb) in sizes.iter().enumerate() {
            let ctx = if w < 2 { &ctx_old } else { &ctx_new };
            let tms: Vec<TrafficMatrix> = (0..nb)
                .map(|i| TrafficMatrix::new(vec![4.0 + 3.0 * (w * 7 + i) as f64; nd]))
                .collect();
            let (got, _) = ctx
                .try_allocate_batch_with(&tms, &mut scratch)
                .expect("scratch window");
            let (want, _) = ctx.try_allocate_batch(&tms).expect("fresh window");
            assert_eq!(got.len(), want.len());
            for (b, (g, f)) in got.iter().zip(&want).enumerate() {
                for (x, y) in g.splits().iter().zip(f.splits()) {
                    assert!(
                        x == y,
                        "window {w} lane {b}: scratch-reused {x} vs fresh {y}"
                    );
                }
            }
        }
        assert_eq!(scratch.reports().len(), *sizes.last().unwrap());
    }

    #[test]
    fn concurrent_contexts_agree_with_sequential() {
        let eng = engine();
        let ctx = Arc::clone(eng.context());
        let nd = eng.env().num_demands();
        let tm_a = TrafficMatrix::new(vec![25.0; nd]);
        let tm_b = TrafficMatrix::new(vec![60.0; nd]);
        let (seq_a, _) = ctx.allocate(&tm_a);
        let (seq_b, _) = ctx.allocate(&tm_b);

        let ctx2 = Arc::clone(&ctx);
        let (par_a, par_b) = std::thread::scope(|s| {
            let ha = s.spawn(|| ctx.allocate(&tm_a).0);
            let hb = s.spawn(move || ctx2.allocate(&tm_b).0);
            (ha.join().expect("thread a"), hb.join().expect("thread b"))
        });
        assert_eq!(seq_a, par_a, "concurrent allocate diverged on matrix A");
        assert_eq!(seq_b, par_b, "concurrent allocate diverged on matrix B");
    }
}

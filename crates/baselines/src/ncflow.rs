//! NCFlow-like decomposition (Abuzaid et al., NSDI 2021), per §5.1:
//!
//! "NCFlow partitions the topology into disjoint clusters and concurrently
//! solves the subproblem of TE optimization within each cluster using an LP
//! solver. The results obtained from each cluster are then merged in a
//! nontrivial fashion to generate a valid global allocation."
//!
//! This is a path-formulation adaptation of the algorithm's structure:
//!
//! 1. partition nodes into clusters (farthest-point seeding + BFS growth,
//!    standing in for NCFlow's "FMPartitioning");
//! 2. **intra-cluster phase (parallel)** — per cluster, an LP over demands
//!    whose candidate paths stay inside the cluster;
//! 3. **inter-cluster phase** — an LP on the *contracted* graph (clusters as
//!    supernodes, cut capacities summed) over aggregated cluster-pair
//!    demands, giving each crossing demand a flow budget;
//! 4. **merge** — budgets are distributed to member demands pro rata and
//!    realized on the original candidate paths subject to residual
//!    capacities (the conservative step that loses flow relative to LP-all,
//!    as the paper observes).

use teal_lp::{solve_lp, Allocation, LpConfig, Objective, TeInstance};
use teal_topology::{NodeId, PathSet, Topology};
use teal_traffic::TrafficMatrix;

/// NCFlow configuration.
#[derive(Clone, Copy, Debug)]
pub struct NcflowConfig {
    /// Number of clusters. The paper uses sqrt-ish counts per topology.
    pub clusters: usize,
    /// Reconciliation rounds: NCFlow "needs to iterate between LP
    /// optimization and consolidation until a predefined accuracy threshold
    /// is reached" (§5.2); each round re-runs the decomposition on the
    /// residual capacities.
    pub rounds: usize,
    /// LP settings for subproblems.
    pub lp: LpConfig,
}

impl NcflowConfig {
    /// Cluster count heuristic: roughly sqrt(n), the order NCFlow uses.
    pub fn paper_default(num_nodes: usize) -> Self {
        NcflowConfig {
            clusters: (num_nodes as f64).sqrt().round().max(2.0) as usize,
            rounds: 3,
            lp: LpConfig::default(),
        }
    }
}

/// Partition nodes into `c` clusters: farthest-point seeds on hop distance,
/// then balanced BFS growth. Returns the cluster id per node.
pub fn partition(topo: &Topology, c: usize) -> Vec<usize> {
    let n = topo.num_nodes();
    let c = c.clamp(1, n);
    // Farthest-point seeding.
    let mut seeds = vec![0usize];
    while seeds.len() < c {
        let mut best = (0usize, 0usize); // (node, distance to nearest seed)
        for v in 0..n {
            if seeds.contains(&v) {
                continue;
            }
            let d = seeds
                .iter()
                .map(|&s| hop_distance(topo, s, v).unwrap_or(usize::MAX / 2))
                .min()
                .unwrap();
            if d > best.1 {
                best = (v, d);
            }
        }
        seeds.push(best.0);
    }
    // Simultaneous BFS growth from all seeds.
    let mut cluster = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for (ci, &s) in seeds.iter().enumerate() {
        cluster[s] = ci;
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        for &(v, _) in topo.neighbors(u) {
            if cluster[v] == usize::MAX {
                cluster[v] = cluster[u];
                queue.push_back(v);
            }
        }
    }
    // Unreached nodes (disconnected) join cluster 0.
    for cc in cluster.iter_mut() {
        if *cc == usize::MAX {
            *cc = 0;
        }
    }
    cluster
}

fn hop_distance(topo: &Topology, a: NodeId, b: NodeId) -> Option<usize> {
    teal_topology::paths::bfs_hops(topo, a)[b]
}

/// Solve with the NCFlow-like decomposition, iterating the decomposition
/// over residual capacities for `cfg.rounds` reconciliation rounds.
pub fn solve_ncflow(inst: &TeInstance, obj: Objective, cfg: &NcflowConfig) -> Allocation {
    let k = inst.k();
    let nd = inst.num_demands();
    let mut total = Allocation::zeros(nd, k);
    // Fraction of each demand still unallocated.
    let mut remaining = vec![1.0f64; nd];
    let mut residual_caps = inst.topo.capacities();
    for _ in 0..cfg.rounds.max(1) {
        let round_topo = inst.topo.with_capacities(&residual_caps);
        let round_tm =
            TrafficMatrix::new((0..nd).map(|d| inst.tm.demand(d) * remaining[d]).collect());
        if round_tm.total() <= 1e-12 {
            break;
        }
        let round_inst = TeInstance::new(&round_topo, inst.paths, &round_tm);
        let round_alloc = ncflow_round(&round_inst, obj, cfg);
        // Accumulate in original-demand units and update residual state.
        #[allow(clippy::needless_range_loop)]
        for d in 0..nd {
            let frac = remaining[d];
            if frac <= 0.0 {
                continue;
            }
            let vol = inst.tm.demand(d);
            let mut used = 0.0f64;
            for (j, &s) in round_alloc.demand_splits(d).iter().enumerate() {
                if s <= 0.0 {
                    continue;
                }
                let add = s * frac;
                total.demand_splits_mut(d)[j] += add;
                used += add;
                for &e in &inst.paths.paths_for(d)[j].edges {
                    residual_caps[e] = (residual_caps[e] - add * vol).max(0.0);
                }
            }
            remaining[d] = (frac - used).max(0.0);
        }
    }
    total.project_demand_constraints();
    total
}

/// One decomposition round on the given (residual) instance.
fn ncflow_round(inst: &TeInstance, obj: Objective, cfg: &NcflowConfig) -> Allocation {
    let k = inst.k();
    let nd = inst.num_demands();
    let cluster = partition(inst.topo, cfg.clusters);
    let nc = cluster.iter().max().map(|&m| m + 1).unwrap_or(1);

    // Classify demands: intra (all candidate paths inside one cluster) vs
    // crossing.
    let mut intra: Vec<Vec<usize>> = vec![Vec::new(); nc];
    let mut crossing: Vec<usize> = Vec::new();
    for d in 0..nd {
        if inst.tm.demand(d) <= 0.0 {
            continue;
        }
        let (s, t) = inst.paths.pairs()[d];
        let same = cluster[s] == cluster[t]
            && inst
                .paths
                .paths_for(d)
                .iter()
                .all(|p| p.nodes.iter().all(|&v| cluster[v] == cluster[s]));
        if same {
            intra[cluster[s]].push(d);
        } else {
            crossing.push(d);
        }
    }

    let mut alloc = Allocation::zeros(nd, k);

    // --- Phase 1: parallel intra-cluster LPs over residual-free capacities.
    let mut cluster_allocs: Vec<Option<(Vec<usize>, Allocation)>> = vec![None; nc];
    crossbeam::scope(|s| {
        for (ci, slot) in cluster_allocs.iter_mut().enumerate() {
            let demands = &intra[ci];
            if demands.is_empty() {
                continue;
            }
            let lp_cfg = cfg.lp;
            s.spawn(move |_| {
                let pairs: Vec<(usize, usize)> =
                    demands.iter().map(|&d| inst.paths.pairs()[d]).collect();
                let vols: Vec<f64> = demands.iter().map(|&d| inst.tm.demand(d)).collect();
                let sub_paths = PathSet::compute(inst.topo, &pairs, inst.paths.k());
                let sub_tm = TrafficMatrix::new(vols);
                let sub_inst = TeInstance::new(inst.topo, &sub_paths, &sub_tm);
                let (sub_alloc, _) = solve_lp(&sub_inst, obj, &lp_cfg);
                *slot = Some((demands.clone(), sub_alloc));
            });
        }
    })
    .expect("NCFlow cluster solver panicked");
    for entry in cluster_allocs.into_iter().flatten() {
        let (demands, sub_alloc) = entry;
        for (i, &d) in demands.iter().enumerate() {
            alloc.set_demand_splits(d, sub_alloc.demand_splits(i));
        }
    }

    // Residual capacities after the intra phase.
    let mut residual = inst.topo.capacities();
    consume(&mut residual, inst, &alloc);

    // --- Phase 2: contracted-graph LP for crossing demands.
    // Build the contracted topology.
    let mut contracted = Topology::new("contracted", nc);
    for e in inst.topo.edges() {
        let (cs, ct) = (cluster[e.src], cluster[e.dst]);
        if cs == ct {
            continue;
        }
        match contracted.find_edge(cs, ct) {
            Some(_) => {
                // Accumulate capacity: rebuild below instead (cheap, nc tiny).
            }
            None => {
                contracted.add_directed_edge(cs, ct, 0.0, 1.0);
            }
        }
    }
    // Sum cut capacities into the contracted edges (respecting residuals).
    let mut cut_caps = std::collections::HashMap::new();
    for (i, e) in inst.topo.edges().iter().enumerate() {
        let (cs, ct) = (cluster[e.src], cluster[e.dst]);
        if cs != ct {
            *cut_caps.entry((cs, ct)).or_insert(0.0) += residual[i];
        }
    }
    let mut contracted2 = Topology::new("contracted", nc);
    for ((cs, ct), cap) in &cut_caps {
        contracted2.add_directed_edge(*cs, *ct, *cap, 1.0);
    }
    let contracted = contracted2;

    // Aggregate crossing demands per cluster pair.
    let mut agg: std::collections::HashMap<(usize, usize), f64> = std::collections::HashMap::new();
    for &d in &crossing {
        let (s, t) = inst.paths.pairs()[d];
        let key = (cluster[s], cluster[t]);
        if key.0 != key.1 {
            *agg.entry(key).or_insert(0.0) += inst.tm.demand(d);
        }
    }
    let mut budgets: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    if !agg.is_empty() {
        let mut agg_pairs: Vec<(usize, usize)> = agg.keys().copied().collect();
        agg_pairs.sort_unstable();
        // Keep only pairs connected in the contracted graph.
        agg_pairs.retain(|&(a, b)| teal_topology::dijkstra(&contracted, a, b).is_some());
        if !agg_pairs.is_empty() {
            let agg_vols: Vec<f64> = agg_pairs.iter().map(|p| agg[p]).collect();
            let agg_paths = PathSet::compute(&contracted, &agg_pairs, 4);
            let agg_tm = TrafficMatrix::new(agg_vols);
            let agg_inst = TeInstance::new(&contracted, &agg_paths, &agg_tm);
            let (agg_alloc, _) = solve_lp(&agg_inst, obj, &cfg.lp);
            for (i, &pair) in agg_pairs.iter().enumerate() {
                let frac: f64 = agg_alloc.demand_splits(i).iter().sum();
                budgets.insert(pair, frac * agg_tm.demand(i));
            }
        }
    }

    // --- Phase 3 (merge): distribute budgets pro rata and realize each
    // crossing demand on its candidate paths via residual water-filling.
    // Process in decreasing volume for determinism.
    let mut ordered: Vec<usize> = crossing.clone();
    ordered.sort_by(|&a, &b| {
        inst.tm
            .demand(b)
            .partial_cmp(&inst.tm.demand(a))
            .unwrap()
            .then(a.cmp(&b))
    });
    for &d in &ordered {
        let (s, t) = inst.paths.pairs()[d];
        let key = (cluster[s], cluster[t]);
        let vol = inst.tm.demand(d);
        let budget_frac = if key.0 == key.1 {
            1.0 // same-cluster demand whose paths wander outside: no budget cap
        } else {
            let total_pair: f64 = agg.get(&key).copied().unwrap_or(0.0);
            let b = budgets.get(&key).copied().unwrap_or(0.0);
            if total_pair > 0.0 {
                (b / total_pair).min(1.0)
            } else {
                0.0
            }
        };
        let mut remaining = vol * budget_frac;
        if remaining <= 0.0 {
            continue;
        }
        let mut splits = [0.0f64; 16];
        for (j, p) in inst.paths.paths_for(d).iter().enumerate() {
            if remaining <= 0.0 {
                break;
            }
            let cap = p
                .edges
                .iter()
                .map(|&e| residual[e])
                .fold(f64::INFINITY, f64::min);
            let send = cap.max(0.0).min(remaining);
            if send > 0.0 {
                splits[j] = send / vol;
                for &e in &p.edges {
                    residual[e] -= send;
                }
                remaining -= send;
            }
        }
        alloc.set_demand_splits(d, &splits[..k]);
    }
    alloc.project_demand_constraints();
    alloc
}

/// Subtract an allocation's intended loads from a residual-capacity vector.
fn consume(residual: &mut [f64], inst: &TeInstance, alloc: &Allocation) {
    for d in 0..inst.num_demands() {
        let vol = inst.tm.demand(d);
        if vol <= 0.0 {
            continue;
        }
        for (j, &s) in alloc.demand_splits(d).iter().enumerate() {
            if s > 0.0 {
                for &e in &inst.paths.paths_for(d)[j].edges {
                    residual[e] = (residual[e] - s * vol).max(0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teal_lp::evaluate;
    use teal_topology::{b4, generate, TopoKind};

    #[test]
    fn partition_covers_all_nodes() {
        let topo = generate(TopoKind::Swan, 0.5, 3);
        let cl = partition(&topo, 5);
        assert_eq!(cl.len(), topo.num_nodes());
        let nc = cl.iter().max().unwrap() + 1;
        assert!(nc <= 5);
        // Every cluster non-empty.
        for c in 0..nc {
            assert!(cl.contains(&c), "cluster {c} empty");
        }
    }

    #[test]
    fn ncflow_feasible_and_below_optimal() {
        let topo = b4();
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![8.0; pairs.len()]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let cfg = NcflowConfig {
            clusters: 3,
            rounds: 2,
            lp: LpConfig::default(),
        };
        let nc = solve_ncflow(&inst, Objective::TotalFlow, &cfg);
        assert!(nc.demand_feasible(1e-6));
        let lp = solve_lp(&inst, Objective::TotalFlow, &LpConfig::default()).0;
        let f_nc = evaluate(&inst, &nc).realized_flow;
        let f_lp = evaluate(&inst, &lp).realized_flow;
        assert!(f_nc <= f_lp + 1e-6, "decomposition cannot beat the optimum");
        assert!(
            f_nc > 0.4 * f_lp,
            "ncflow {f_nc} vs lp {f_lp}: too much loss"
        );
    }

    #[test]
    fn ncflow_single_cluster_close_to_lp() {
        let topo = b4();
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![5.0; pairs.len()]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let cfg = NcflowConfig {
            clusters: 1,
            rounds: 1,
            lp: LpConfig::default(),
        };
        let nc = solve_ncflow(&inst, Objective::TotalFlow, &cfg);
        let lp = solve_lp(&inst, Objective::TotalFlow, &LpConfig::default()).0;
        let f_nc = evaluate(&inst, &nc).realized_flow;
        let f_lp = evaluate(&inst, &lp).realized_flow;
        assert!(
            f_nc > 0.9 * f_lp,
            "single-cluster ncflow {f_nc} vs lp {f_lp}"
        );
    }
}

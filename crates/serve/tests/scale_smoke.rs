//! Release-mode scale smoke (scale PR): a 512-node generated WAN served
//! end-to-end through the TCP front end — KSP precompute, FlowGNN forward,
//! batched ADMM fine-tuning, wire round-trip — under a wall-clock cap.
//!
//! `#[ignore]`d by default: a debug build would blow the cap on the
//! precompute alone. CI runs it in release via
//! `cargo test -p teal-serve --release --test scale_smoke -- --ignored`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use teal_core::{EngineConfig, Env, ServingContext, TealConfig, TealModel};
use teal_serve::{ModelRegistry, ServeConfig, ServeDaemon, TealClient, TealServer};
use teal_topology::{gravity_pairs, large_wan, PathSet};
use teal_traffic::TrafficMatrix;

/// Requests per serving window.
const WINDOW: usize = 8;

#[test]
#[ignore = "release-mode scale smoke; run with --ignored"]
fn serves_512_node_generated_wan_within_wall_clock_cap() {
    let total_start = Instant::now();

    // 512-node scale-free WAN with gravity-sampled demand pairs; the KSP
    // precompute runs once here, like a real serving deployment.
    const N: usize = 512;
    let topo = large_wan(N, 11);
    let pairs = gravity_pairs(&topo, 2 * N, 12);
    let paths = PathSet::compute(&topo, &pairs, 4);
    let env = Arc::new(Env::new(topo, paths));
    let nd = env.num_demands();

    let ctx = ServingContext::new(
        TealModel::new(
            Arc::clone(&env),
            TealConfig {
                gnn_layers: 3,
                seed: 3,
                ..TealConfig::default()
            },
        ),
        EngineConfig::paper_default(env.topo().num_nodes()),
    );
    let registry = ModelRegistry::new();
    registry.insert("wan512", ctx);
    let daemon = Arc::new(ServeDaemon::start(registry, ServeConfig::default()));
    let server = TealServer::bind(Arc::clone(&daemon), "127.0.0.1:0").expect("bind loopback");
    let client = TealClient::connect(server.local_addr()).expect("connect");

    // One serving window of heterogeneous matrices over the wire.
    let window_start = Instant::now();
    for i in 0..WINDOW {
        let tm = TrafficMatrix::new((0..nd).map(|d| ((d + 3 * i) % 17) as f64 * 0.5).collect());
        let reply = client.allocate("wan512", tm).expect("allocate over wire");
        assert_eq!(reply.allocation.num_demands(), nd, "request {i} arity");
    }
    let window = window_start.elapsed();
    let stats = daemon.stats();
    assert_eq!(stats.queue_depth, 0, "window left queued work: {stats:?}");

    // Caps with generous margin for loaded CI runners: the window itself
    // benches sub-second locally; end-to-end includes the one-off KSP
    // precompute and model init.
    assert!(
        window < Duration::from_secs(30),
        "512-node serving window took {window:?} (cap 30s)"
    );
    assert!(
        total_start.elapsed() < Duration::from_secs(150),
        "end-to-end smoke took {:?} (cap 150s)",
        total_start.elapsed()
    );
}

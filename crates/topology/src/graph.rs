//! WAN topology representation.
//!
//! A topology is a directed graph: every physical (bidirectional) WAN link
//! contributes two directed edges, each with its own capacity, matching the
//! formulation in Appendix A of the paper where capacities are per directed
//! link. Nodes carry optional planar coordinates (used by the geometric
//! generators and by the latency-penalized objective).

use std::collections::HashMap;

/// Index of a node.
pub type NodeId = usize;
/// Index of a directed edge.
pub type EdgeId = usize;

/// A directed WAN link.
#[derive(Clone, Debug, PartialEq)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Capacity in arbitrary bandwidth units (e.g. Gbps).
    pub capacity: f64,
    /// Routing weight (propagation latency / distance).
    pub weight: f64,
}

/// A WAN topology: nodes, directed edges, adjacency.
#[derive(Clone, Debug)]
pub struct Topology {
    name: String,
    num_nodes: usize,
    edges: Vec<Edge>,
    /// Out-adjacency: for each node, `(neighbor, edge id)` pairs.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    /// `(src, dst) -> edge id` lookup.
    edge_index: HashMap<(NodeId, NodeId), EdgeId>,
    /// Optional planar coordinates per node.
    coords: Vec<(f64, f64)>,
}

impl Topology {
    /// Create an empty topology with `n` nodes at the origin.
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        Topology {
            name: name.into(),
            num_nodes: n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            edge_index: HashMap::new(),
            coords: vec![(0.0, 0.0); n],
        }
    }

    /// Human-readable topology name (e.g. "B4").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All directed edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// One edge by id.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e]
    }

    /// Out-adjacency of a node as `(neighbor, edge id)` pairs.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[n]
    }

    /// Edge id for a `(src, dst)` pair if present.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.edge_index.get(&(src, dst)).copied()
    }

    /// Set a node's planar coordinates.
    pub fn set_coords(&mut self, n: NodeId, x: f64, y: f64) {
        self.coords[n] = (x, y);
    }

    /// A node's planar coordinates.
    pub fn coords(&self, n: NodeId) -> (f64, f64) {
        self.coords[n]
    }

    /// Add a single directed edge. Panics on duplicates or self-loops.
    pub fn add_directed_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: f64,
        weight: f64,
    ) -> EdgeId {
        assert!(
            src < self.num_nodes && dst < self.num_nodes,
            "edge endpoint out of range"
        );
        assert_ne!(src, dst, "self-loops are not allowed");
        assert!(
            !self.edge_index.contains_key(&(src, dst)),
            "duplicate edge {src}->{dst}"
        );
        assert!(
            capacity >= 0.0 && weight >= 0.0,
            "negative capacity or weight"
        );
        let id = self.edges.len();
        self.edges.push(Edge {
            src,
            dst,
            capacity,
            weight,
        });
        self.adj[src].push((dst, id));
        self.edge_index.insert((src, dst), id);
        id
    }

    /// Add a bidirectional link as two directed edges with equal
    /// capacity/weight. Returns the two edge ids.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        weight: f64,
    ) -> (EdgeId, EdgeId) {
        let e1 = self.add_directed_edge(a, b, capacity, weight);
        let e2 = self.add_directed_edge(b, a, capacity, weight);
        (e1, e2)
    }

    /// True if a bidirectional link exists between `a` and `b` in either direction.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_index.contains_key(&(a, b)) || self.edge_index.contains_key(&(b, a))
    }

    /// Capacity vector indexed by edge id.
    pub fn capacities(&self) -> Vec<f64> {
        self.edges.iter().map(|e| e.capacity).collect()
    }

    /// Total capacity over all directed edges.
    pub fn total_capacity(&self) -> f64 {
        self.edges.iter().map(|e| e.capacity).sum()
    }

    /// Multiply every capacity by `factor` (used for calibration and by POP's
    /// `1/k`-capacity replicas).
    pub fn scale_capacities(&mut self, factor: f64) {
        assert!(factor >= 0.0);
        for e in &mut self.edges {
            e.capacity *= factor;
        }
    }

    /// Return a copy with the given directed edges' capacities set to zero.
    ///
    /// Link failures are modeled exactly as in the paper (§3.1 footnote 1):
    /// "link failures can be viewed as an extreme scenario of capacity
    /// change, where the capacity of a failed link is reduced to zero."
    pub fn with_failed_edges(&self, failed: &[EdgeId]) -> Topology {
        let mut t = self.clone();
        for &e in failed {
            t.edges[e].capacity = 0.0;
        }
        t
    }

    /// Return a copy with every edge's capacity replaced from `caps`
    /// (indexed by edge id). Used by solvers that iterate over residual
    /// capacities.
    pub fn with_capacities(&self, caps: &[f64]) -> Topology {
        assert_eq!(
            caps.len(),
            self.edges.len(),
            "capacity vector length mismatch"
        );
        let mut t = self.clone();
        for (e, &c) in t.edges.iter_mut().zip(caps) {
            assert!(c >= 0.0, "negative capacity");
            e.capacity = c;
        }
        t
    }

    /// Fail a bidirectional link (both directed edges between `a` and `b`).
    pub fn with_failed_link(&self, a: NodeId, b: NodeId) -> Topology {
        let mut ids = Vec::new();
        if let Some(e) = self.find_edge(a, b) {
            ids.push(e);
        }
        if let Some(e) = self.find_edge(b, a) {
            ids.push(e);
        }
        self.with_failed_edges(&ids)
    }

    /// True when every node can reach every other node over directed edges
    /// (ignoring capacities).
    pub fn is_strongly_connected(&self) -> bool {
        if self.num_nodes == 0 {
            return true;
        }
        // For our symmetric-link topologies, reachability from node 0 in both
        // edge directions implies strong connectivity.
        let fwd = self.reachable_from(0);
        if fwd.iter().any(|&v| !v) {
            return false;
        }
        let mut rev_adj = vec![Vec::new(); self.num_nodes];
        for e in &self.edges {
            rev_adj[e.dst].push(e.src);
        }
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![0];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for &m in &rev_adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        seen.into_iter().all(|v| v)
    }

    fn reachable_from(&self, start: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(n) = stack.pop() {
            for &(m, _) in &self.adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        seen
    }

    /// All ordered node pairs `(s, t)` with `s != t` — the demand universe.
    pub fn all_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let n = self.num_nodes;
        let mut out = Vec::with_capacity(n * (n - 1));
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    out.push((s, t));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut t = Topology::new("tri", 3);
        t.add_link(0, 1, 10.0, 1.0);
        t.add_link(1, 2, 20.0, 1.0);
        t.add_link(0, 2, 30.0, 2.0);
        t
    }

    #[test]
    fn links_create_two_directed_edges() {
        let t = triangle();
        assert_eq!(t.num_edges(), 6);
        assert!(t.find_edge(0, 1).is_some());
        assert!(t.find_edge(1, 0).is_some());
        assert!(t.has_link(2, 0));
        assert!(!t.has_link(0, 0));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let mut t = triangle();
        t.add_directed_edge(0, 1, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut t = Topology::new("x", 2);
        t.add_directed_edge(0, 0, 1.0, 1.0);
    }

    #[test]
    fn connectivity() {
        let t = triangle();
        assert!(t.is_strongly_connected());
        let mut u = Topology::new("dis", 4);
        u.add_link(0, 1, 1.0, 1.0);
        u.add_link(2, 3, 1.0, 1.0);
        assert!(!u.is_strongly_connected());
    }

    #[test]
    fn failures_zero_capacity_without_removing_edges() {
        let t = triangle();
        let f = t.with_failed_link(0, 1);
        assert_eq!(f.num_edges(), t.num_edges());
        let e = t.find_edge(0, 1).unwrap();
        assert_eq!(f.edge(e).capacity, 0.0);
        assert_eq!(t.edge(e).capacity, 10.0);
        // Still "connected" topologically — failures only change capacity.
        assert!(f.is_strongly_connected());
    }

    #[test]
    fn capacity_scaling() {
        let mut t = triangle();
        let before = t.total_capacity();
        t.scale_capacities(0.5);
        assert!((t.total_capacity() - before * 0.5).abs() < 1e-9);
    }

    #[test]
    fn all_pairs_count() {
        let t = triangle();
        assert_eq!(t.all_pairs().len(), 6);
    }
}

//! Model-thread spawning and joining. Spawned closures run on real OS
//! threads, but only ever one at a time — the runtime's token decides who.

use std::any::Any;
use std::sync::{Arc, Mutex as StdMutex};

use crate::rt;

/// Handle to a model thread; join parks the caller until the thread
/// finishes (a modeled blocking edge, explored like any other).
pub struct JoinHandle<T> {
    rt: Arc<rt::Rt>,
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
}

/// Spawn a model thread. Must be called from inside a model run.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    rt::yield_point();
    let Some((handle, _)) = rt::current() else {
        panic!("loom thread::spawn outside a model run")
    };
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let rt_for_thread = Arc::clone(&handle);
    let tid = rt::spawn_model_thread(
        &handle,
        move || {
            let value = f();
            *slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
        },
        rt_for_thread,
    );
    JoinHandle {
        rt: handle,
        tid,
        result,
    }
}

impl<T> JoinHandle<T> {
    /// Park until the thread finishes; `Err` means it panicked (the model
    /// will fail anyway — the panic was recorded as the execution's
    /// failure).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        rt::yield_point();
        let Some((_, me)) = rt::current() else {
            panic!("loom JoinHandle::join outside a model run")
        };
        while !rt::is_finished(&self.rt, self.tid) {
            // Token-atomic with the check above: no other model thread ran
            // in between, so the finish transition cannot be missed.
            rt::block_on(&self.rt, me, rt::join_resource(self.tid));
        }
        match self
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            Some(v) => Ok(v),
            None => Err(Box::new("loom model thread panicked")),
        }
    }
}

/// A bare scheduling point: any runnable thread (including the caller) may
/// run next.
pub fn yield_now() {
    rt::yield_point();
}

//! Deficit-round-robin arbitration of serving windows across shards that
//! share a [`crate::ServeConfig::shard_threads`] budget.
//!
//! Without a cap, shards are true parallel lanes and need no coordination.
//! With one, every shard's window competes for the same slice of the
//! compute pool, and plain mutex ordering would let one chatty tenant's
//! topology starve everyone else. The [`WfqScheduler`] is the arbiter:
//! a shard reserves each window with [`WfqScheduler::enqueue`] and blocks
//! in [`WfqScheduler::wait`] until the deficit-round-robin schedule says
//! that window's tenant has its turn. One window runs at a time (the
//! contended resource *is* the shared thread budget); weights from
//! [`crate::ServeConfig::tenant_weights`] set the long-run window ratio —
//! a weight-2 tenant gets two windows per round to a weight-1 tenant's one.
//!
//! The two-phase enqueue/wait split is load-bearing, not a convenience:
//! a shard serving a multi-chunk drain enqueues chunk *i + 1*'s ticket
//! while still holding chunk *i*'s grant. A single blocking `acquire`
//! cannot express that, and without it each tenant has at most one ticket
//! at the arbiter at any instant — every release then sees only the *other*
//! tenant waiting, the gate degenerates to strict alternation, and the
//! weights never matter. With one-ahead reservations every backlogged
//! shard is backlogged *at the arbiter* too, and the credit schedule is
//! what decides.
//!
//! Classic DRR, flow = tenant: each flow holds a credit balance; granting a
//! window costs one credit; when no *waiting* flow has credit left, every
//! waiting flow is replenished to its weight and the round restarts. A
//! tenant that shows up mid-round joins the current round with whatever
//! credit it last held (bounded by its weight — credit is reset, not
//! accumulated, so an idle tenant cannot hoard a burst of back-to-back
//! windows). Flow entries are dropped as soon as a tenant has neither
//! waiters nor credit, so hostile wire clients minting fresh tenant names
//! cannot grow the flow table without bound.

// teal-lint: checked-sync
use crate::sync::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};

/// Per-tenant flow state: remaining credit this round plus the FIFO of
/// tickets (waiting windows) charged to this tenant.
#[derive(Default)]
struct Flow {
    credit: u64,
    waiting: VecDeque<u64>,
}

struct WfqState {
    flows: HashMap<String, Flow>,
    /// Whether a granted window is currently running (capacity 1: the
    /// contended resource is one shared `shard_threads` budget).
    busy: bool,
    next_ticket: u64,
}

/// The window arbiter. One per daemon, built at start when
/// `shard_threads` is set; shards reserve a ticket per chunk and redeem it
/// before serving.
pub struct WfqScheduler {
    /// Configured weights; tenants not listed (including `"default"`)
    /// weigh 1. Zero weights are clamped to 1 — weight 0 would starve the
    /// tenant forever, which is a misconfiguration, not a policy.
    weights: HashMap<String, u64>,
    state: Mutex<WfqState>,
    turn: Condvar,
}

/// A queued claim on one future serving window. Every reservation must be
/// redeemed with [`WfqScheduler::wait`] (or explicitly cancelled): an
/// abandoned ticket sits at the head of its flow's FIFO and stalls the
/// schedule for everyone behind it.
pub struct Reservation {
    tenant: String,
    ticket: u64,
}

impl WfqScheduler {
    pub fn new(weights: &[(String, u32)]) -> Self {
        WfqScheduler {
            weights: weights
                .iter()
                .map(|(t, w)| (t.clone(), u64::from(*w).max(1)))
                .collect(),
            state: Mutex::new(WfqState {
                flows: HashMap::new(),
                busy: false,
                next_ticket: 0,
            }),
            turn: Condvar::new(),
        }
    }

    fn weight(&self, tenant: &str) -> u64 {
        self.weights.get(tenant).copied().unwrap_or(1)
    }

    /// Join `tenant`'s flow FIFO without blocking. Safe to call while
    /// holding a [`WindowGrant`] — that is the point: the next window's
    /// ticket is in the schedule before the current one releases.
    pub fn enqueue(&self, tenant: &str) -> Reservation {
        let mut s = self.state.lock();
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.flows
            .entry(tenant.to_string())
            .or_default()
            .waiting
            .push_back(ticket);
        Reservation {
            tenant: tenant.to_string(),
            ticket,
        }
    }

    /// Block until the DRR schedule reaches the reserved ticket, then hold
    /// the slot until the returned guard drops (panic-safe: a poisoned
    /// window still frees the slot on unwind).
    pub fn wait(&self, r: Reservation) -> WindowGrant<'_> {
        let mut s = self.state.lock();
        loop {
            if !s.busy {
                if let Some(flow) = self.pick(&mut s) {
                    // Tickets are globally unique, so matching the head
                    // alone would do; checking the tenant first keeps the
                    // common miss cheap.
                    if flow == r.tenant && s.flows[&flow].waiting.front() == Some(&r.ticket) {
                        let Some(f) = s.flows.get_mut(&flow) else {
                            unreachable!("pick() returned a flow it just saw")
                        };
                        f.waiting.pop_front();
                        f.credit -= 1;
                        if f.waiting.is_empty() && f.credit == 0 {
                            // Bound the flow table: an inactive tenant with a
                            // spent round holds no state worth keeping.
                            s.flows.remove(&flow);
                        }
                        s.busy = true;
                        return WindowGrant { sched: self };
                    }
                    // Someone else's turn: make sure they are awake, then
                    // wait for the schedule to advance.
                    self.turn.notify_all();
                }
            }
            s = self.turn.wait(s);
        }
    }

    /// Withdraw an unredeemed reservation so it cannot stall the schedule.
    #[cfg(test)]
    pub fn cancel(&self, r: Reservation) {
        let mut s = self.state.lock();
        if let Some(f) = s.flows.get_mut(&r.tenant) {
            f.waiting.retain(|&t| t != r.ticket);
            if f.waiting.is_empty() && f.credit == 0 {
                s.flows.remove(&r.tenant);
            }
        }
        drop(s);
        self.turn.notify_all();
    }

    /// The flow whose head ticket should run next, replenishing the round
    /// if every waiting flow has spent its credit. `None` iff nothing is
    /// waiting.
    fn pick(&self, s: &mut WfqState) -> Option<String> {
        let has_waiters = s.flows.values().any(|f| !f.waiting.is_empty());
        if !has_waiters {
            return None;
        }
        if !s
            .flows
            .values()
            .any(|f| !f.waiting.is_empty() && f.credit > 0)
        {
            // Round boundary: every waiting flow earns its weight back.
            // Reset (not +=) keeps credit bounded by the weight.
            let names: Vec<String> = s
                .flows
                .iter()
                .filter(|(_, f)| !f.waiting.is_empty())
                .map(|(n, _)| n.clone())
                .collect();
            for n in names {
                let w = self.weight(&n);
                if let Some(f) = s.flows.get_mut(&n) {
                    f.credit = w;
                }
            }
        }
        s.flows
            .iter()
            .filter(|(_, f)| !f.waiting.is_empty() && f.credit > 0)
            .max_by(|(an, af), (bn, bf)| af.credit.cmp(&bf.credit).then_with(|| bn.cmp(an)))
            .map(|(n, _)| n.clone())
    }
}

/// RAII grant for one serving window; dropping it frees the slot and wakes
/// the arbiter so the next scheduled window can start.
pub struct WindowGrant<'a> {
    sched: &'a WfqScheduler,
}

impl Drop for WindowGrant<'_> {
    fn drop(&mut self) {
        let mut s = self.sched.state.lock();
        s.busy = false;
        drop(s);
        self.sched.turn.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn drr_grants_windows_in_weight_ratio() {
        // Two always-backlogged tenants at weights 2:1 must see windows
        // granted 2:1 per round, regardless of which thread is faster.
        // Each thread reserves its next window *while holding* the current
        // grant — the shard drain loop does the same — so both flows stay
        // backlogged at the arbiter and the credit schedule decides.
        let sched = Arc::new(WfqScheduler::new(&[
            ("gold".to_string(), 2),
            ("bronze".to_string(), 1),
        ]));
        let stop = Arc::new(AtomicBool::new(false));
        let counts = Arc::new(Mutex::new(HashMap::<String, u64>::new()));
        std::thread::scope(|scope| {
            for tenant in ["gold", "bronze"] {
                let sched = Arc::clone(&sched);
                let stop = Arc::clone(&stop);
                let counts = Arc::clone(&counts);
                scope.spawn(move || {
                    let mut res = sched.enqueue(tenant);
                    loop {
                        let grant = sched.wait(res);
                        *counts.lock().entry(tenant.to_string()).or_insert(0) += 1;
                        // One-ahead reservation, then hold the window
                        // briefly so release decisions see both flows.
                        res = sched.enqueue(tenant);
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        drop(grant);
                        if stop.load(Ordering::Acquire) {
                            sched.cancel(res);
                            break;
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
            stop.store(true, Ordering::Release);
        });
        let counts = counts.lock();
        let gold = counts["gold"] as f64;
        let bronze = counts["bronze"] as f64;
        let ratio = gold / bronze;
        assert!(
            (1.4..=2.75).contains(&ratio),
            "gold/bronze window ratio {ratio:.2} (gold {gold}, bronze {bronze}) \
             outside the 2:1 weight band"
        );
    }

    #[test]
    fn unknown_tenants_default_to_weight_one() {
        let sched = WfqScheduler::new(&[("vip".to_string(), 3)]);
        assert_eq!(sched.weight("vip"), 3);
        assert_eq!(sched.weight("stranger"), 1);
    }

    #[test]
    fn zero_weight_is_clamped_not_starved() {
        let sched = WfqScheduler::new(&[("broken".to_string(), 0)]);
        assert_eq!(sched.weight("broken"), 1);
        // Must not deadlock: a lone zero-weight tenant still gets windows.
        let grant = sched.wait(sched.enqueue("broken"));
        drop(grant);
        let grant = sched.wait(sched.enqueue("broken"));
        drop(grant);
    }

    #[test]
    fn cancelled_reservation_does_not_stall_the_schedule() {
        let sched = WfqScheduler::new(&[]);
        let abandoned = sched.enqueue("a");
        let live = sched.enqueue("b");
        sched.cancel(abandoned);
        // With "a"'s ticket withdrawn, "b" must be grantable immediately.
        drop(sched.wait(live));
    }
}

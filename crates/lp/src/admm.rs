//! ADMM for the TE path LP, following Appendix C of the paper.
//!
//! The constrained problem (Eq. 1) is rewritten with auxiliary per-(path,
//! edge) variables `z_pe`, slacks `s1_d` (demand rows) and `s3_e` (capacity
//! rows), and multipliers `λ = (λ1, λ3, λ4)`. Each ADMM iteration performs
//! four sweeps, every one of which decomposes into independent per-demand or
//! per-edge subproblems (the parallelism §3.4 exploits on GPUs; here spread
//! over CPU threads):
//!
//! 1. **F-update** — per demand, a k-dimensional box-clamped quadratic whose
//!    Hessian is `ρ(vol²·diag(L_p) + 11ᵀ)`, solved in closed form via the
//!    Sherman-Morrison identity;
//! 2. **z-update** — per edge, Hessian `ρ(I + 11ᵀ)`, also Sherman-Morrison;
//! 3. **slack updates** — non-negative projections in closed form;
//! 4. **dual ascent** on all three multiplier families.
//!
//! Used in two roles, matching the paper: *warm-started for 2–5 iterations*
//! as Teal's feasibility repair (§3.4), and *cold-started to convergence* as
//! the large-instance substitute for the Gurobi "LP-all" baseline (our
//! documented Gurobi substitution; see DESIGN.md).

use crate::problem::{Allocation, Objective, TeInstance};
use std::sync::Arc;
use teal_topology::{PathSet, Topology};
use teal_traffic::TrafficMatrix;

/// ADMM hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct AdmmConfig {
    /// Penalty coefficient ρ.
    pub rho: f64,
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Stop early when the max primal residual drops below this (0 disables
    /// early stopping — the paper's fine-tuning always runs a fixed count).
    pub tol: f64,
    /// Run all update sweeps single-threaded. Used by the Figure-2
    /// concurrent-racing experiment, where each racer must model a *serial*
    /// LP instance on its own thread.
    pub serial: bool,
}

impl AdmmConfig {
    /// The paper's fine-tuning setting: 2 iterations for topologies under
    /// 100 nodes, 5 otherwise (§4).
    pub fn fine_tune(num_nodes: usize) -> Self {
        AdmmConfig {
            rho: 1.0,
            max_iters: if num_nodes < 100 { 2 } else { 5 },
            tol: 0.0,
            serial: false,
        }
    }

    /// Solve-to-convergence setting used as the LP-all substitute.
    pub fn to_convergence() -> Self {
        AdmmConfig {
            rho: 1.0,
            max_iters: 4000,
            tol: 1e-5,
            serial: false,
        }
    }
}

/// Iteration report.
#[derive(Clone, Copy, Debug)]
pub struct AdmmReport {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Final max primal residual (normalized units).
    pub primal_residual: f64,
}

/// Immutable path-edge incidence indexing shared by every solver built for
/// one `(topology, path set)` pair. Building it walks every hop of every
/// candidate path, which dominates solver-construction cost — hoisting it
/// behind an `Arc` is what makes per-traffic-matrix solver construction
/// an O(paths) copy instead of an O(nnz) rebuild.
struct AdmmIndex {
    /// Flattened incidence entries: `(path, edge)` per non-zero.
    entries: Vec<(u32, u32)>,
    /// Entry ids of each path (demand-major path indexing).
    path_entries: Vec<Vec<u32>>,
    /// Entry ids of each edge.
    edge_entries: Vec<Vec<u32>>,
}

/// Everything about an ADMM deployment that does *not* depend on the traffic
/// matrix: the incidence index, normalized capacities, and the per-path
/// objective discounts. Build once per `(topology, path set, objective)`
/// and mint a cheap [`AdmmSolver`] per traffic matrix with
/// [`AdmmSkeleton::solver`] — the zero-rebuild serving path.
#[derive(Clone)]
pub struct AdmmSkeleton {
    num_demands: usize,
    k: usize,
    num_edges: usize,
    /// Capacity normalizer (1 / mean capacity).
    alpha: f64,
    /// Normalized capacities per edge.
    caps: Arc<Vec<f64>>,
    /// Per-path objective multiplier (1 for `TotalFlow`; latency discount
    /// for `DelayPenalizedFlow`).
    discount: Arc<Vec<f64>>,
    index: Arc<AdmmIndex>,
}

impl AdmmSkeleton {
    /// Build the per-topology solver state under a linear objective
    /// (`TotalFlow` or `DelayPenalizedFlow`; `MinMaxLinkUtil` uses
    /// [`crate::pathlp::solve_mlu`] instead).
    pub fn new(topo: &Topology, paths: &PathSet, obj: Objective) -> Self {
        assert!(
            !matches!(obj, Objective::MinMaxLinkUtil),
            "ADMM handles linear objectives; use solve_mlu for MLU"
        );
        let num_edges = topo.num_edges();
        // Normalize volumes/capacities by the mean capacity so ρ=1 is well
        // conditioned on every topology.
        let mean_cap = topo.total_capacity() / num_edges.max(1) as f64;
        let alpha = if mean_cap > 0.0 { 1.0 / mean_cap } else { 1.0 };
        let caps: Vec<f64> = topo.edges().iter().map(|e| e.capacity * alpha).collect();

        let discount: Vec<f64> = match obj {
            Objective::DelayPenalizedFlow(gamma) => {
                let max_w = paths
                    .paths()
                    .iter()
                    .map(|p| p.weight)
                    .fold(0.0f64, f64::max)
                    .max(1e-12);
                paths
                    .paths()
                    .iter()
                    .map(|p| (1.0 - gamma * p.weight / max_w).max(0.0))
                    .collect()
            }
            _ => vec![1.0; paths.num_paths()],
        };

        let mut entries = Vec::new();
        let mut path_entries = vec![Vec::new(); paths.num_paths()];
        let mut edge_entries = vec![Vec::new(); num_edges];
        for (p, path) in paths.paths().iter().enumerate() {
            for &e in &path.edges {
                let id = entries.len() as u32;
                entries.push((p as u32, e as u32));
                path_entries[p].push(id);
                edge_entries[e].push(id);
            }
        }
        AdmmSkeleton {
            num_demands: paths.num_demands(),
            k: paths.k(),
            num_edges,
            alpha,
            caps: Arc::new(caps),
            discount: Arc::new(discount),
            index: Arc::new(AdmmIndex {
                entries,
                path_entries,
                edge_entries,
            }),
        }
    }

    /// Rebind to a topology with altered capacities (e.g. failed links
    /// zeroed) while sharing the incidence index and discounts: only the
    /// capacity vector is recomputed, so failure overrides stay cheap.
    pub fn with_topology(&self, topo: &Topology) -> AdmmSkeleton {
        assert_eq!(
            topo.num_edges(),
            self.num_edges,
            "override edge count mismatch"
        );
        let mean_cap = topo.total_capacity() / self.num_edges.max(1) as f64;
        let alpha = if mean_cap > 0.0 { 1.0 / mean_cap } else { 1.0 };
        let caps: Vec<f64> = topo.edges().iter().map(|e| e.capacity * alpha).collect();
        AdmmSkeleton {
            alpha,
            caps: Arc::new(caps),
            ..self.clone()
        }
    }

    /// Mint the solver for one traffic matrix: computes the normalized
    /// volumes and objective coefficients (O(paths)) and shares everything
    /// else with the skeleton.
    pub fn solver(&self, tm: &TrafficMatrix) -> AdmmSolver {
        assert_eq!(tm.len(), self.num_demands, "traffic matrix arity mismatch");
        let vols: Vec<f64> = tm.demands().iter().map(|v| v * self.alpha).collect();
        let k = self.k;
        let vcoef: Vec<f64> = self
            .discount
            .iter()
            .enumerate()
            .map(|(p, disc)| vols[p / k] * disc)
            .collect();
        AdmmSolver {
            num_demands: self.num_demands,
            k,
            num_edges: self.num_edges,
            vols,
            caps: Arc::clone(&self.caps),
            vcoef,
            index: Arc::clone(&self.index),
        }
    }
}

/// Pre-indexed ADMM solver for one `(topology, path set, traffic matrix)`
/// triple. Constructed either directly from a [`TeInstance`] or — on the
/// serving path — cheaply from a shared [`AdmmSkeleton`].
pub struct AdmmSolver {
    num_demands: usize,
    k: usize,
    num_edges: usize,
    /// Normalized demand volumes per demand.
    vols: Vec<f64>,
    /// Normalized capacities per edge.
    caps: Arc<Vec<f64>>,
    /// Normalized per-path objective coefficients.
    vcoef: Vec<f64>,
    /// Shared incidence index.
    index: Arc<AdmmIndex>,
}

struct State {
    f: Vec<f64>,
    z: Vec<f64>,
    s1: Vec<f64>,
    s3: Vec<f64>,
    l1: Vec<f64>,
    l3: Vec<f64>,
    l4: Vec<f64>,
}

impl AdmmSolver {
    /// Build the solver for an instance under a linear objective
    /// (`TotalFlow` or `DelayPenalizedFlow`; `MinMaxLinkUtil` uses
    /// [`crate::pathlp::solve_mlu`] instead). One-shot convenience — serving
    /// paths should build an [`AdmmSkeleton`] once and mint per-matrix
    /// solvers from it.
    pub fn new(inst: &TeInstance, obj: Objective) -> Self {
        AdmmSkeleton::new(inst.topo, inst.paths, obj).solver(inst.tm)
    }

    /// Run ADMM starting from `init` (which is projected onto the demand
    /// constraints first). Returns the refined allocation and a report.
    pub fn run(&self, init: &Allocation, cfg: AdmmConfig) -> (Allocation, AdmmReport) {
        self.run_with_cancel(init, cfg, None)
    }

    /// Like [`AdmmSolver::run`], checking an external cancellation flag
    /// between iterations (for racing solvers).
    pub fn run_with_cancel(
        &self,
        init: &Allocation,
        cfg: AdmmConfig,
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> (Allocation, AdmmReport) {
        assert_eq!(init.num_demands(), self.num_demands);
        assert_eq!(init.k(), self.k);
        let mut warm = init.clone();
        warm.project_demand_constraints();

        let nnz = self.index.entries.len();
        let mut st = State {
            f: warm.splits().to_vec(),
            z: vec![0.0; nnz],
            s1: vec![0.0; self.num_demands],
            s3: vec![0.0; self.num_edges],
            l1: vec![0.0; self.num_demands],
            l3: vec![0.0; self.num_edges],
            l4: vec![0.0; nnz],
        };
        // Initialize z to match the warm-started flows and slacks to the
        // residual capacities, so iteration 1 starts near-consistent.
        for (i, &(p, _)) in self.index.entries.iter().enumerate() {
            st.z[i] = st.f[p as usize] * self.vols[p as usize / self.k];
        }
        for d in 0..self.num_demands {
            let sum: f64 = st.f[d * self.k..(d + 1) * self.k].iter().sum();
            st.s1[d] = (1.0 - sum).max(0.0);
        }
        for e in 0..self.num_edges {
            let sum: f64 = self.index.edge_entries[e]
                .iter()
                .map(|&i| st.z[i as usize])
                .sum();
            st.s3[e] = (self.caps[e] - sum).max(0.0);
        }

        let rho = cfg.rho;
        let serial = cfg.serial;
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        for _ in 0..cfg.max_iters {
            if let Some(flag) = cancel {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
            }
            let df = self.update_f(&mut st, rho, serial);
            let dz = self.update_z(&mut st, rho, serial);
            self.update_slacks(&mut st, rho);
            let primal = self.dual_ascent(&mut st, rho);
            // Convergence needs both feasibility (primal residual) and a
            // stationary iterate (dual residual ~ ρ * step size); primal
            // alone is satisfied by the all-zero point.
            residual = primal.max(rho * df).max(rho * dz);
            iterations += 1;
            if cfg.tol > 0.0 && residual < cfg.tol {
                break;
            }
        }

        let mut out = Allocation::from_splits(self.k, st.f);
        out.project_demand_constraints();
        (
            out,
            AdmmReport {
                iterations,
                primal_residual: residual,
            },
        )
    }

    /// Per-demand F-update (parallel across demand chunks). Returns the
    /// max absolute change of any split (the F-block dual residual).
    fn update_f(&self, st: &mut State, rho: f64, serial: bool) -> f64 {
        let k = self.k;
        let z = &st.z;
        let s1 = &st.s1;
        let l1 = &st.l1;
        let l4 = &st.l4;
        let solver = self;
        let prev = st.f.clone();
        par_chunks_indexed(&mut st.f, k * 64, serial, |start, chunk| {
            // `start` is a split index; convert to demand ids.
            debug_assert_eq!(start % k, 0);
            let d0 = start / k;
            for (dd, row) in chunk.chunks_mut(k).enumerate() {
                let d = d0 + dd;
                let vol = solver.vols[d];
                if vol <= 0.0 {
                    row.iter_mut().for_each(|v| *v = 0.0);
                    continue;
                }
                let mut b = [0.0f64; 16];
                let mut diag = [0.0f64; 16];
                for (j, bj) in b.iter_mut().enumerate().take(k) {
                    let p = d * k + j;
                    let mut acc = solver.vcoef[p] - l1[d] - rho * (s1[d] - 1.0);
                    for &i in &solver.index.path_entries[p] {
                        let i = i as usize;
                        acc += -l4[i] * vol + rho * vol * z[i];
                    }
                    *bj = acc;
                    diag[j] = rho * vol * vol * solver.index.path_entries[p].len() as f64;
                }
                // Sherman-Morrison solve of (diag + rho*11^T) x = b.
                let mut sum_binv = 0.0;
                let mut sum_inv = 0.0;
                for j in 0..k {
                    sum_binv += b[j] / diag[j];
                    sum_inv += 1.0 / diag[j];
                }
                let corr = rho * sum_binv / (1.0 + rho * sum_inv);
                for (j, r) in row.iter_mut().enumerate() {
                    let x = (b[j] - corr) / diag[j];
                    *r = x.clamp(0.0, 1.0);
                }
            }
        });
        prev.iter()
            .zip(&st.f)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Per-edge z-update (parallel across edges). Returns the max absolute
    /// change of any auxiliary variable (the z-block dual residual).
    fn update_z(&self, st: &mut State, rho: f64, serial: bool) -> f64 {
        let k = self.k;
        let f = &st.f;
        let s3 = &st.s3;
        let l3 = &st.l3;
        let l4 = &st.l4;
        let solver = self;
        // z entries are not contiguous per edge, so compute per-edge results
        // into a scratch copy first (indexable in parallel by edge).
        let mut new_z = st.z.clone();
        if serial {
            // Single-threaded fast path (the batched serving engine runs one
            // serial solver per matrix): plain writes, one reusable scratch
            // buffer, no atomics.
            let mut bs: Vec<f64> = Vec::new();
            for e in 0..self.num_edges {
                let ents = &solver.index.edge_entries[e];
                if ents.is_empty() {
                    continue;
                }
                let n = ents.len() as f64;
                let mut sum_b = 0.0;
                bs.clear();
                for &i in ents {
                    let i = i as usize;
                    let (p, _) = solver.index.entries[i];
                    let vol = solver.vols[p as usize / k];
                    let b =
                        -l3[e] - rho * (s3[e] - solver.caps[e]) + l4[i] + rho * f[p as usize] * vol;
                    bs.push(b);
                    sum_b += b;
                }
                let corr = sum_b / rho / (1.0 + n);
                for (&i, b) in ents.iter().zip(&bs) {
                    new_z[i as usize] = b / rho - corr;
                }
            }
        } else {
            let new_z_cell: Vec<std::sync::atomic::AtomicU64> = new_z
                .iter()
                .map(|v| std::sync::atomic::AtomicU64::new(v.to_bits()))
                .collect();
            let edges: Vec<usize> = (0..self.num_edges).collect();
            par_iter(&edges, 64, serial, |&e| {
                let ents = &solver.index.edge_entries[e];
                if ents.is_empty() {
                    return;
                }
                let n = ents.len() as f64;
                let mut sum_b = 0.0;
                let mut bs: Vec<f64> = Vec::with_capacity(ents.len());
                for &i in ents {
                    let i = i as usize;
                    let (p, _) = solver.index.entries[i];
                    let vol = solver.vols[p as usize / k];
                    let b =
                        -l3[e] - rho * (s3[e] - solver.caps[e]) + l4[i] + rho * f[p as usize] * vol;
                    bs.push(b);
                    sum_b += b;
                }
                let corr = sum_b / rho / (1.0 + n);
                for (&i, b) in ents.iter().zip(bs) {
                    let zi = b / rho - corr;
                    new_z_cell[i as usize]
                        .store(zi.to_bits(), std::sync::atomic::Ordering::Relaxed);
                }
            });
            for (v, cell) in new_z.iter_mut().zip(&new_z_cell) {
                *v = f64::from_bits(cell.load(std::sync::atomic::Ordering::Relaxed));
            }
        }
        let dz =
            st.z.iter()
                .zip(&new_z)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
        st.z = new_z;
        dz
    }

    /// Closed-form non-negative slack updates.
    fn update_slacks(&self, st: &mut State, rho: f64) {
        let k = self.k;
        for d in 0..self.num_demands {
            let sum: f64 = st.f[d * k..(d + 1) * k].iter().sum();
            st.s1[d] = (1.0 - sum - st.l1[d] / rho).max(0.0);
        }
        for e in 0..self.num_edges {
            let sum: f64 = self.index.edge_entries[e]
                .iter()
                .map(|&i| st.z[i as usize])
                .sum();
            st.s3[e] = (self.caps[e] - sum - st.l3[e] / rho).max(0.0);
        }
    }

    /// Dual ascent; returns the max primal residual.
    fn dual_ascent(&self, st: &mut State, rho: f64) -> f64 {
        let k = self.k;
        let mut resid = 0.0f64;
        for d in 0..self.num_demands {
            let g = st.f[d * k..(d + 1) * k].iter().sum::<f64>() + st.s1[d] - 1.0;
            st.l1[d] += rho * g;
            resid = resid.max(g.abs());
        }
        for e in 0..self.num_edges {
            let sum: f64 = self.index.edge_entries[e]
                .iter()
                .map(|&i| st.z[i as usize])
                .sum();
            let g = sum + st.s3[e] - self.caps[e];
            st.l3[e] += rho * g;
            resid = resid.max(g.abs());
        }
        for (i, &(p, _)) in self.index.entries.iter().enumerate() {
            let g = st.f[p as usize] * self.vols[p as usize / k] - st.z[i];
            st.l4[i] += rho * g;
            resid = resid.max(g.abs());
        }
        resid
    }
}

/// Minimal scoped-thread helpers (kept local so `teal-lp` does not depend on
/// the NN substrate).
fn par_chunks_indexed<T: Send, F>(data: &mut [T], min_chunk: usize, serial: bool, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = if serial {
        1
    } else {
        hw.min(8).min(len.div_ceil(min_chunk)).max(1)
    };
    if threads <= 1 {
        f(0, data);
        return;
    }
    let mut chunk = len.div_ceil(threads);
    // Keep chunk a multiple of min_chunk so row groups stay intact.
    chunk = chunk.div_ceil(min_chunk) * min_chunk;
    crossbeam::scope(|s| {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move |_| f(i * chunk, c));
        }
    })
    .expect("admm worker panicked");
}

fn par_iter<T: Sync, F>(items: &[T], min_chunk: usize, serial: bool, f: F)
where
    F: Fn(&T) + Sync,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = if serial {
        1
    } else {
        hw.min(8).min(len.div_ceil(min_chunk)).max(1)
    };
    if threads <= 1 {
        items.iter().for_each(&f);
        return;
    }
    let chunk = len.div_ceil(threads);
    crossbeam::scope(|s| {
        for c in items.chunks(chunk) {
            let f = &f;
            s.spawn(move |_| c.iter().for_each(f));
        }
    })
    .expect("admm worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::evaluate;
    use crate::simplex;
    use teal_topology::{PathSet, Topology};
    use teal_traffic::TrafficMatrix;

    fn diamond() -> Topology {
        let mut t = Topology::new("d", 4);
        t.add_link(0, 1, 10.0, 1.0);
        t.add_link(1, 3, 10.0, 1.0);
        t.add_link(0, 2, 10.0, 1.5);
        t.add_link(2, 3, 10.0, 1.5);
        t.add_link(0, 3, 5.0, 4.0);
        t
    }

    /// Exact optimum of the same LP via simplex, for comparison.
    fn simplex_optimum(inst: &TeInstance) -> f64 {
        let k = inst.k();
        let vc = inst.value_coefficients(Objective::TotalFlow);
        let mut rows = Vec::new();
        for d in 0..inst.num_demands() {
            let coeffs = (0..k).map(|j| (d * k + j, 1.0)).collect();
            rows.push(simplex::Row { coeffs, rhs: 1.0 });
        }
        let e2p = inst.paths.edge_to_paths(inst.topo.num_edges());
        for (e, plist) in e2p.iter().enumerate() {
            if plist.is_empty() {
                continue;
            }
            let coeffs = plist.iter().map(|&p| (p, inst.tm.demand(p / k))).collect();
            rows.push(simplex::Row {
                coeffs,
                rhs: inst.topo.edge(e).capacity,
            });
        }
        let r = simplex::solve(&vc, &rows, 50_000);
        assert_eq!(r.status, simplex::SimplexStatus::Optimal);
        r.objective
    }

    #[test]
    fn admm_converges_to_lp_optimum_single_demand() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        // Demand exceeds single-path capacity: optimum uses all 25 units of
        // cut capacity.
        let tm = TrafficMatrix::new(vec![30.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        let (alloc, report) = solver.run(&Allocation::zeros(1, 4), AdmmConfig::to_convergence());
        let stats = evaluate(&inst, &alloc);
        let opt = simplex_optimum(&inst);
        assert!(
            stats.realized_flow > 0.95 * opt,
            "admm {} vs simplex {} (residual {})",
            stats.realized_flow,
            opt,
            report.primal_residual
        );
        assert!(alloc.demand_feasible(1e-6));
    }

    #[test]
    fn admm_matches_simplex_multi_demand() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize), (1usize, 2usize), (3usize, 0usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![12.0, 9.0, 15.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        let (alloc, _) = solver.run(&Allocation::zeros(3, 4), AdmmConfig::to_convergence());
        let got = evaluate(&inst, &alloc).realized_flow;
        let opt = simplex_optimum(&inst);
        assert!(got > 0.93 * opt, "admm {got} vs simplex {opt}");
    }

    #[test]
    fn few_iterations_reduce_violations_of_bad_start() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![40.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        // Grossly infeasible warm start: everything on every path.
        let bad = Allocation::from_splits(4, vec![1.0, 1.0, 1.0, 1.0]);
        let mut bad_proj = bad.clone();
        bad_proj.project_demand_constraints();
        let before = evaluate(&inst, &bad_proj).total_overuse;
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        let (tuned, _) = solver.run(
            &bad,
            AdmmConfig {
                rho: 1.0,
                max_iters: 5,
                tol: 0.0,
                serial: false,
            },
        );
        let after = evaluate(&inst, &tuned).total_overuse;
        assert!(after < before, "overuse before {before}, after {after}");
    }

    #[test]
    fn warm_start_speeds_convergence() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize), (1usize, 2usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![18.0, 6.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        // Near-optimal warm start.
        let (near_opt, _) = solver.run(&Allocation::zeros(2, 4), AdmmConfig::to_convergence());
        let opt_flow = evaluate(&inst, &near_opt).realized_flow;
        let cfg5 = AdmmConfig {
            rho: 1.0,
            max_iters: 5,
            tol: 0.0,
            serial: false,
        };
        let (from_warm, _) = solver.run(&near_opt, cfg5);
        let warm_flow = evaluate(&inst, &from_warm).realized_flow;
        // Five fine-tuning iterations on a near-optimal warm start must
        // preserve near-optimality (the property §3.4 relies on).
        assert!(
            warm_flow >= 0.90 * opt_flow,
            "warm 5-iter flow {warm_flow} degraded from optimum {opt_flow}"
        );
    }

    #[test]
    fn zero_demand_yields_zero_allocation() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![0.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        let (alloc, _) = solver.run(
            &Allocation::shortest_path(1, 4),
            AdmmConfig::to_convergence(),
        );
        assert!(alloc.splits().iter().all(|&v| v == 0.0));
    }
}

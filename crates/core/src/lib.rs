//! `teal-core`: the paper's primary contribution — Teal, a learning-
//! accelerated WAN traffic engineering scheme (SIGCOMM 2023).
//!
//! Pipeline (Figure 3): traffic demands and link capacities enter
//! [`model::TealModel`]'s FlowGNN (§3.2), whose per-path embeddings feed a
//! shared per-demand policy network (§3.3) trained with the COMA* multi-
//! agent RL algorithm in [`coma`] (Appendix B); the resulting allocation is
//! fine-tuned by a few warm-started ADMM iterations in [`engine`] (§3.4).
//!
//! Supporting modules: [`env`] (per-topology context), [`flowsim`]
//! (incremental reward simulation for counterfactual advantages),
//! [`direct`] (the surrogate-loss ablation), [`ablation`] (naive DNN /
//! naive GNN / global-policy variants, §5.7) and [`tsne`] (Figure 16).
//!
//! # Batched serving architecture
//!
//! The paper's speed claim — "one fixed-cost batch of matrix
//! multiplications plus a few ADMM iterations" — is realized here as an
//! explicit batch dimension through the whole serving data path:
//!
//! * **Batch shapes.** [`Env::batch_input`] stacks a minibatch of traffic
//!   matrices as vertical per-matrix blocks: `path_init` is
//!   `[batch * num_paths, 1]` and `edge_init` is `[batch * num_edges, 1]`
//!   ([`ModelInput::batch`] records the count; `batch == 1` is exactly the
//!   single-matrix layout). Dense layers are row-wise and handle the stack
//!   unchanged; message passing applies the incidence operator
//!   block-diagonally (`spmm_batch`), and the per-demand reshape groups
//!   `batch * num_demands` rows. [`PolicyModel::allocate_batch`] turns the
//!   resulting `[batch * D, k]` logits into per-matrix allocations that
//!   match per-matrix [`PolicyModel::allocate_deterministic`] outputs to
//!   within f32 noise (well below 1e-6; property-tested).
//! * **ServingContext lifecycle.** [`ServingContext`] is built once per
//!   topology from a trained model plus an [`teal_lp::AdmmSkeleton`] (the
//!   path-edge incidence index, normalized capacities, and objective
//!   discounts — everything traffic-independent). Serving never rebuilds
//!   per-topology state: each `allocate` mints an O(paths) per-matrix
//!   solver from the shared skeleton, and link-failure overrides swap only
//!   the capacity vector. All methods take `&self`, so one
//!   `Arc<ServingContext>` serves concurrent callers from many threads;
//!   [`TealEngine`] is a thin facade over that `Arc` preserving the
//!   original API.
//! * **Throughput path.** [`ServingContext::allocate_batch`] runs the
//!   forward pass in cache-blocked sub-batches (one set of matrix products
//!   each, tape-free — see `TealModel::infer_mu`) and fine-tunes the whole
//!   window with one batched ADMM sweep ([`teal_lp::AdmmBatchSolver`]):
//!   structure-of-arrays state minted from the shared skeleton, each
//!   iteration a single pass over the incidence index parallelized over
//!   demand/edge × batch tiles on the `teal_nn::pool` workers, with a
//!   per-matrix convergence mask for early stopping. Batched ≡ per-matrix
//!   output is property-tested to 1e-6.
//!   [`ServingContext::try_allocate_batch`] surfaces malformed requests
//!   and poisoned workers as [`AllocError`] values for isolation. The
//!   `throughput` and `admm` Criterion benches in `teal-bench` track the
//!   batched vs. per-matrix-loop margins on B4/SWAN.
//! * **Training.** [`coma::train_coma`] consumes minibatches
//!   (`ComaConfig::batch_size`) with one batched forward/backward pass and
//!   one optimizer step per minibatch; validation scores allocations from
//!   the batched path.
// No raw-pointer or FFI work belongs in this crate; the workspace's
// audited unsafe lives in `teal-nn`/`teal-lp` only (see the root crate's
// unsafe inventory docs).
#![forbid(unsafe_code)]

pub mod ablation;
pub mod coma;
pub mod direct;
pub mod engine;
pub mod env;
pub mod flowsim;
pub mod model;
pub mod tsne;

pub use coma::{train_coma, validate, validate_reward, ComaConfig, TrainReport};
pub use direct::{train_direct, DirectConfig};
pub use engine::{AllocError, BatchScratch, EngineConfig, ServingContext, SolveReport, TealEngine};
pub use env::{Env, ModelInput};
pub use flowsim::FlowSim;
pub use flowsim::RewardKind;
pub use model::{mu_to_allocation, mu_to_allocations, Forward, PolicyModel, TealConfig, TealModel};

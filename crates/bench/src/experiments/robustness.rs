//! Figure 10 — robustness to temporal and spatial demand changes (§5.4).

use super::Harness;
use crate::table::{emit, emit_csv, Table};
use std::sync::Arc;
use teal_lp::Objective;
use teal_sim::{metrics, run_online, LpTopScheme, NcflowScheme, PopScheme, Scheme, TealScheme};
use teal_topology::TopoKind;
use teal_traffic::{spatial_redistribution, temporal_fluctuation};

fn lineup(h: &mut Harness, kind: TopoKind) -> Vec<Box<dyn Scheme>> {
    let engine = h.teal_engine(kind);
    let env = Arc::clone(&h.bed(kind).env);
    vec![
        Box::new(LpTopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(NcflowScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(PopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(TealScheme::new(engine)),
    ]
}

/// Figure 10a: temporal fluctuations scaled 1x/2x/5x/10x/20x. The Teal
/// model is *not* retrained — the point is generalization to unseen
/// dynamics.
pub fn fig10a(h: &mut Harness) {
    let kind = TopoKind::Kdl;
    let interval = h.online_interval(kind);
    let factors = [1.0f64, 2.0, 5.0, 10.0, 20.0];
    let mut t = Table::new(
        "Figure 10a: satisfied demand (%) under temporal fluctuation",
        &["scheme", "1x", "2x", "5x", "10x", "20x"],
    );
    let mut rows_csv = Vec::new();
    let schemes = lineup(h, kind);
    let bed = h.bed(kind);
    let env = Arc::clone(&bed.env);
    let base = bed.test.clone();
    for mut s in schemes {
        let mut cells = vec![s.name().to_string()];
        let mut csv = s.name().to_string();
        for (fi, &f) in factors.iter().enumerate() {
            let tms = if f <= 1.0 {
                base.clone()
            } else {
                temporal_fluctuation(&base, f, fi as u64)
            };
            let res = run_online(&env, env.topo(), &tms, s.as_mut(), interval);
            let m = res.mean_satisfied_pct();
            cells.push(format!("{m:.1}"));
            csv.push_str(&format!(",{m:.2}"));
        }
        t.row(cells);
        rows_csv.push(csv);
    }
    emit("fig10a", &t.render());
    emit_csv("fig10a", "scheme,x1,x2,x5,x10,x20", &rows_csv);
    let _ = metrics::mean(&[]);
}

/// Figure 10b: spatial redistribution — the top decile's share of volume is
/// forced from its natural ~88.4% down to 80/60/40/20%.
pub fn fig10b(h: &mut Harness) {
    let kind = TopoKind::Kdl;
    let interval = h.online_interval(kind);
    let shares = [0.884f64, 0.80, 0.60, 0.40, 0.20];
    let mut t = Table::new(
        "Figure 10b: satisfied demand (%) vs top-decile volume share",
        &["scheme", "88.4%", "80%", "60%", "40%", "20%"],
    );
    let mut rows_csv = Vec::new();
    let schemes = lineup(h, kind);
    let bed = h.bed(kind);
    let env = Arc::clone(&bed.env);
    let base = bed.test.clone();
    for mut s in schemes {
        let mut cells = vec![s.name().to_string()];
        let mut csv = s.name().to_string();
        for &share in &shares {
            let tms = if (share - 0.884).abs() < 1e-9 {
                base.clone()
            } else {
                spatial_redistribution(&base, share)
            };
            let res = run_online(&env, env.topo(), &tms, s.as_mut(), interval);
            let m = res.mean_satisfied_pct();
            cells.push(format!("{m:.1}"));
            csv.push_str(&format!(",{m:.2}"));
        }
        t.row(cells);
        rows_csv.push(csv);
    }
    emit("fig10b", &t.render());
    emit_csv("fig10b", "scheme,s884,s80,s60,s40,s20", &rows_csv);
}

//! Uniform `Scheme` interface over Teal and every baseline, with wall-clock
//! timing — the "computation time" measured throughout §5.

use std::sync::Arc;
use std::time::{Duration, Instant};
use teal_baselines::{
    solve_lp_top, solve_ncflow, solve_pop, solve_teavar, NcflowConfig, PopConfig, TeavarConfig,
};
use teal_core::{Env, PolicyModel, TealEngine};
use teal_lp::{fleischer, solve_lp, Allocation, LpConfig, Objective, TeInstance};
use teal_topology::Topology;
use teal_traffic::TrafficMatrix;

/// A TE scheme: maps a traffic matrix (on a possibly failure-modified
/// topology) to an allocation, reporting its measured computation time.
pub trait Scheme {
    /// Display name used in tables/figures.
    fn name(&self) -> &str;

    /// Compute an allocation. `topo` carries current capacities (failed
    /// links zeroed); candidate paths are the precomputed ones.
    fn allocate(&mut self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration);

    /// Compute allocations for a batch of matrices, reporting the total
    /// computation time. The default runs the per-matrix path sequentially
    /// and sums the times each call *reports* (so schemes that model their
    /// latency keep consistent timing across the per-matrix and batched
    /// harnesses); schemes with a genuinely batched data path (Teal)
    /// override it with a measured batched run.
    fn allocate_batch(
        &mut self,
        topo: &Topology,
        tms: &[TrafficMatrix],
    ) -> (Vec<Allocation>, Duration) {
        let mut out = Vec::with_capacity(tms.len());
        let mut total = Duration::ZERO;
        for tm in tms {
            let (alloc, dt) = self.allocate(topo, tm);
            total += dt;
            out.push(alloc);
        }
        (out, total)
    }
}

fn timed<F: FnOnce() -> Allocation>(f: F) -> (Allocation, Duration) {
    let t0 = Instant::now();
    let a = f();
    (a, t0.elapsed())
}

/// LP-all: the full path LP (exact simplex on small instances, ADMM to
/// convergence on large ones — our Gurobi substitute).
pub struct LpAllScheme {
    env: Arc<Env>,
    /// Objective to optimize.
    pub objective: Objective,
    /// Solver settings.
    pub cfg: LpConfig,
}

impl LpAllScheme {
    /// LP-all with default settings.
    pub fn new(env: Arc<Env>, objective: Objective) -> Self {
        LpAllScheme {
            env,
            objective,
            cfg: LpConfig::default(),
        }
    }
}

impl Scheme for LpAllScheme {
    fn name(&self) -> &str {
        "LP-all"
    }

    fn allocate(&mut self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        let inst = TeInstance::new(topo, self.env.paths(), tm);
        timed(|| solve_lp(&inst, self.objective, &self.cfg).0)
    }
}

/// LP-top: demand pinning with α = 10%.
pub struct LpTopScheme {
    env: Arc<Env>,
    /// Objective to optimize.
    pub objective: Objective,
    /// Fraction of demands receiving the LP treatment.
    pub alpha: f64,
    /// Solver settings.
    pub cfg: LpConfig,
}

impl LpTopScheme {
    /// The paper's α = 10% configuration.
    pub fn new(env: Arc<Env>, objective: Objective) -> Self {
        LpTopScheme {
            env,
            objective,
            alpha: 0.10,
            cfg: LpConfig::default(),
        }
    }
}

impl Scheme for LpTopScheme {
    fn name(&self) -> &str {
        "LP-top"
    }

    fn allocate(&mut self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        let inst = TeInstance::new(topo, self.env.paths(), tm);
        timed(|| solve_lp_top(&inst, self.objective, self.alpha, &self.cfg))
    }
}

/// NCFlow-like cluster decomposition.
pub struct NcflowScheme {
    env: Arc<Env>,
    /// Objective to optimize.
    pub objective: Objective,
    /// Decomposition settings.
    pub cfg: NcflowConfig,
}

impl NcflowScheme {
    /// Cluster count per the paper's sqrt-scale heuristic.
    pub fn new(env: Arc<Env>, objective: Objective) -> Self {
        let cfg = NcflowConfig::paper_default(env.topo().num_nodes());
        NcflowScheme {
            env,
            objective,
            cfg,
        }
    }
}

impl Scheme for NcflowScheme {
    fn name(&self) -> &str {
        "NCFlow"
    }

    fn allocate(&mut self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        let inst = TeInstance::new(topo, self.env.paths(), tm);
        timed(|| solve_ncflow(&inst, self.objective, &self.cfg))
    }
}

/// POP capacity-split replicas.
pub struct PopScheme {
    env: Arc<Env>,
    /// Objective to optimize.
    pub objective: Objective,
    /// Replica settings.
    pub cfg: PopConfig,
}

impl PopScheme {
    /// Replica count per the paper's topology-size rule.
    pub fn new(env: Arc<Env>, objective: Objective) -> Self {
        let cfg = PopConfig::paper_default(env.topo().name());
        PopScheme {
            env,
            objective,
            cfg,
        }
    }
}

impl Scheme for PopScheme {
    fn name(&self) -> &str {
        "POP"
    }

    fn allocate(&mut self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        let inst = TeInstance::new(topo, self.env.paths(), tm);
        timed(|| solve_pop(&inst, self.objective, &self.cfg))
    }
}

/// TEAVAR*: failure-aware robust allocation (small topologies only).
pub struct TeavarScheme {
    env: Arc<Env>,
    /// Risk settings.
    pub cfg: TeavarConfig,
}

impl TeavarScheme {
    /// Default risk penalty.
    pub fn new(env: Arc<Env>) -> Self {
        TeavarScheme {
            env,
            cfg: TeavarConfig::default(),
        }
    }
}

impl Scheme for TeavarScheme {
    fn name(&self) -> &str {
        "TEAVAR*"
    }

    fn allocate(&mut self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        let inst = TeInstance::new(topo, self.env.paths(), tm);
        timed(|| solve_teavar(&inst, &self.cfg))
    }
}

/// Fleischer's combinatorial approximation (§2.1).
pub struct FleischerScheme {
    env: Arc<Env>,
    /// Accuracy parameter.
    pub epsilon: f64,
    /// Step budget.
    pub max_steps: usize,
}

impl FleischerScheme {
    /// ε = 0.1 with a generous step budget.
    pub fn new(env: Arc<Env>) -> Self {
        FleischerScheme {
            env,
            epsilon: 0.1,
            max_steps: 2_000_000,
        }
    }
}

impl Scheme for FleischerScheme {
    fn name(&self) -> &str {
        "Fleischer"
    }

    fn allocate(&mut self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        let inst = TeInstance::new(topo, self.env.paths(), tm);
        timed(|| fleischer::solve(&inst, self.epsilon, self.max_steps).0)
    }
}

/// Shortest-path-only routing (lower-bound sanity baseline).
pub struct ShortestPathScheme {
    env: Arc<Env>,
}

impl ShortestPathScheme {
    /// Route everything on the first candidate path.
    pub fn new(env: Arc<Env>) -> Self {
        ShortestPathScheme { env }
    }
}

impl Scheme for ShortestPathScheme {
    fn name(&self) -> &str {
        "ShortestPath"
    }

    fn allocate(&mut self, _topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        let env = &self.env;
        timed(|| Allocation::shortest_path(tm.len(), env.k()))
    }
}

/// Teal: one forward pass + warm-started ADMM.
pub struct TealScheme<M: PolicyModel> {
    engine: TealEngine<M>,
}

impl<M: PolicyModel> TealScheme<M> {
    /// Wrap a trained engine.
    pub fn new(engine: TealEngine<M>) -> Self {
        TealScheme { engine }
    }

    /// Access the engine.
    pub fn engine(&self) -> &TealEngine<M> {
        &self.engine
    }
}

impl<M: PolicyModel> Scheme for TealScheme<M> {
    fn name(&self) -> &str {
        "Teal"
    }

    fn allocate(&mut self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        self.engine.allocate_on(topo, tm)
    }

    fn allocate_batch(
        &mut self,
        topo: &Topology,
        tms: &[TrafficMatrix],
    ) -> (Vec<Allocation>, Duration) {
        self.engine.allocate_batch_on(topo, tms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teal_core::{EngineConfig, TealConfig, TealModel};
    use teal_lp::evaluate;
    use teal_topology::b4;

    fn setup() -> (Arc<Env>, TrafficMatrix) {
        let env = Arc::new(Env::for_topology(b4()));
        let tm = TrafficMatrix::new(vec![8.0; env.num_demands()]);
        (env, tm)
    }

    #[test]
    fn all_schemes_produce_feasible_allocations() {
        let (env, tm) = setup();
        let model = TealModel::new(
            Arc::clone(&env),
            TealConfig {
                gnn_layers: 3,
                ..TealConfig::default()
            },
        );
        let engine = TealEngine::new(model, EngineConfig::paper_default(12));
        let mut schemes: Vec<Box<dyn Scheme>> = vec![
            Box::new(LpAllScheme::new(Arc::clone(&env), Objective::TotalFlow)),
            Box::new(LpTopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
            Box::new(NcflowScheme::new(Arc::clone(&env), Objective::TotalFlow)),
            Box::new(PopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
            Box::new(TeavarScheme::new(Arc::clone(&env))),
            Box::new(FleischerScheme::new(Arc::clone(&env))),
            Box::new(ShortestPathScheme::new(Arc::clone(&env))),
            Box::new(TealScheme::new(engine)),
        ];
        for s in &mut schemes {
            let (alloc, dt) = s.allocate(env.topo(), &tm);
            assert!(alloc.demand_feasible(1e-6), "{} infeasible", s.name());
            assert!(dt.as_nanos() > 0, "{} reported zero time", s.name());
            let inst = env.instance(&tm);
            let f = evaluate(&inst, &alloc).realized_flow;
            assert!(f >= 0.0, "{} negative flow", s.name());
        }
    }

    #[test]
    fn teal_batched_scheme_matches_sequential() {
        let (env, _) = setup();
        let model = TealModel::new(
            Arc::clone(&env),
            TealConfig {
                gnn_layers: 3,
                ..TealConfig::default()
            },
        );
        let engine = TealEngine::new(model, EngineConfig::paper_default(12));
        let mut scheme = TealScheme::new(engine);
        let tms: Vec<TrafficMatrix> = (0..4)
            .map(|i| TrafficMatrix::new(vec![6.0 + 11.0 * i as f64; env.num_demands()]))
            .collect();
        let (batched, dt) = scheme.allocate_batch(env.topo(), &tms);
        assert!(dt.as_nanos() > 0);
        for (tm, b) in tms.iter().zip(&batched) {
            let (seq, _) = scheme.allocate(env.topo(), tm);
            for (x, y) in b.splits().iter().zip(seq.splits()) {
                assert!((x - y).abs() <= 1e-6, "batched {x} vs sequential {y}");
            }
        }
    }

    #[test]
    fn lp_all_dominates_shortest_path() {
        let (env, _) = setup();
        // Saturating demands make multipath matter.
        let tm = TrafficMatrix::new(vec![60.0; env.num_demands()]);
        let mut lp = LpAllScheme::new(Arc::clone(&env), Objective::TotalFlow);
        let mut sp = ShortestPathScheme::new(Arc::clone(&env));
        let (a_lp, _) = lp.allocate(env.topo(), &tm);
        let (a_sp, _) = sp.allocate(env.topo(), &tm);
        let inst = env.instance(&tm);
        assert!(
            evaluate(&inst, &a_lp).realized_flow >= evaluate(&inst, &a_sp).realized_flow,
            "LP-all must dominate shortest-path routing"
        );
    }
}

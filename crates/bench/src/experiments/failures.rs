//! Figures 8 and 9 — reaction to link failures.

use super::Harness;
use crate::table::{emit, emit_csv, Table};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;
use teal_lp::Objective;
use teal_sim::{
    metrics, run_failure_interval, LpAllScheme, LpTopScheme, NcflowScheme, PopScheme, Scheme,
    TealScheme, TeavarScheme,
};
use teal_topology::{EdgeId, TopoKind, Topology};

/// Sample `n` distinct bidirectional links and return their directed edge
/// ids (both directions).
fn sample_failed_edges(topo: &Topology, n: usize, seed: u64) -> Vec<EdgeId> {
    let mut links: Vec<(usize, usize)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for e in topo.edges() {
        let key = (e.src.min(e.dst), e.src.max(e.dst));
        if seen.insert(key) {
            links.push(key);
        }
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xfa11);
    links.shuffle(&mut rng);
    let mut edges = Vec::new();
    for &(a, b) in links.iter().take(n) {
        if let Some(e) = topo.find_edge(a, b) {
            edges.push(e);
        }
        if let Some(e) = topo.find_edge(b, a) {
            edges.push(e);
        }
    }
    edges
}

/// Run one failure scenario: compute the pre-failure allocation on the
/// intact topology, fail links, and measure the interval-weighted satisfied
/// demand while the scheme recomputes.
fn failure_pct(
    env: &teal_core::Env,
    scheme: &mut dyn Scheme,
    tm: &teal_traffic::TrafficMatrix,
    failed: &[EdgeId],
    interval: std::time::Duration,
) -> f64 {
    let (pre, _) = scheme.allocate(env.topo(), tm);
    if failed.is_empty() {
        let inst = env.instance(tm);
        return (100.0 * teal_lp::evaluate(&inst, &pre).realized_flow / tm.total().max(1e-12))
            .min(100.0);
    }
    let failed_topo = env.topo().with_failed_edges(failed);
    run_failure_interval(env, &failed_topo, tm, scheme, &pre, interval)
}

/// Figure 8: satisfied demand with 0/1/2 link failures on B4 (including
/// TEAVAR*, which is only viable on this size).
pub fn fig8(h: &mut Harness) {
    let kind = TopoKind::B4;
    let interval = h.online_interval(kind);
    let trials = if h.fast() { 2 } else { 5 };
    let engine = h.teal_engine(kind);
    let bed = h.bed(kind);
    let env = Arc::clone(&bed.env);
    let tm = bed.test[0].clone();

    let mut schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(TeavarScheme::new(Arc::clone(&env))),
        Box::new(NcflowScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(TealScheme::new(engine)),
        Box::new(LpTopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(PopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(LpAllScheme::new(Arc::clone(&env), Objective::TotalFlow)),
    ];

    let mut t = Table::new(
        "Figure 8: satisfied demand (%) with 0/1/2 link failures on B4",
        &["scheme", "no failure", "1 link failure", "2 link failures"],
    );
    let mut rows_csv = Vec::new();
    for s in &mut schemes {
        let mut cells = vec![s.name().to_string()];
        let mut csv = s.name().to_string();
        for nf in [0usize, 1, 2] {
            let mut vals = Vec::new();
            for trial in 0..trials {
                let failed = sample_failed_edges(env.topo(), nf, trial as u64);
                vals.push(failure_pct(&env, s.as_mut(), &tm, &failed, interval));
            }
            let m = metrics::mean(&vals);
            cells.push(format!("{m:.1}"));
            csv.push_str(&format!(",{m:.2}"));
        }
        t.row(cells);
        rows_csv.push(csv);
    }
    emit("fig8", &t.render());
    emit_csv(
        "fig8",
        "scheme,no_failure,one_failure,two_failures",
        &rows_csv,
    );
}

/// Figure 9: many simultaneous failures on the ASN testbed. The paper
/// injects 50/100/200 failures into the 1,739-node ASN; we scale the counts
/// by the testbed's topology scale.
pub fn fig9(h: &mut Harness) {
    let kind = TopoKind::Asn;
    let interval = h.online_interval(kind);
    let trials = if h.fast() { 1 } else { 3 };
    let engine = h.teal_engine(kind);
    let bed = h.bed(kind);
    let env = Arc::clone(&bed.env);
    let tm = bed.test[0].clone();
    let scale = bed.spec.scale;
    let counts: Vec<usize> = [0usize, 50, 100, 200]
        .iter()
        .map(|&c| (c as f64 * scale).round() as usize)
        .collect();

    let mut schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(NcflowScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(PopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(LpTopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(TealScheme::new(engine)),
    ];

    let mut t = Table::new(
        format!(
            "Figure 9: satisfied demand (%) under mass failures on ASN \
             (counts scaled x{scale:.2} from 0/50/100/200)"
        ),
        &[
            "scheme",
            "no failure",
            "~50 failures",
            "~100 failures",
            "~200 failures",
        ],
    );
    let mut rows_csv = Vec::new();
    for s in &mut schemes {
        let mut cells = vec![s.name().to_string()];
        let mut csv = s.name().to_string();
        for (ci, &nf) in counts.iter().enumerate() {
            let mut vals = Vec::new();
            for trial in 0..trials {
                let failed = sample_failed_edges(env.topo(), nf, (ci * 10 + trial) as u64);
                vals.push(failure_pct(&env, s.as_mut(), &tm, &failed, interval));
            }
            let m = metrics::mean(&vals);
            cells.push(format!("{m:.1}"));
            csv.push_str(&format!(",{m:.2}"));
        }
        t.row(cells);
        rows_csv.push(csv);
    }
    emit("fig9", &t.render());
    emit_csv("fig9", "scheme,f0,f50,f100,f200", &rows_csv);
}

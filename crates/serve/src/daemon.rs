//! The transport-agnostic serving core: per-topology dispatch shards, each
//! with its own request queue, micro-batching coalescer, admission control,
//! and ADMM arenas — behind the narrow `submit(SubmitRequest) -> Ticket`
//! API every front end (in-process callers, the TCP [`crate::TealServer`])
//! shares.
//!
//! Concurrent callers [`ServeDaemon::submit`] a [`SubmitRequest`]; the
//! submit path validates it, applies admission control, and routes it to
//! its topology's *shard* — a dedicated dispatcher thread with a private
//! queue — which drains, coalesces, and pushes each batch through
//! [`ServingContext::try_allocate_batch_with`] so unrelated clients'
//! matrices share one set of forward-pass matrix products — the paper's
//! "TE allocation as one fixed-cost batched compute step", turned into a
//! service. On multicore, shards are true parallel lanes: two topologies'
//! windows overlap instead of serializing behind one dispatcher.
//!
//! The hot path is built from commutative operations (requests to
//! different topologies share *no* per-window mutable state, so their
//! dispatch commutes and needs no coordination — and the same holds across
//! *connections* of the wire front end, which all funnel into this one
//! submit path): enqueue appends under a shard-local queue lock held for
//! O(1), each shard snapshots its context from the [`ModelRegistry`] (see
//! its docs), and responses land in per-request slots nobody else touches.
//! There is no lock held across model compute, and no two shards ever
//! share a lock on the hot path.
//!
//! # Admission control and deadlines
//!
//! A request may carry a relative deadline ([`SubmitRequest::deadline`]).
//! Admission control acts at two points:
//!
//! * **At enqueue (shed):** a zero/elapsed budget is refused immediately
//!   with [`ServeError::DeadlineExceeded`], and a deadline'd request
//!   arriving at a full shard queue is refused with
//!   [`ServeError::Overloaded`] instead of blocking (queueing it would
//!   only burn its budget; deadline-less requests keep the classic
//!   blocking backpressure). Sheds count in
//!   [`crate::TelemetrySnapshot::shed`].
//! * **At drain (expire):** when the shard forms a batch, requests whose
//!   deadline passed while queued get [`ServeError::DeadlineExceeded`]
//!   instead of occupying a lane in the forward pass. Expiries count in
//!   [`crate::TelemetrySnapshot::expired`].
//!
//! # Failure-aware requests (§5.3 end to end)
//!
//! A request may carry failed-link overrides. The shard groups each
//! drained window *by override signature* (canonicalized link set): plain
//! requests form the steady-state sub-batch served out of the shard's
//! primary arena — untouched by failure traffic — while each distinct
//! failure scenario forms its own sub-batch served through
//! [`ServingContext::try_allocate_batch_on_with`] against a
//! capacity-overridden topology, out of a second, failure-dedicated
//! arena. A failure window therefore serves *without retraining and
//! without perturbing the steady-state arena* — the paper's
//! failure-recovery path, reachable end to end from a socket.
//!
//! # Shard arena ownership
//!
//! Every shard owns two [`teal_core::BatchScratch`]es: the steady-state
//! arena its plain windows reuse, and a failure arena its override
//! sub-batches reuse (repeated windows on the same degraded topology remint
//! into warmed buffers). Only the shard's dispatcher thread ever touches
//! them. The scratches live in the shard, *not* in the serving context — a
//! hot checkpoint swap replaces the context `Arc` but leaves the shard's
//! arenas (and their warmed-up capacity) untouched, and the next window
//! simply runs against the new weights (swap safety: a scratch carries no
//! weight- or topology-derived state across windows, only buffer capacity).
//!
//! # Shutdown protocol
//!
//! `shutdown` sets the flag, then wakes and joins every shard. Submitters
//! re-check the flag *under the shard's queue lock* — the same lock the
//! shard holds for its final is-empty check — so a request is either
//! enqueued before the shard's last drain (and served) or observes the
//! flag and gets [`ServeError::ShuttingDown`]. A post-join sweep fails any
//! conceivable straggler rather than stranding its ticket.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use teal_core::{AllocError, BatchScratch, PolicyModel, ServingContext};
use teal_topology::Topology;
use teal_traffic::TrafficMatrix;

use crate::registry::ModelRegistry;
use crate::request::{ResponseSlot, ServeError, ServeReply, SubmitRequest, Ticket};
use crate::telemetry::{ShardStats, StageTimings, Telemetry, TelemetrySnapshot, Trace};

/// One queued request (its topology is implied by the shard holding it).
struct Request {
    tm: TrafficMatrix,
    /// Stage trace, stamped at enqueue; the shard stamps drain/solve spans
    /// as the request moves through the pipeline.
    trace: Trace,
    /// Absolute expiry minted from [`SubmitRequest::deadline`] at enqueue.
    expires: Option<Instant>,
    /// Canonical failed-link override set; empty = steady-state path.
    signature: Vec<(usize, usize)>,
    slot: Arc<ResponseSlot>,
}

/// Daemon tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Matrices per coalesced `allocate_batch` call. Larger batches
    /// amortize more per-pass overhead but add queueing delay for the
    /// requests at the front.
    pub max_batch: usize,
    /// After the first request of a drain arrives, linger this long for
    /// stragglers before dispatching (micro-batching window). Zero
    /// dispatches immediately.
    pub linger: Duration,
    /// Per-shard queue bound. Deadline-less submitters block once this many
    /// requests are waiting for one topology (backpressure instead of
    /// unbounded memory growth); deadline'd requests are shed instead.
    pub queue_capacity: usize,
    /// Cap on pool threads (submitting dispatcher + helpers) each shard may
    /// use for its ADMM tiles and forward-pass kernels. `None` = share the
    /// whole `teal_nn::pool`. Set this when topology counts grow past core
    /// counts so shards degrade into roughly-even lanes instead of
    /// thrashing the pool.
    pub shard_threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            linger: Duration::from_micros(200),
            queue_capacity: 1024,
            shard_threads: None,
        }
    }
}

/// One topology's dispatch lane: private queue, condvars, and telemetry
/// slot. The shard's dispatcher thread additionally owns two
/// [`BatchScratch`]es (thread-local by construction — they live on the
/// dispatcher's stack and are never shared).
struct Shard {
    topology: String,
    queue: Mutex<VecDeque<Request>>,
    /// Signals the shard dispatcher that work (or shutdown) is pending.
    nonempty: Condvar,
    /// Signals submitters that queue space freed up.
    space: Condvar,
    /// This shard's telemetry slot (also registered in the global
    /// [`Telemetry`] for snapshots).
    stats: Arc<Mutex<ShardStats>>,
}

/// A shard plus its dispatcher thread handle (held by the daemon for
/// joining at shutdown).
struct ShardHandle {
    shard: Arc<Shard>,
    thread: std::thread::JoinHandle<()>,
}

/// Shared state between submitters and the shard dispatchers.
struct Inner<M: PolicyModel> {
    registry: ModelRegistry<M>,
    cfg: ServeConfig,
    /// Topology id → dispatch shard, created lazily on first submit.
    /// Locked only to route a request (a map read) or create a shard —
    /// never across compute.
    shards: Mutex<HashMap<String, ShardHandle>>,
    shutdown: AtomicBool,
    telemetry: Telemetry,
}

/// The long-running TE serving core (see module docs). Transport front
/// ends ([`crate::TealServer`]) and in-process callers share this object.
pub struct ServeDaemon<M: PolicyModel + Send + Sync + 'static> {
    inner: Arc<Inner<M>>,
}

impl<M: PolicyModel + Send + Sync + 'static> ServeDaemon<M> {
    /// Start the daemon over `registry` (which may be empty; topologies can
    /// be registered and swapped while serving). Shards spawn lazily: the
    /// first request for a registered topology brings up its dispatch lane.
    pub fn start(registry: ModelRegistry<M>, cfg: ServeConfig) -> Self {
        ServeDaemon {
            inner: Arc::new(Inner {
                registry,
                cfg,
                shards: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
                telemetry: Telemetry::default(),
            }),
        }
    }

    /// Start with default tuning.
    pub fn with_defaults(registry: ModelRegistry<M>) -> Self {
        Self::start(registry, ServeConfig::default())
    }

    /// The topology/model registry (register or hot-swap while serving).
    pub fn registry(&self) -> &ModelRegistry<M> {
        &self.inner.registry
    }

    /// A consistent copy of the serving statistics.
    pub fn stats(&self) -> TelemetrySnapshot {
        self.inner.telemetry.snapshot()
    }

    /// The shard for `topology`, creating it (and its dispatcher thread) on
    /// first use. `None` when the daemon is shutting down — checked under
    /// the shard-map lock, so no shard can appear after [`Self::shutdown`]
    /// has collected the map.
    fn shard(&self, topology: &str) -> Option<Arc<Shard>> {
        let mut map = self.inner.shards.lock().expect("shard map lock");
        if self.inner.shutdown.load(Ordering::Acquire) {
            return None;
        }
        if let Some(h) = map.get(topology) {
            return Some(Arc::clone(&h.shard));
        }
        let shard = Arc::new(Shard {
            topology: topology.to_string(),
            queue: Mutex::new(VecDeque::new()),
            nonempty: Condvar::new(),
            space: Condvar::new(),
            stats: self.inner.telemetry.shard_stats(topology),
        });
        let thread = {
            let inner = Arc::clone(&self.inner);
            let shard = Arc::clone(&shard);
            std::thread::Builder::new()
                .name(format!("teal-serve-{topology}"))
                .spawn(move || shard_loop(&inner, &shard))
                .expect("spawn shard dispatcher")
        };
        map.insert(
            topology.to_string(),
            ShardHandle {
                shard: Arc::clone(&shard),
                thread,
            },
        );
        Some(shard)
    }

    /// Enqueue a request; returns a [`Ticket`] immediately. Blocks only
    /// when the topology's shard queue is at capacity *and* the request
    /// carries no deadline (backpressure); deadline'd requests are shed
    /// instead of queued late (see the module docs' admission-control
    /// section).
    pub fn submit(&self, req: SubmitRequest) -> Ticket {
        let slot = ResponseSlot::new();
        self.submit_on(req, Arc::clone(&slot));
        Ticket::new(slot)
    }

    /// [`ServeDaemon::submit`] into a caller-provided response slot — the
    /// hook the wire front end uses so it can register the slot in its
    /// reply map *before* any fulfillment (including synchronous submit
    /// errors) can fire.
    pub(crate) fn submit_on(&self, req: SubmitRequest, slot: Arc<ResponseSlot>) {
        if self.inner.shutdown.load(Ordering::Acquire) {
            slot.fulfill(Err(ServeError::ShuttingDown));
            return;
        }
        // Route by topology. Unknown ids fail here instead of spawning a
        // dispatch lane per typo'd request.
        let Some(ctx) = self.inner.registry.get(&req.topology) else {
            slot.fulfill(Err(ServeError::UnknownTopology(req.topology)));
            return;
        };
        // Validate the failure overrides against the serving topology up
        // front: a typo'd link must be a per-request error, not a silent
        // no-op override (or a whole-group BadTopology later).
        let signature = req.override_signature();
        let topo = ctx.env().topo();
        for &(a, b) in &signature {
            if a >= topo.num_nodes()
                || b >= topo.num_nodes()
                || (topo.find_edge(a, b).is_none() && topo.find_edge(b, a).is_none())
            {
                slot.fulfill(Err(ServeError::BadRequest(format!(
                    "failed link {a}-{b} does not exist in topology {:?}",
                    req.topology
                ))));
                return;
            }
        }
        let Some(shard) = self.shard(&req.topology) else {
            slot.fulfill(Err(ServeError::ShuttingDown));
            return;
        };
        let now = Instant::now();
        // Shed a request whose budget is already gone: enqueueing it could
        // only produce a stale allocation nobody will apply.
        if req.deadline.is_some_and(|d| d.is_zero()) {
            self.inner.telemetry.on_shed();
            slot.fulfill(Err(ServeError::DeadlineExceeded));
            return;
        }
        let request = Request {
            tm: req.tm,
            trace: Trace::at(now),
            expires: req.deadline.map(|d| now + d),
            signature,
            slot: Arc::clone(&slot),
        };
        {
            let mut q = shard.queue.lock().expect("queue lock");
            if request.expires.is_some() && q.len() >= self.inner.cfg.queue_capacity {
                // Admission control: a deadline'd request meeting a full
                // queue is refused *now* — blocking would silently convert
                // its budget into queueing delay.
                drop(q);
                self.inner.telemetry.on_shed();
                slot.fulfill(Err(ServeError::Overloaded(format!(
                    "shard {:?} queue full ({} waiting)",
                    shard.topology, self.inner.cfg.queue_capacity
                ))));
                return;
            }
            while q.len() >= self.inner.cfg.queue_capacity
                && !self.inner.shutdown.load(Ordering::Acquire)
            {
                q = shard.space.wait(q).expect("queue wait");
            }
            // Checked under the queue lock: the shard's final
            // drain-or-exit decision holds this same lock, so either this
            // push lands before that drain (and is served) or the flag is
            // visible here and the request is refused — never enqueued
            // after the last drain and dropped (the submit/shutdown race).
            if self.inner.shutdown.load(Ordering::Acquire) {
                drop(q);
                slot.fulfill(Err(ServeError::ShuttingDown));
                return;
            }
            q.push_back(request);
            self.inner.telemetry.on_enqueue();
        }
        shard.nonempty.notify_one();
    }

    /// Submit a plain request and block for the reply (convenience for
    /// synchronous callers).
    pub fn allocate(
        &self,
        topology: impl Into<String>,
        tm: TrafficMatrix,
    ) -> Result<ServeReply, ServeError> {
        self.submit(SubmitRequest::new(topology, tm)).wait()
    }

    /// Stop accepting requests, serve everything already queued on every
    /// shard, and join the shard dispatchers. Idempotent, callable from any
    /// thread (even concurrently with submitters); also runs on drop.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Collect the shard map first: creation re-checks the flag under
        // this lock, so no new shard can appear afterwards.
        let handles: Vec<ShardHandle> = {
            let mut map = self.inner.shards.lock().expect("shard map lock");
            map.drain().map(|(_, h)| h).collect()
        };
        for h in &handles {
            h.shard.nonempty.notify_all();
            h.shard.space.notify_all();
        }
        for h in handles {
            h.thread.join().expect("shard dispatcher panicked");
            // Safety net: the queue-lock protocol above means the shard
            // exits only with an empty queue, but a stranded ticket would
            // hang its client forever — sweep and refuse rather than trust.
            let mut q = h.shard.queue.lock().expect("queue lock");
            let leftover: Vec<Request> = q.drain(..).collect();
            drop(q);
            if !leftover.is_empty() {
                self.inner.telemetry.on_drain(leftover.len());
            }
            for req in leftover {
                self.inner.telemetry.on_error();
                req.slot.fulfill(Err(ServeError::ShuttingDown));
            }
        }
    }
}

impl<M: PolicyModel + Send + Sync + 'static> Drop for ServeDaemon<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One shard's dispatcher: drain the shard queue, coalesce, serve through
/// the shard-owned arenas, repeat until shutdown drains it dry.
fn shard_loop<M: PolicyModel>(inner: &Inner<M>, shard: &Shard) {
    // The shard's private ADMM arenas (see module docs for ownership
    // rules): one for the steady-state path, one for failure overrides so
    // a failure burst never disturbs the steady arena's warmed state.
    let mut scratch = BatchScratch::new();
    let mut failure_scratch = BatchScratch::new();
    // Failure scenarios this shard has already built the overridden
    // topology for: a sustained burst on one degraded topology must not
    // pay a topology clone + rebuild per window. Keyed by the `Env` whose
    // topology the overrides were derived from — holding the `Arc` both
    // detects a registry swap to a different environment (cache cleared)
    // and makes pointer comparison ABA-safe; hot checkpoint swaps keep the
    // env, so the cache survives them.
    let mut overrides = OverrideCache {
        env: None,
        topos: HashMap::new(),
    };
    loop {
        let drained = {
            let mut q = shard.queue.lock().expect("queue lock");
            while q.is_empty() && !inner.shutdown.load(Ordering::Acquire) {
                q = shard.nonempty.wait(q).expect("queue wait");
            }
            if q.is_empty() {
                // Shutdown with an empty queue: done. This decision is made
                // under the queue lock — see `submit_on` for why no request
                // can slip in afterwards.
                return;
            }
            // Micro-batching window: once work exists, linger briefly so
            // concurrent submitters can pile on and share the forward pass.
            if !inner.cfg.linger.is_zero() {
                let deadline = Instant::now() + inner.cfg.linger;
                while q.len() < inner.cfg.max_batch && !inner.shutdown.load(Ordering::Acquire) {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = shard
                        .nonempty
                        .wait_timeout(q, deadline - now)
                        .expect("queue wait");
                    q = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            let drained: Vec<Request> = q.drain(..).collect();
            inner.telemetry.on_drain(drained.len());
            drop(q);
            shard.space.notify_all();
            drained
        };
        // Per-shard thread cap: bind the pool fan-out of everything this
        // window computes (forward-pass kernels and ADMM tiles alike) from
        // this, the submitting thread.
        match inner.cfg.shard_threads {
            Some(cap) => teal_nn::pool::with_thread_cap(cap, || {
                serve_drained(
                    inner,
                    shard,
                    &mut scratch,
                    &mut failure_scratch,
                    &mut overrides,
                    drained,
                );
            }),
            None => serve_drained(
                inner,
                shard,
                &mut scratch,
                &mut failure_scratch,
                &mut overrides,
                drained,
            ),
        }
    }
}

/// Per-shard cache of failure-overridden topologies (see `shard_loop`).
struct OverrideCache {
    /// The environment the cached topologies were derived from.
    env: Option<Arc<teal_core::Env>>,
    /// Canonical failure signature → prebuilt overridden topology.
    topos: HashMap<Vec<(usize, usize)>, Topology>,
}

/// Most distinct failure scenarios a shard caches topologies for. Failure
/// signatures are client-chosen (up to 2^links valid combinations), so an
/// unbounded cache would let a hostile wire client grow server memory
/// without limit; at the cap the cache is simply reset — a live burst
/// re-caches its scenario on the next window at one rebuild's cost.
const MAX_CACHED_OVERRIDES: usize = 32;

impl OverrideCache {
    /// The overridden topology for `sig`, built (and cached) on first use
    /// against `env`'s base topology.
    fn get(&mut self, env: &Arc<teal_core::Env>, sig: &[(usize, usize)]) -> &Topology {
        if !self.env.as_ref().is_some_and(|e| Arc::ptr_eq(e, env)) {
            self.topos.clear();
            self.env = Some(Arc::clone(env));
        }
        if !self.topos.contains_key(sig) && self.topos.len() >= MAX_CACHED_OVERRIDES {
            self.topos.clear();
        }
        self.topos.entry(sig.to_vec()).or_insert_with(|| {
            let mut topo = env.topo().clone();
            for &(a, b) in sig {
                topo = topo.with_failed_link(a, b);
            }
            topo
        })
    }
}

/// Serve one drained queue segment: expire stale requests, split the rest
/// into the steady-state sub-batch and one sub-batch per failure-override
/// signature, and push each through the batched path in `max_batch`-sized
/// chunks against one context snapshot.
fn serve_drained<M: PolicyModel>(
    inner: &Inner<M>,
    shard: &Shard,
    scratch: &mut BatchScratch,
    failure_scratch: &mut BatchScratch,
    overrides: &mut OverrideCache,
    drained: Vec<Request>,
) {
    // One context snapshot per drain: every request in it is served by the
    // same weights even if a hot swap lands mid-drain.
    let Some(ctx) = inner.registry.get(&shard.topology) else {
        for req in drained {
            // Count before unblocking, like every other reply path: a
            // client that has its reply always sees itself in `stats()`.
            inner.telemetry.on_error();
            req.slot
                .fulfill(Err(ServeError::UnknownTopology(shard.topology.clone())));
        }
        return;
    };
    // Admission control, drain side: a request whose deadline lapsed while
    // queued must not occupy a lane in the forward pass — its caller has
    // already moved on.
    let now = Instant::now();
    let mut live = Vec::with_capacity(drained.len());
    for mut req in drained {
        if req.expires.is_some_and(|e| e <= now) {
            inner.telemetry.on_expired();
            req.slot.fulfill(Err(ServeError::DeadlineExceeded));
        } else {
            // Coalesce stamp: queue-wait ends here for everything served
            // out of this drain.
            req.trace.stamp_drained(now);
            live.push(req);
        }
    }
    // Group by override signature, preserving arrival order within each
    // group. The empty signature — the steady-state path — is always group
    // 0 and is served out of the shard's primary arena; each failure
    // scenario gets its own coalesced sub-batch on the failure arena.
    type SignatureGroup = (Vec<(usize, usize)>, Vec<Request>);
    let mut groups: Vec<SignatureGroup> = vec![(Vec::new(), Vec::new())];
    for req in live {
        match groups.iter_mut().find(|(sig, _)| *sig == req.signature) {
            Some((_, g)) => g.push(req),
            None => groups.push((req.signature.clone(), vec![req])),
        }
    }
    for (sig, mut requests) in groups {
        if requests.is_empty() {
            continue;
        }
        let (override_topo, group_scratch) = if sig.is_empty() {
            (None, &mut *scratch)
        } else {
            (Some(overrides.get(ctx.env(), &sig)), &mut *failure_scratch)
        };
        while !requests.is_empty() {
            let take = requests.len().min(inner.cfg.max_batch.max(1));
            let chunk: Vec<Request> = requests.drain(..take).collect();
            serve_chunk(inner, shard, group_scratch, &ctx, override_topo, chunk);
        }
    }
}

/// Serve one coalesced chunk (plain or failure-overridden), isolating
/// faults without losing batching. The engine's [`AllocError::BadRequest`]
/// names the offending request, so only that one is failed and the
/// remainder is re-batched in a single pass — one malformed matrix must not
/// serialize (or error) 31 innocent requests. A poisoned worker is a
/// *server* fault: the chunk gets a retryable [`ServeError::Internal`],
/// never `BadRequest`. `catch_unwind` stays as a last line of defense
/// against panics the engine does not classify, degrading to per-request
/// serving.
fn serve_chunk<M: PolicyModel>(
    inner: &Inner<M>,
    shard: &Shard,
    scratch: &mut BatchScratch,
    ctx: &Arc<ServingContext<M>>,
    override_topo: Option<&Topology>,
    mut chunk: Vec<Request>,
) {
    let allocate = |tms: &[TrafficMatrix], scratch: &mut BatchScratch| match override_topo {
        Some(topo) => ctx.try_allocate_batch_on_with(topo, tms, scratch),
        None => ctx.try_allocate_batch_with(tms, scratch),
    };
    // Cloned once; evictions below remove the matching entry instead of
    // re-cloning the whole remainder each retry.
    let mut tms: Vec<TrafficMatrix> = chunk.iter().map(|r| r.tm.clone()).collect();
    while !chunk.is_empty() {
        // Solve span: forward pass + ADMM fine-tuning for this attempt. A
        // re-batch after a bad-request eviction restamps — the successful
        // attempt is the one whose span is reported.
        let solve_start = Instant::now();
        for r in chunk.iter_mut() {
            r.trace.stamp_solve_start(solve_start);
        }
        let batched =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| allocate(&tms, scratch)));
        let solve_end = Instant::now();
        for r in chunk.iter_mut() {
            r.trace.stamp_solve_end(solve_end);
        }
        match batched {
            // A model whose allocate_batch drops or invents results would
            // silently strand zipped-out clients on their slots forever;
            // fail the whole chunk loudly instead.
            Ok(Ok((allocs, _))) if allocs.len() != chunk.len() => {
                let got = allocs.len();
                for req in chunk {
                    inner.telemetry.on_error();
                    req.slot.fulfill(Err(ServeError::Internal(format!(
                        "model returned {got} allocations for a batch of {}",
                        tms.len()
                    ))));
                }
                return;
            }
            Ok(Ok((allocs, _))) => {
                let batch_size = chunk.len();
                // One reply-write stamp for the whole chunk: per-stage
                // spans and the end-to-end latency are derived from the
                // same instant so the stages always sum to the total.
                let solve = scratch.solve_report();
                let done = Instant::now();
                let latencies: Vec<Duration> = chunk
                    .iter()
                    .map(|r| done.saturating_duration_since(r.trace.enqueued()))
                    .collect();
                let stages: Vec<StageTimings> =
                    chunk.iter().map(|r| r.trace.stages(done)).collect();
                // Count the batch before unblocking any client, so a caller
                // that has its reply always sees itself in `stats()`.
                shard.stats.lock().expect("telemetry lock").record_batch(
                    &latencies,
                    &stages,
                    solve.as_ref(),
                );
                inner.telemetry.on_complete(latencies.len() as u64);
                for (((req, allocation), latency), stages) in
                    chunk.into_iter().zip(allocs).zip(latencies).zip(stages)
                {
                    req.slot.fulfill(Ok(ServeReply {
                        allocation,
                        latency,
                        stages,
                        batch_size,
                    }));
                }
                return;
            }
            Ok(Err(AllocError::BadRequest { index, reason })) if index < chunk.len() => {
                // Evict only the named offender; loop to re-batch the rest.
                let req = chunk.remove(index);
                tms.remove(index);
                inner.telemetry.on_error();
                req.slot.fulfill(Err(ServeError::BadRequest(reason)));
            }
            Ok(Err(e)) => {
                for req in chunk {
                    inner.telemetry.on_error();
                    req.slot.fulfill(Err(ServeError::Internal(e.to_string())));
                }
                return;
            }
            Err(_) => {
                for mut req in chunk {
                    req.trace.stamp_solve_start(Instant::now());
                    let one = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        allocate(std::slice::from_ref(&req.tm), scratch)
                    }));
                    req.trace.stamp_solve_end(Instant::now());
                    match one {
                        Ok(Ok((mut allocs, _))) if allocs.len() == 1 => {
                            let allocation = allocs.pop().expect("len checked");
                            let solve = scratch.solve_report();
                            let done = Instant::now();
                            let latency = done.saturating_duration_since(req.trace.enqueued());
                            let stages = req.trace.stages(done);
                            shard.stats.lock().expect("telemetry lock").record_batch(
                                &[latency],
                                &[stages],
                                solve.as_ref(),
                            );
                            inner.telemetry.on_complete(1);
                            req.slot.fulfill(Ok(ServeReply {
                                allocation,
                                latency,
                                stages,
                                batch_size: 1,
                            }));
                        }
                        Ok(Ok(_)) => {
                            inner.telemetry.on_error();
                            req.slot.fulfill(Err(ServeError::Internal(
                                "model returned a misaligned singleton batch".into(),
                            )));
                        }
                        Ok(Err(AllocError::BadRequest { reason, .. })) => {
                            inner.telemetry.on_error();
                            req.slot.fulfill(Err(ServeError::BadRequest(reason)));
                        }
                        Ok(Err(e)) => {
                            inner.telemetry.on_error();
                            req.slot.fulfill(Err(ServeError::Internal(e.to_string())));
                        }
                        Err(_) => {
                            inner.telemetry.on_error();
                            req.slot.fulfill(Err(ServeError::Internal(format!(
                                "allocation panicked for topology {:?} \
                                 (matrix of {} demands)",
                                shard.topology,
                                req.tm.len()
                            ))));
                        }
                    }
                }
                return;
            }
        }
    }
}

//! LP-top — the "demand pinning" heuristic (§5.1, citing Namyar et al.).
//!
//! "It allocates the top α% of demands using an LP solver and assigns the
//! remaining demands to the shortest paths. ... we set α = 10 after testing
//! multiple values. In our traffic trace, the top 10% of demands account
//! for a vast majority (88.4%) of the total volume."
//!
//! The LP model must be rebuilt every interval because the top-decile set
//! changes with the traffic matrix — the "model rebuilding time" charged to
//! LP-top in Table 2 (and the reason LP-all can be *faster* than LP-top on
//! the MLU objective, §5.5).

use teal_lp::{solve_lp, Allocation, LpConfig, Objective, TeInstance};
use teal_traffic::TrafficMatrix;

/// Compute the LP-top allocation: LP over the top `alpha` fraction of
/// demands (with everything else pinned to its shortest path and consuming
/// capacity there), shortest path for the rest.
pub fn solve_lp_top(inst: &TeInstance, obj: Objective, alpha: f64, cfg: &LpConfig) -> Allocation {
    let k = inst.k();
    let nd = inst.num_demands();
    let top: Vec<usize> = inst.tm.top_indices(alpha);
    let top_set: std::collections::HashSet<usize> = top.iter().copied().collect();

    // Start from shortest-path routing for everyone.
    let mut alloc = Allocation::shortest_path(nd, k);

    // Residual capacities after pinning the non-top demands: the LP for the
    // top demands must respect what the pinned demands already consume.
    let mut residual = inst.topo.capacities();
    for d in 0..nd {
        if top_set.contains(&d) {
            continue;
        }
        let vol = inst.tm.demand(d);
        if vol <= 0.0 {
            continue;
        }
        for &e in &inst.paths.paths_for(d)[0].edges {
            residual[e] = (residual[e] - vol).max(0.0);
        }
    }

    // Build a reduced instance containing only the top demands ("model
    // rebuilding" — this work recurs every interval). The reduced topology
    // carries the residual capacities left by the pinned demands.
    let reduced_topo = inst.topo.with_capacities(&residual);
    let top_vols: Vec<f64> = top.iter().map(|&d| inst.tm.demand(d)).collect();
    // Reuse the already-computed candidate paths for the top demands rather
    // than recomputing shortest paths.
    let top_paths = subset_paths(inst, &top);
    let top_tm = TrafficMatrix::new(top_vols);
    let top_inst = TeInstance::new(&reduced_topo, &top_paths, &top_tm);
    let (top_alloc, _) = solve_lp(&top_inst, obj, cfg);

    for (i, &d) in top.iter().enumerate() {
        alloc.set_demand_splits(d, top_alloc.demand_splits(i));
    }
    alloc
}

/// A `PathSet` view containing only the selected demands' paths.
fn subset_paths(inst: &TeInstance, selected: &[usize]) -> teal_topology::PathSet {
    let pairs: Vec<(usize, usize)> = selected.iter().map(|&d| inst.paths.pairs()[d]).collect();
    // PathSet::compute would re-run Yen's; we instead rebuild from the
    // existing paths via the public constructor path — recompute is the
    // simple, correct option here and the cost is charged to LP-top as
    // model rebuilding.
    teal_topology::PathSet::compute(inst.topo, &pairs, inst.k())
}

#[cfg(test)]
mod tests {
    use super::*;
    use teal_lp::evaluate;
    use teal_topology::{b4, PathSet};

    #[test]
    fn lp_top_close_to_lp_all_under_heavy_tail() {
        let topo = b4();
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        // Heavy-tailed demands: a few dominate.
        let demands: Vec<f64> = (0..pairs.len())
            .map(|i| if i % 13 == 0 { 120.0 } else { 0.8 })
            .collect();
        let tm = TrafficMatrix::new(demands);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let cfg = LpConfig::default();
        let full = solve_lp(&inst, Objective::TotalFlow, &cfg).0;
        let top = solve_lp_top(&inst, Objective::TotalFlow, 0.10, &cfg);
        let f_full = evaluate(&inst, &full).realized_flow;
        let f_top = evaluate(&inst, &top).realized_flow;
        assert!(
            f_top > 0.85 * f_full,
            "lp-top {f_top} too far below lp-all {f_full} on heavy-tailed traffic"
        );
    }

    #[test]
    fn non_top_demands_are_pinned_to_shortest() {
        let topo = b4();
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        let demands: Vec<f64> = (0..pairs.len())
            .map(|i| if i == 0 { 500.0 } else { 1.0 })
            .collect();
        let tm = TrafficMatrix::new(demands);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let alloc = solve_lp_top(&inst, Objective::TotalFlow, 0.02, &LpConfig::default());
        // Some non-top demand: splits must be exactly shortest-path.
        let top = tm.top_indices(0.02);
        for d in 0..pairs.len() {
            if !top.contains(&d) {
                let s = alloc.demand_splits(d);
                assert_eq!(s[0], 1.0, "demand {d} not pinned");
                assert!(s[1..].iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn respects_demand_feasibility() {
        let topo = b4();
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![10.0; pairs.len()]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let alloc = solve_lp_top(&inst, Objective::TotalFlow, 0.10, &LpConfig::default());
        assert!(alloc.demand_feasible(1e-6));
    }
}

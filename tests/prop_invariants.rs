//! Property-based tests (proptest) on the core invariants of the TE stack.

use proptest::prelude::*;

use teal::core::{Env, FlowSim, PolicyModel, TealConfig, TealModel};
use teal::lp::simplex::{self, Row, SimplexStatus};
use teal::lp::{evaluate, pathlp, AdmmConfig, AdmmSolver, Allocation, Objective, TeInstance};
use teal::nn::{Graph, Tensor};
use teal::topology::{generate, PathSet, TopoKind, Topology};
use teal::traffic::TrafficMatrix;

/// A small random connected topology for property tests.
fn random_topo(seed: u64, n: usize) -> Topology {
    // Ring + chords keeps it connected and gives path diversity.
    let mut t = Topology::new("prop", n);
    for i in 0..n {
        t.add_link(i, (i + 1) % n, 50.0 + (seed % 7) as f64 * 10.0, 1.0);
    }
    let mut s = seed;
    for _ in 0..n / 2 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (s >> 16) as usize % n;
        let b = (s >> 32) as usize % n;
        if a != b && !t.has_link(a, b) {
            t.add_link(a, b, 40.0, 1.5);
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simplex solution always satisfies every constraint and never
    /// loses to the origin.
    #[test]
    fn simplex_feasible_and_signed(seed in 0u64..500) {
        let n = 3 + (seed % 4) as usize;
        let mut s = seed;
        let mut next = || { s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493); (s >> 33) as f64 / (1u64 << 31) as f64 };
        let c: Vec<f64> = (0..n).map(|_| next() * 4.0 - 1.0).collect();
        let mut rows: Vec<Row> = (0..n).map(|j| Row { coeffs: vec![(j, 1.0)], rhs: 3.0 }).collect();
        rows.push(Row { coeffs: (0..n).map(|j| (j, 1.0 + next())).collect(), rhs: 2.0 + next() * 4.0 });
        let r = simplex::solve(&c, &rows, 10_000);
        prop_assert_eq!(r.status, SimplexStatus::Optimal);
        prop_assert!(r.objective >= -1e-9, "optimum below origin value");
        for row in &rows {
            let lhs: f64 = row.coeffs.iter().map(|&(j, v)| v * r.x[j]).sum();
            prop_assert!(lhs <= row.rhs + 1e-6);
        }
        for x in &r.x { prop_assert!(*x >= -1e-9); }
    }

    /// Projection onto the demand simplex is idempotent and feasible.
    #[test]
    fn projection_idempotent(splits in proptest::collection::vec(-2.0f64..3.0, 16)) {
        let mut a = Allocation::from_splits(4, splits);
        a.project_demand_constraints();
        prop_assert!(a.demand_feasible(1e-9));
        let once = a.clone();
        a.project_demand_constraints();
        // Idempotent up to floating-point rescaling noise.
        for (x, y) in a.splits().iter().zip(once.splits()) {
            prop_assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    /// The probability-simplex projection returns a point on the simplex.
    #[test]
    fn simplex_projection_on_simplex(v in proptest::collection::vec(-5.0f64..5.0, 1..8)) {
        let mut x = v;
        pathlp::project_simplex(&mut x);
        let sum: f64 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        prop_assert!(x.iter().all(|u| *u >= -1e-12));
    }

    /// Realized flow never exceeds intended flow or total demand, and
    /// scaling all demands down never decreases the satisfied fraction.
    #[test]
    fn flow_semantics_bounds(seed in 0u64..200, volume in 1.0f64..200.0) {
        let topo = random_topo(seed, 6);
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![volume; pairs.len()]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let mut alloc = Allocation::shortest_path(pairs.len(), 4);
        for d in 0..pairs.len() {
            alloc.set_demand_splits(d, &[0.4, 0.3, 0.2, 0.1]);
        }
        let stats = evaluate(&inst, &alloc);
        prop_assert!(stats.realized_flow <= stats.intended_flow + 1e-9);
        prop_assert!(stats.realized_flow <= stats.total_demand + 1e-9);
        prop_assert!(stats.satisfied_pct() <= 100.0 + 1e-9);

        let tm_small = TrafficMatrix::new(vec![volume * 0.25; pairs.len()]);
        let inst_small = TeInstance::new(&topo, &paths, &tm_small);
        let small = evaluate(&inst_small, &alloc);
        prop_assert!(small.satisfied_pct() >= stats.satisfied_pct() - 1e-6,
            "lighter load reduced satisfaction: {} vs {}", small.satisfied_pct(), stats.satisfied_pct());
    }

    /// ADMM output is always demand-feasible, and fine-tuning a feasible
    /// warm start keeps the objective within a sane band.
    #[test]
    fn admm_output_feasible(seed in 0u64..100, volume in 10.0f64..300.0) {
        let topo = random_topo(seed, 5);
        let pairs: Vec<(usize, usize)> = vec![(0, 2), (1, 3), (4, 0)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![volume, volume * 0.5, volume * 0.25]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        let (out, rep) = solver.run(
            &Allocation::zeros(3, 4),
            AdmmConfig { rho: 1.0, max_iters: 200, tol: 1e-4, serial: false },
        );
        prop_assert!(out.demand_feasible(1e-6));
        prop_assert!(rep.primal_residual.is_finite());
        let flow = evaluate(&inst, &out).realized_flow;
        prop_assert!(flow >= 0.0 && flow <= tm.total() + 1e-6);
    }

    /// Yen's paths are simple, weight-ordered, and connect the endpoints.
    #[test]
    fn yen_paths_invariants(seed in 0u64..300) {
        let topo = random_topo(seed, 7);
        let s = (seed % 7) as usize;
        let t = ((seed / 7) % 7) as usize;
        prop_assume!(s != t);
        let paths = teal::topology::k_shortest_paths(&topo, s, t, 4);
        prop_assert!(!paths.is_empty());
        for w in paths.windows(2) {
            prop_assert!(w[0].weight <= w[1].weight + 1e-9);
        }
        for p in &paths {
            prop_assert!(p.is_simple());
            prop_assert_eq!(p.nodes[0], s);
            prop_assert_eq!(*p.nodes.last().unwrap(), t);
            // Edge chain is consistent with the node list.
            for (i, &e) in p.edges.iter().enumerate() {
                prop_assert_eq!(topo.edge(e).src, p.nodes[i]);
                prop_assert_eq!(topo.edge(e).dst, p.nodes[i + 1]);
            }
        }
    }

    /// The incremental counterfactual reward always matches a full
    /// recomputation.
    #[test]
    fn counterfactual_equals_full(seed in 0u64..60) {
        let topo = random_topo(seed, 6);
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        let env = Env::new(topo, paths);
        let tm = TrafficMatrix::new(
            (0..pairs.len()).map(|i| 5.0 + (i % 4) as f64 * 7.0).collect(),
        );
        let mut alloc = Allocation::zeros(pairs.len(), 4);
        for d in 0..pairs.len() {
            alloc.set_demand_splits(d, &[0.25, 0.25, 0.25, 0.25]);
        }
        let mut sim = FlowSim::new(&env, &tm, None);
        sim.set_allocation(&alloc);
        let d = (seed as usize * 13) % pairs.len();
        let new_splits = [0.9, 0.1, 0.0, 0.0];
        let incr = sim.counterfactual_reward(d, &new_splits);
        let mut changed = alloc.clone();
        changed.set_demand_splits(d, &new_splits);
        let mut sim2 = FlowSim::new(&env, &tm, None);
        let full = sim2.full_reward(&changed);
        prop_assert!((incr - full).abs() < 1e-7 * (1.0 + full.abs()),
            "incremental {} vs full {}", incr, full);
    }

    /// Autograd: d/dx sum(softmax(Wx)) gradients stay finite for random
    /// inputs, and softmax rows stay on the probability simplex.
    #[test]
    fn autograd_numerics_stay_finite(vals in proptest::collection::vec(-10.0f32..10.0, 12)) {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(3, 4, vals));
        let s = g.softmax_rows(x);
        let sq = g.mul(s, s);
        let loss = g.sum_all(sq);
        g.backward(loss);
        prop_assert!(g.grad(x).all_finite());
        let v = g.value(s);
        for r in 0..3 {
            let sum: f32 = v.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    /// Batched inference equals the sequential path: `allocate_batch` over a
    /// minibatch must reproduce per-matrix `allocate_deterministic` outputs
    /// within 1e-6 on random topologies, traffic, and batch sizes.
    #[test]
    fn batched_allocation_equals_sequential(seed in 0u64..30, volume in 1.0f64..150.0) {
        let topo = random_topo(seed, 6);
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        let env = std::sync::Arc::new(Env::new(topo, paths));
        let model = TealModel::new(
            std::sync::Arc::clone(&env),
            TealConfig { gnn_layers: 3, seed, ..TealConfig::default() },
        );
        let batch = 2 + (seed % 3) as usize;
        let tms: Vec<TrafficMatrix> = (0..batch)
            .map(|b| {
                TrafficMatrix::new(
                    (0..pairs.len())
                        .map(|d| volume * (0.2 + ((b * 7 + d) % 5) as f64 * 0.4))
                        .collect(),
                )
            })
            .collect();
        let batched = model.allocate_batch(&env.batch_input(&tms, None));
        prop_assert_eq!(batched.len(), tms.len());
        for (tm, b) in tms.iter().zip(&batched) {
            let seq = model.allocate_deterministic(&env.model_input(tm, None));
            for (x, y) in b.splits().iter().zip(seq.splits()) {
                prop_assert!((x - y).abs() <= 1e-6,
                    "batched {} vs sequential {} differ beyond 1e-6", x, y);
            }
        }
    }

    /// Traffic generation: non-negative demands and scale-invariance of the
    /// heavy-tail share statistic.
    #[test]
    fn traffic_invariants(seed in 0u64..100) {
        let pairs: Vec<(usize, usize)> = (0..120).map(|i| (i, i + 120)).collect();
        let model = teal::traffic::TrafficModel::new(
            &pairs,
            teal::traffic::TrafficConfig::default(),
            seed,
        );
        let tms = model.series(0, 4);
        for tm in &tms {
            prop_assert!(tm.demands().iter().all(|d| d.is_finite() && *d >= 0.0));
            let share = tm.top_share(0.10);
            prop_assert!((0.0..=1.0).contains(&share));
            // Heavy tail: the top decile must dominate.
            prop_assert!(share > 0.5, "top-10% share only {}", share);
        }
    }
}

#[test]
fn env_incidence_consistent_on_generated_topologies() {
    for kind in [TopoKind::B4, TopoKind::Swan] {
        let topo = generate(
            kind,
            0.3_f64.max(if kind == TopoKind::B4 { 1.0 } else { 0.3 }),
            3,
        );
        let pairs: Vec<(usize, usize)> = topo.all_pairs().into_iter().take(50).collect();
        let paths = PathSet::compute(&topo, &pairs, 4);
        let env = Env::new(topo, paths);
        let a = env.incidence();
        assert_eq!(a.fwd.rows(), env.paths().num_paths());
        // Every path's nnz count equals its hop count.
        let total_hops: usize = env.paths().paths().iter().map(|p| p.len()).sum();
        assert_eq!(a.fwd.nnz(), total_hops);
    }
}

//! Shared experiment testbeds: topology + paths + calibrated traffic +
//! (optionally) a trained Teal model.
//!
//! The paper's full-scale experiments (1,739-node ASN, full-mesh demands,
//! a week of GPU training) exceed a CPU session, so every testbed is
//! parameterized by a topology `scale` and a demand cap. The defaults below
//! are chosen so the complete harness runs on a laptop-class machine while
//! preserving each topology's structural identity; EXPERIMENTS.md records
//! the exact values used for every reported number.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;
use teal_core::{train_coma, ComaConfig, EngineConfig, Env, TealConfig, TealEngine, TealModel};
use teal_topology::{generate, PathSet, TopoKind};
use teal_traffic::{SplitSpec, TrafficConfig, TrafficMatrix, TrafficModel};

/// Testbed construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct TestbedSpec {
    /// Which evaluation network.
    pub kind: TopoKind,
    /// Topology scale in (0, 1].
    pub scale: f64,
    /// Maximum number of demand pairs (sampled seeded if the full mesh is
    /// larger). The paper uses the full mesh; this is our CPU-budget knob.
    pub max_demands: usize,
    /// Shrink factor for the 700/100/200 train/val/test split.
    pub split_shrink: f64,
    /// Master seed.
    pub seed: u64,
}

impl TestbedSpec {
    /// CPU-affordable defaults per topology (see DESIGN.md, substitution
    /// table). B4 runs at full scale.
    pub fn default_for(kind: TopoKind) -> Self {
        let (scale, max_demands) = match kind {
            TopoKind::B4 => (1.0, usize::MAX),
            TopoKind::Swan => (0.6, 2400),
            TopoKind::UsCarrier => (0.45, 2400),
            TopoKind::Kdl => (0.11, 2400),
            TopoKind::Asn => (0.10, 3000),
        };
        TestbedSpec {
            kind,
            scale,
            max_demands,
            split_shrink: 0.04,
            seed: 42,
        }
    }

    /// A smaller variant for quick smoke runs.
    pub fn fast_for(kind: TopoKind) -> Self {
        let base = Self::default_for(kind);
        TestbedSpec {
            scale: (base.scale * 0.6).min(1.0),
            max_demands: base.max_demands.min(600),
            split_shrink: 0.02,
            ..base
        }
    }
}

/// A ready-to-run experiment environment.
pub struct Testbed {
    /// Construction parameters.
    pub spec: TestbedSpec,
    /// Environment (topology + paths + incidence).
    pub env: Arc<Env>,
    /// The calibrated traffic generator.
    pub traffic: TrafficModel,
    /// Training window.
    pub train: Vec<TrafficMatrix>,
    /// Validation window.
    pub val: Vec<TrafficMatrix>,
    /// Test window.
    pub test: Vec<TrafficMatrix>,
}

impl Testbed {
    /// Build a testbed: generate the topology, sample (or enumerate) demand
    /// pairs, compute 4 shortest paths, calibrate traffic, and generate the
    /// train/val/test windows.
    pub fn build(spec: TestbedSpec) -> Testbed {
        let topo = generate(spec.kind, spec.scale, spec.seed);
        let mut pairs = topo.all_pairs();
        if pairs.len() > spec.max_demands {
            let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed ^ 0xbed_0001);
            pairs.shuffle(&mut rng);
            pairs.truncate(spec.max_demands);
            pairs.sort_unstable();
        }
        let paths = PathSet::compute(&topo, &pairs, 4);
        let mut traffic = TrafficModel::new(&pairs, TrafficConfig::default(), spec.seed);
        traffic.calibrate(&topo, &paths);
        let env = Arc::new(Env::new(topo, paths));
        let (train, val, test) = SplitSpec::paper(spec.split_shrink).generate(&traffic);
        Testbed {
            spec,
            env,
            traffic,
            train,
            val,
            test,
        }
    }

    /// Display name like "ASN(x0.10)".
    pub fn name(&self) -> String {
        if (self.spec.scale - 1.0).abs() < 1e-9 {
            self.spec.kind.name().to_string()
        } else {
            format!("{}(x{:.2})", self.spec.kind.name(), self.spec.scale)
        }
    }
}

/// Training budget for Teal models inside experiments.
#[derive(Clone, Copy, Debug)]
pub struct TrainBudget {
    /// COMA* epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Upper bound on agents receiving counterfactual evaluation per step.
    pub max_agents_per_step: usize,
}

impl Default for TrainBudget {
    fn default() -> Self {
        TrainBudget {
            epochs: 6,
            lr: 3e-3,
            max_agents_per_step: 600,
        }
    }
}

/// Train a Teal model on a testbed and wrap it in a deployment engine with
/// the paper's ADMM setting.
pub fn train_teal_engine(
    bed: &Testbed,
    model_cfg: TealConfig,
    budget: TrainBudget,
) -> TealEngine<TealModel> {
    let mut model = TealModel::new(Arc::clone(&bed.env), model_cfg);
    let nd = bed.env.num_demands().max(1);
    let cfg = ComaConfig {
        epochs: budget.epochs,
        lr: budget.lr,
        agent_fraction: (budget.max_agents_per_step as f64 / nd as f64).min(1.0),
        ..ComaConfig::default()
    };
    let _report = train_coma(&mut model, &bed.train, &bed.val, &cfg);
    let engine_cfg = EngineConfig::paper_default(bed.env.topo().num_nodes());
    TealEngine::new(model, engine_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b4_testbed_builds() {
        let bed = Testbed::build(TestbedSpec {
            split_shrink: 0.01,
            ..TestbedSpec::default_for(TopoKind::B4)
        });
        assert_eq!(bed.env.topo().num_nodes(), 12);
        assert_eq!(bed.env.num_demands(), 132);
        assert_eq!(bed.train.len(), 7);
        assert!(bed.name() == "B4");
    }

    #[test]
    fn demand_cap_enforced() {
        let bed = Testbed::build(TestbedSpec {
            kind: TopoKind::Swan,
            scale: 0.3,
            max_demands: 200,
            split_shrink: 0.01,
            seed: 7,
        });
        assert_eq!(bed.env.num_demands(), 200);
        assert!(bed.name().starts_with("SWAN(x0.30"));
    }

    #[test]
    fn quick_training_runs() {
        let bed = Testbed::build(TestbedSpec {
            kind: TopoKind::B4,
            scale: 1.0,
            max_demands: usize::MAX,
            split_shrink: 0.005,
            seed: 1,
        });
        let engine = train_teal_engine(
            &bed,
            TealConfig {
                gnn_layers: 3,
                ..TealConfig::default()
            },
            TrainBudget {
                epochs: 1,
                lr: 3e-3,
                max_agents_per_step: 50,
            },
        );
        let (alloc, _) = engine.allocate(&bed.test[0]);
        assert!(alloc.demand_feasible(1e-6));
    }
}

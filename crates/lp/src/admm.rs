//! ADMM for the TE path LP, following Appendix C of the paper.
//!
//! The constrained problem (Eq. 1) is rewritten with auxiliary per-(path,
//! edge) variables `z_pe`, slacks `s1_d` (demand rows) and `s3_e` (capacity
//! rows), and multipliers `λ = (λ1, λ3, λ4)`. Each ADMM iteration performs
//! four sweeps, every one of which decomposes into independent per-demand or
//! per-edge subproblems (the parallelism §3.4 exploits on GPUs; here spread
//! over CPU threads):
//!
//! 1. **F-update** — per demand, a k-dimensional box-clamped quadratic whose
//!    Hessian is `ρ(vol²·diag(L_p) + 11ᵀ)`, solved in closed form via the
//!    Sherman-Morrison identity;
//! 2. **z-update** — per edge, Hessian `ρ(I + 11ᵀ)`, also Sherman-Morrison;
//! 3. **slack updates** — non-negative projections in closed form;
//! 4. **dual ascent** on all three multiplier families.
//!
//! Used in two roles, matching the paper: *warm-started for 2–5 iterations*
//! as Teal's feasibility repair (§3.4), and *cold-started to convergence* as
//! the large-instance substitute for the Gurobi "LP-all" baseline (our
//! documented Gurobi substitution; see DESIGN.md).
//!
//! # Batched fine-tuning ([`AdmmBatchSolver`])
//!
//! Appendix C's decomposition is independent not only across demands and
//! edges but also across *traffic matrices*: no ADMM quantity ever couples
//! two matrices. The serving path exploits this with a structure-of-arrays
//! batch solver minted from one shared [`AdmmSkeleton`]:
//!
//! * **SoA layout.** Every state family (`f`, `z`, slacks, multipliers) is
//!   stored `[entry][lane]` — for a per-matrix quantity of length `L` and a
//!   batch of `B` matrices, element `i` of matrix `b` lives at
//!   `i * B + b`. Batch lanes of one subproblem are contiguous, so each
//!   per-demand / per-edge subproblem walks the incidence index **once**
//!   and repairs the whole window in that single pass, instead of `B`
//!   passes re-reading the index per matrix.
//! * **Edge-major auxiliaries.** `z` and `λ4` are stored in edge-major
//!   entry order (each edge's incidence entries contiguous), so the
//!   z-update and the capacity rows of the dual ascent write disjoint
//!   contiguous tiles with no atomics; the F-update reaches them through a
//!   precomputed entry→position permutation.
//! * **Flat incidence arena.** The shared index itself is two flat
//!   CSR-style arenas (path-major entry ids, edge-major positions) plus
//!   their inverse permutations — no per-path or per-edge `Vec`s — so
//!   every sweep's incidence walk is one linear scan of a contiguous
//!   `u32` slice; see [`AdmmIndex`] for the layout.
//! * **Parallelism.** Sweeps tile over demand ranges and (entry-balanced)
//!   edge ranges × the full batch, claimed on the shared
//!   [`teal_nn::pool`] worker pool — the same pool the forward pass uses,
//!   so serving never oversubscribes threads. Per-lane dual/primal
//!   residuals fold through commutative atomic maxima, keeping results
//!   bit-identical to the per-matrix solver regardless of tile order.
//! * **Convergence mask.** Early stopping stays *per matrix*: once a
//!   lane's residual drops below `tol` it is masked out of every later
//!   sweep (its state freezes; its iteration count is recorded), while
//!   unconverged lanes keep iterating — matching exactly what `B`
//!   independent [`AdmmSolver::run`] calls would do. Until the *first*
//!   lane freezes the sweeps take an all-lanes-active fast path whose
//!   commit loops carry no mask test at all (branch-free, zip-vectorized);
//!   under the paper's fixed-iteration fine-tuning (`tol = 0`) the masked
//!   variant is never entered.
//! * **Arena reuse (allocation-free steady state).** Every byte of mutable
//!   solver state — the SoA families, tile bounds, per-tile sweep scratch,
//!   residual slots — lives in a caller-owned [`BatchArena`] of grow-only
//!   buffers. A serving loop that keeps one arena (plus its output
//!   `Vec<Allocation>`/`Vec<AdmmReport>`) and rebinds the solver per window
//!   with [`AdmmSkeleton::remint_batch_solver`] performs **zero heap
//!   allocations** from the second window onwards (asserted by
//!   `tests/steady_state_alloc.rs`). See [`BatchArena`] for the ownership
//!   rules: one solve at a time, one arena per thread, safe to carry
//!   across topology changes and weight swaps.

use crate::problem::{Allocation, Objective, TeInstance};
use std::sync::Arc;
use teal_topology::{PathSet, Topology};
use teal_traffic::TrafficMatrix;

/// ADMM hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct AdmmConfig {
    /// Penalty coefficient ρ.
    pub rho: f64,
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Stop early when the max primal residual drops below this (0 disables
    /// early stopping — the paper's fine-tuning always runs a fixed count).
    pub tol: f64,
    /// Run all update sweeps single-threaded. Used by the Figure-2
    /// concurrent-racing experiment, where each racer must model a *serial*
    /// LP instance on its own thread.
    pub serial: bool,
}

impl AdmmConfig {
    /// The paper's fine-tuning setting: 2 iterations for topologies under
    /// 100 nodes, 5 otherwise (§4).
    pub fn fine_tune(num_nodes: usize) -> Self {
        AdmmConfig {
            rho: 1.0,
            max_iters: if num_nodes < 100 { 2 } else { 5 },
            tol: 0.0,
            serial: false,
        }
    }

    /// The same configuration with a different iteration budget — the
    /// per-window form of the §3.4 quality/latency knob: a scheduler under
    /// deadline pressure re-issues the window's config with a smaller
    /// `max_iters` (the iteration count is already the only loop bound).
    pub fn with_max_iters(self, max_iters: usize) -> Self {
        AdmmConfig { max_iters, ..self }
    }

    /// Solve-to-convergence setting used as the LP-all substitute.
    pub fn to_convergence() -> Self {
        AdmmConfig {
            rho: 1.0,
            max_iters: 4000,
            tol: 1e-5,
            serial: false,
        }
    }
}

/// Iteration report.
#[derive(Clone, Copy, Debug)]
pub struct AdmmReport {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Final max primal (feasibility) residual, normalized units. Infinite
    /// when no iteration ran.
    pub primal_residual: f64,
    /// Final dual residual (ρ · max step size of the F/z blocks): the
    /// stationarity half of the convergence test — the all-zero point has
    /// zero primal residual but a large dual one. Infinite when no
    /// iteration ran.
    pub dual_residual: f64,
}

impl AdmmReport {
    /// The combined convergence residual the `tol` stop tests against:
    /// `max(primal, dual)`.
    pub fn residual(&self) -> f64 {
        self.primal_residual.max(self.dual_residual)
    }
}

/// Immutable path-edge incidence indexing shared by every solver built for
/// one `(topology, path set)` pair. Building it walks every hop of every
/// candidate path, which dominates solver-construction cost — hoisting it
/// behind an `Arc` is what makes per-traffic-matrix solver construction
/// an O(paths) copy instead of an O(nnz) rebuild.
/// The index is a pair of flat CSR-style arenas over the incidence
/// non-zeros, with permutations between them, and no per-path or per-edge
/// `Vec` allocations:
///
/// * **Entry-id space** is path-major: entries are numbered walking every
///   hop of every candidate path in order, so path `p`'s entries are the
///   contiguous id range `path_start[p]..path_start[p + 1]` and
///   `entry_path[i]` recovers the owning path. The per-matrix solver's
///   `z`/`λ4` live in this order.
/// * **Position space** is edge-major: the same non-zeros regrouped so edge
///   `e` owns the contiguous position range `edge_start[e]..edge_start[e +
///   1]` (`pos_path`/`pos_entry` describe each position). The batched
///   solver's `z`/`λ4` live in this order, making its per-edge sweeps
///   linear scans.
/// * `entry_pos`/`pos_entry` are the two inverse permutations, so the
///   F-update's incidence walk over a path is one linear scan of
///   `entry_pos[path_start[p]..path_start[p + 1]]` — no nested-`Vec`
///   pointer chasing at 1,000-node scale where this walk dominates.
struct AdmmIndex {
    /// Owning path of each incidence entry (path-major entry-id order).
    entry_path: Vec<u32>,
    /// Entry-id range of each path: `path_start[p]..path_start[p + 1]`.
    path_start: Vec<usize>,
    /// Position range of each edge: `edge_start[e]..edge_start[e + 1]`.
    edge_start: Vec<usize>,
    /// Path id of each position (edge-major order).
    pos_path: Vec<u32>,
    /// Entry id of each position (ascending within each edge).
    pos_entry: Vec<u32>,
    /// Entry id → edge-major position.
    entry_pos: Vec<u32>,
    /// Largest per-edge entry count (sizes the batched z-update scratch).
    max_edge_entries: usize,
}

impl AdmmIndex {
    /// Build both arenas straight from the path set with two counting
    /// passes — O(nnz), no intermediate `Vec<Vec>` structures.
    fn new(paths: &PathSet, num_edges: usize) -> Self {
        let nnz: usize = paths.paths().iter().map(|p| p.edges.len()).sum();
        let mut entry_path = Vec::with_capacity(nnz);
        let mut entry_edge = Vec::with_capacity(nnz);
        let mut path_start = Vec::with_capacity(paths.num_paths() + 1);
        path_start.push(0);
        for (p, path) in paths.paths().iter().enumerate() {
            for &e in &path.edges {
                entry_path.push(p as u32);
                entry_edge.push(e as u32);
            }
            path_start.push(entry_path.len());
        }

        // Counting sort of entry ids into edge-major positions; ascending
        // ids within each edge, matching the entry-id iteration order.
        let mut edge_start = vec![0usize; num_edges + 1];
        for &e in &entry_edge {
            edge_start[e as usize + 1] += 1;
        }
        for e in 0..num_edges {
            edge_start[e + 1] += edge_start[e];
        }
        let mut cursor = edge_start[..num_edges].to_vec();
        let mut pos_path = vec![0u32; nnz];
        let mut pos_entry = vec![0u32; nnz];
        let mut entry_pos = vec![0u32; nnz];
        for (i, &e) in entry_edge.iter().enumerate() {
            let pos = cursor[e as usize];
            cursor[e as usize] += 1;
            pos_path[pos] = entry_path[i];
            pos_entry[pos] = i as u32;
            entry_pos[i] = pos as u32;
        }
        let max_edge_entries = (0..num_edges)
            .map(|e| edge_start[e + 1] - edge_start[e])
            .max()
            .unwrap_or(0);
        AdmmIndex {
            entry_path,
            path_start,
            edge_start,
            pos_path,
            pos_entry,
            entry_pos,
            max_edge_entries,
        }
    }

    /// Number of incidence non-zeros.
    fn nnz(&self) -> usize {
        self.entry_path.len()
    }

    /// Entry ids of edge `e` (ascending), as a slice of position space.
    fn edge_entries(&self, e: usize) -> &[u32] {
        &self.pos_entry[self.edge_start[e]..self.edge_start[e + 1]]
    }
}

/// Everything about an ADMM deployment that does *not* depend on the traffic
/// matrix: the incidence index, normalized capacities, and the per-path
/// objective discounts. Build once per `(topology, path set, objective)`
/// and mint a cheap [`AdmmSolver`] per traffic matrix with
/// [`AdmmSkeleton::solver`] — the zero-rebuild serving path.
#[derive(Clone)]
pub struct AdmmSkeleton {
    num_demands: usize,
    k: usize,
    num_edges: usize,
    /// Capacity normalizer (1 / mean capacity).
    alpha: f64,
    /// Normalized capacities per edge.
    caps: Arc<Vec<f64>>,
    /// Per-path objective multiplier (1 for `TotalFlow`; latency discount
    /// for `DelayPenalizedFlow`).
    discount: Arc<Vec<f64>>,
    index: Arc<AdmmIndex>,
}

impl AdmmSkeleton {
    /// Build the per-topology solver state under a linear objective
    /// (`TotalFlow` or `DelayPenalizedFlow`; `MinMaxLinkUtil` uses
    /// [`crate::pathlp::solve_mlu`] instead).
    pub fn new(topo: &Topology, paths: &PathSet, obj: Objective) -> Self {
        assert!(
            !matches!(obj, Objective::MinMaxLinkUtil),
            "ADMM handles linear objectives; use solve_mlu for MLU"
        );
        let num_edges = topo.num_edges();
        // Normalize volumes/capacities by the mean capacity so ρ=1 is well
        // conditioned on every topology.
        let mean_cap = topo.total_capacity() / num_edges.max(1) as f64;
        let alpha = if mean_cap > 0.0 { 1.0 / mean_cap } else { 1.0 };
        let caps: Vec<f64> = topo.edges().iter().map(|e| e.capacity * alpha).collect();

        let discount: Vec<f64> = match obj {
            Objective::DelayPenalizedFlow(gamma) => {
                let max_w = paths
                    .paths()
                    .iter()
                    .map(|p| p.weight)
                    .fold(0.0f64, f64::max)
                    .max(1e-12);
                paths
                    .paths()
                    .iter()
                    .map(|p| (1.0 - gamma * p.weight / max_w).max(0.0))
                    .collect()
            }
            _ => vec![1.0; paths.num_paths()],
        };

        AdmmSkeleton {
            num_demands: paths.num_demands(),
            k: paths.k(),
            num_edges,
            alpha,
            caps: Arc::new(caps),
            discount: Arc::new(discount),
            index: Arc::new(AdmmIndex::new(paths, num_edges)),
        }
    }

    /// Rebind to a topology with altered capacities (e.g. failed links
    /// zeroed) while sharing the incidence index and discounts: only the
    /// capacity vector is recomputed, so failure overrides stay cheap.
    pub fn with_topology(&self, topo: &Topology) -> AdmmSkeleton {
        assert_eq!(
            topo.num_edges(),
            self.num_edges,
            "override edge count mismatch"
        );
        let mean_cap = topo.total_capacity() / self.num_edges.max(1) as f64;
        let alpha = if mean_cap > 0.0 { 1.0 / mean_cap } else { 1.0 };
        let caps: Vec<f64> = topo.edges().iter().map(|e| e.capacity * alpha).collect();
        AdmmSkeleton {
            alpha,
            caps: Arc::new(caps),
            ..self.clone()
        }
    }

    /// Mint the solver for one traffic matrix: computes the normalized
    /// volumes and objective coefficients (O(paths)) and shares everything
    /// else with the skeleton.
    pub fn solver(&self, tm: &TrafficMatrix) -> AdmmSolver {
        assert_eq!(tm.len(), self.num_demands, "traffic matrix arity mismatch");
        let vols: Vec<f64> = tm.demands().iter().map(|v| v * self.alpha).collect();
        let k = self.k;
        let vcoef: Vec<f64> = self
            .discount
            .iter()
            .enumerate()
            .map(|(p, disc)| vols[p / k] * disc)
            .collect();
        AdmmSolver {
            num_demands: self.num_demands,
            k,
            num_edges: self.num_edges,
            vols,
            caps: Arc::clone(&self.caps),
            vcoef,
            index: Arc::clone(&self.index),
        }
    }

    /// Mint the batched solver for a whole window of traffic matrices:
    /// per-lane normalized volumes and objective coefficients are laid out
    /// structure-of-arrays (`[entry][lane]`), everything else is shared with
    /// the skeleton. O(batch × paths), no incidence rebuild. Steady-state
    /// servers keep the returned solver and rebind it to each new window
    /// with [`AdmmSkeleton::remint_batch_solver`] instead of minting fresh.
    pub fn batch_solver(&self, tms: &[TrafficMatrix]) -> AdmmBatchSolver {
        let mut solver = AdmmBatchSolver {
            batch: 0,
            num_demands: 0,
            k: 0,
            num_edges: 0,
            vols: Vec::new(),
            caps: Arc::clone(&self.caps),
            vcoef: Vec::new(),
            index: Arc::clone(&self.index),
        };
        self.remint_batch_solver(&mut solver, tms);
        solver
    }

    /// Rebind an existing [`AdmmBatchSolver`] to a new window, reusing its
    /// coefficient buffers (grow-only — allocation-free once the buffers
    /// have reached the largest window shape seen). The solver may have been
    /// minted from a *different* skeleton (another topology, or this one
    /// with failure-overridden capacities): every shared handle is replaced,
    /// so the result is indistinguishable from [`AdmmSkeleton::batch_solver`].
    pub fn remint_batch_solver(&self, solver: &mut AdmmBatchSolver, tms: &[TrafficMatrix]) {
        assert!(!tms.is_empty(), "batch_solver requires at least one matrix");
        let nb = tms.len();
        let k = self.k;
        solver.batch = nb;
        solver.num_demands = self.num_demands;
        solver.k = k;
        solver.num_edges = self.num_edges;
        solver.caps = Arc::clone(&self.caps);
        solver.index = Arc::clone(&self.index);
        solver.vols.clear();
        solver.vols.resize(self.num_demands * nb, 0.0);
        for (b, tm) in tms.iter().enumerate() {
            assert_eq!(tm.len(), self.num_demands, "traffic matrix arity mismatch");
            for (d, v) in tm.demands().iter().enumerate() {
                solver.vols[d * nb + b] = v * self.alpha;
            }
        }
        solver.vcoef.clear();
        solver.vcoef.resize(self.discount.len() * nb, 0.0);
        for (p, disc) in self.discount.iter().enumerate() {
            for b in 0..nb {
                solver.vcoef[p * nb + b] = solver.vols[(p / k) * nb + b] * disc;
            }
        }
    }
}

/// Pre-indexed ADMM solver for one `(topology, path set, traffic matrix)`
/// triple. Constructed either directly from a [`TeInstance`] or — on the
/// serving path — cheaply from a shared [`AdmmSkeleton`].
pub struct AdmmSolver {
    num_demands: usize,
    k: usize,
    num_edges: usize,
    /// Normalized demand volumes per demand.
    vols: Vec<f64>,
    /// Normalized capacities per edge.
    caps: Arc<Vec<f64>>,
    /// Normalized per-path objective coefficients.
    vcoef: Vec<f64>,
    /// Shared incidence index.
    index: Arc<AdmmIndex>,
}

struct State {
    f: Vec<f64>,
    z: Vec<f64>,
    s1: Vec<f64>,
    s3: Vec<f64>,
    l1: Vec<f64>,
    l3: Vec<f64>,
    l4: Vec<f64>,
}

impl AdmmSolver {
    /// Build the solver for an instance under a linear objective
    /// (`TotalFlow` or `DelayPenalizedFlow`; `MinMaxLinkUtil` uses
    /// [`crate::pathlp::solve_mlu`] instead). One-shot convenience — serving
    /// paths should build an [`AdmmSkeleton`] once and mint per-matrix
    /// solvers from it.
    pub fn new(inst: &TeInstance, obj: Objective) -> Self {
        AdmmSkeleton::new(inst.topo, inst.paths, obj).solver(inst.tm)
    }

    /// Run ADMM starting from `init` (which is projected onto the demand
    /// constraints first). Returns the refined allocation and a report.
    pub fn run(&self, init: &Allocation, cfg: AdmmConfig) -> (Allocation, AdmmReport) {
        self.run_with_cancel(init, cfg, None)
    }

    /// Like [`AdmmSolver::run`], checking an external cancellation flag
    /// between iterations (for racing solvers).
    pub fn run_with_cancel(
        &self,
        init: &Allocation,
        cfg: AdmmConfig,
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> (Allocation, AdmmReport) {
        assert_eq!(init.num_demands(), self.num_demands);
        assert_eq!(init.k(), self.k);
        let mut warm = init.clone();
        warm.project_demand_constraints();

        let nnz = self.index.nnz();
        let mut st = State {
            f: warm.splits().to_vec(),
            z: vec![0.0; nnz],
            s1: vec![0.0; self.num_demands],
            s3: vec![0.0; self.num_edges],
            l1: vec![0.0; self.num_demands],
            l3: vec![0.0; self.num_edges],
            l4: vec![0.0; nnz],
        };
        // Initialize z to match the warm-started flows and slacks to the
        // residual capacities, so iteration 1 starts near-consistent.
        for (i, &p) in self.index.entry_path.iter().enumerate() {
            st.z[i] = st.f[p as usize] * self.vols[p as usize / self.k];
        }
        for d in 0..self.num_demands {
            let sum: f64 = st.f[d * self.k..(d + 1) * self.k].iter().sum();
            st.s1[d] = (1.0 - sum).max(0.0);
        }
        for e in 0..self.num_edges {
            let sum: f64 = self
                .index
                .edge_entries(e)
                .iter()
                .map(|&i| st.z[i as usize])
                .sum();
            st.s3[e] = (self.caps[e] - sum).max(0.0);
        }

        let rho = cfg.rho;
        let serial = cfg.serial;
        let mut iterations = 0;
        let mut last_primal = f64::INFINITY;
        let mut last_dual = f64::INFINITY;
        for _ in 0..cfg.max_iters {
            if let Some(flag) = cancel {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
            }
            let df = self.update_f(&mut st, rho, serial);
            let dz = self.update_z(&mut st, rho, serial);
            self.update_slacks(&mut st, rho);
            let primal = self.dual_ascent(&mut st, rho);
            // Convergence needs both feasibility (primal residual) and a
            // stationary iterate (dual residual ~ ρ * step size); primal
            // alone is satisfied by the all-zero point.
            last_primal = primal;
            last_dual = rho * df.max(dz);
            iterations += 1;
            if cfg.tol > 0.0 && last_primal.max(last_dual) < cfg.tol {
                break;
            }
        }

        let mut out = Allocation::from_splits(self.k, st.f);
        out.project_demand_constraints();
        (
            out,
            AdmmReport {
                iterations,
                primal_residual: last_primal,
                dual_residual: last_dual,
            },
        )
    }

    /// Per-demand F-update (parallel across demand chunks). Returns the
    /// max absolute change of any split (the F-block dual residual).
    fn update_f(&self, st: &mut State, rho: f64, serial: bool) -> f64 {
        let k = self.k;
        let z = &st.z;
        let s1 = &st.s1;
        let l1 = &st.l1;
        let l4 = &st.l4;
        let solver = self;
        let prev = st.f.clone();
        par_chunks_indexed(&mut st.f, k * 64, serial, |start, chunk| {
            // `start` is a split index; convert to demand ids.
            debug_assert_eq!(start % k, 0);
            let d0 = start / k;
            for (dd, row) in chunk.chunks_mut(k).enumerate() {
                let d = d0 + dd;
                let vol = solver.vols[d];
                if vol <= 0.0 {
                    row.iter_mut().for_each(|v| *v = 0.0);
                    continue;
                }
                let mut b = [0.0f64; 16];
                let mut diag = [0.0f64; 16];
                for (j, bj) in b.iter_mut().enumerate().take(k) {
                    let p = d * k + j;
                    let mut acc = solver.vcoef[p] - l1[d] - rho * (s1[d] - 1.0);
                    // Path p's entry ids are contiguous: one linear scan.
                    let (i0, i1) = (solver.index.path_start[p], solver.index.path_start[p + 1]);
                    for i in i0..i1 {
                        acc += -l4[i] * vol + rho * vol * z[i];
                    }
                    *bj = acc;
                    diag[j] = rho * vol * vol * (i1 - i0) as f64;
                }
                // Sherman-Morrison solve of (diag + rho*11^T) x = b.
                let mut sum_binv = 0.0;
                let mut sum_inv = 0.0;
                for j in 0..k {
                    sum_binv += b[j] / diag[j];
                    sum_inv += 1.0 / diag[j];
                }
                let corr = rho * sum_binv / (1.0 + rho * sum_inv);
                for (j, r) in row.iter_mut().enumerate() {
                    let x = (b[j] - corr) / diag[j];
                    *r = x.clamp(0.0, 1.0);
                }
            }
        });
        prev.iter()
            .zip(&st.f)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Per-edge z-update (parallel across edges). Returns the max absolute
    /// change of any auxiliary variable (the z-block dual residual).
    fn update_z(&self, st: &mut State, rho: f64, serial: bool) -> f64 {
        let k = self.k;
        let f = &st.f;
        let s3 = &st.s3;
        let l3 = &st.l3;
        let l4 = &st.l4;
        let solver = self;
        // z entries are not contiguous per edge, so compute per-edge results
        // into a scratch copy first (indexable in parallel by edge).
        let mut new_z = st.z.clone();
        if serial {
            // Single-threaded fast path (the batched serving engine runs one
            // serial solver per matrix): plain writes, one reusable scratch
            // buffer, no atomics.
            let mut bs: Vec<f64> = Vec::new();
            for e in 0..self.num_edges {
                let ents = solver.index.edge_entries(e);
                if ents.is_empty() {
                    continue;
                }
                let n = ents.len() as f64;
                let mut sum_b = 0.0;
                bs.clear();
                for &i in ents {
                    let i = i as usize;
                    let p = solver.index.entry_path[i];
                    let vol = solver.vols[p as usize / k];
                    let b =
                        -l3[e] - rho * (s3[e] - solver.caps[e]) + l4[i] + rho * f[p as usize] * vol;
                    bs.push(b);
                    sum_b += b;
                }
                let corr = sum_b / rho / (1.0 + n);
                for (&i, b) in ents.iter().zip(&bs) {
                    new_z[i as usize] = b / rho - corr;
                }
            }
        } else {
            let new_z_cell: Vec<std::sync::atomic::AtomicU64> = new_z
                .iter()
                .map(|v| std::sync::atomic::AtomicU64::new(v.to_bits()))
                .collect();
            let edges: Vec<usize> = (0..self.num_edges).collect();
            par_iter(&edges, 64, serial, |&e| {
                let ents = solver.index.edge_entries(e);
                if ents.is_empty() {
                    return;
                }
                let n = ents.len() as f64;
                let mut sum_b = 0.0;
                let mut bs: Vec<f64> = Vec::with_capacity(ents.len());
                for &i in ents {
                    let i = i as usize;
                    let p = solver.index.entry_path[i];
                    let vol = solver.vols[p as usize / k];
                    let b =
                        -l3[e] - rho * (s3[e] - solver.caps[e]) + l4[i] + rho * f[p as usize] * vol;
                    bs.push(b);
                    sum_b += b;
                }
                let corr = sum_b / rho / (1.0 + n);
                for (&i, b) in ents.iter().zip(bs) {
                    let zi = b / rho - corr;
                    new_z_cell[i as usize]
                        .store(zi.to_bits(), std::sync::atomic::Ordering::Relaxed);
                }
            });
            for (v, cell) in new_z.iter_mut().zip(&new_z_cell) {
                *v = f64::from_bits(cell.load(std::sync::atomic::Ordering::Relaxed));
            }
        }
        let dz =
            st.z.iter()
                .zip(&new_z)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
        st.z = new_z;
        dz
    }

    /// Closed-form non-negative slack updates.
    fn update_slacks(&self, st: &mut State, rho: f64) {
        let k = self.k;
        for d in 0..self.num_demands {
            let sum: f64 = st.f[d * k..(d + 1) * k].iter().sum();
            st.s1[d] = (1.0 - sum - st.l1[d] / rho).max(0.0);
        }
        for e in 0..self.num_edges {
            let sum: f64 = self
                .index
                .edge_entries(e)
                .iter()
                .map(|&i| st.z[i as usize])
                .sum();
            st.s3[e] = (self.caps[e] - sum - st.l3[e] / rho).max(0.0);
        }
    }

    /// Dual ascent; returns the max primal residual.
    fn dual_ascent(&self, st: &mut State, rho: f64) -> f64 {
        let k = self.k;
        let mut resid = 0.0f64;
        for d in 0..self.num_demands {
            let g = st.f[d * k..(d + 1) * k].iter().sum::<f64>() + st.s1[d] - 1.0;
            st.l1[d] += rho * g;
            resid = resid.max(g.abs());
        }
        for e in 0..self.num_edges {
            let sum: f64 = self
                .index
                .edge_entries(e)
                .iter()
                .map(|&i| st.z[i as usize])
                .sum();
            let g = sum + st.s3[e] - self.caps[e];
            st.l3[e] += rho * g;
            resid = resid.max(g.abs());
        }
        for (i, &p) in self.index.entry_path.iter().enumerate() {
            let g = st.f[p as usize] * self.vols[p as usize / k] - st.z[i];
            st.l4[i] += rho * g;
            resid = resid.max(g.abs());
        }
        resid
    }
}

/// Structure-of-arrays ADMM state for a batch of matrices: each per-matrix
/// array of length `L` becomes `L × batch` with lanes contiguous
/// (`value[i * batch + b]`), and `z`/`l4` use edge-major entry positions
/// (see [`AdmmIndex`]).
struct BatchState {
    f: Vec<f64>,
    z: Vec<f64>,
    s1: Vec<f64>,
    s3: Vec<f64>,
    l1: Vec<f64>,
    l3: Vec<f64>,
    l4: Vec<f64>,
}

impl BatchState {
    fn empty() -> Self {
        BatchState {
            f: Vec::new(),
            z: Vec::new(),
            s1: Vec::new(),
            s3: Vec::new(),
            l1: Vec::new(),
            l3: Vec::new(),
            l4: Vec::new(),
        }
    }

    /// Resize every family to the given window shape and zero it. Buffers
    /// only ever grow, so once the largest window shape has been seen this
    /// performs no heap allocation.
    fn reset_for(&mut self, np: usize, npos: usize, nd: usize, ne: usize, nb: usize) {
        for (buf, len) in [
            (&mut self.f, np * nb),
            (&mut self.z, npos * nb),
            (&mut self.s1, nd * nb),
            (&mut self.s3, ne * nb),
            (&mut self.l1, nd * nb),
            (&mut self.l3, ne * nb),
            (&mut self.l4, npos * nb),
        ] {
            buf.clear();
            buf.resize(len, 0.0);
        }
    }
}

/// Reusable scratch for [`AdmmBatchSolver::run_batch_into`]: the SoA
/// [`BatchState`], per-lane bookkeeping, tile bounds, per-tile sweep
/// scratch, and the atomic lane-max slots. Every buffer is grow-only, so a
/// server that keeps one arena per dispatch lane reaches an
/// **allocation-free steady state**: from the second window of a given
/// shape onwards, a full fine-tuning run performs zero heap allocations
/// (asserted by `tests/steady_state_alloc.rs`).
///
/// # Lifecycle and ownership
///
/// An arena is plain mutable scratch — it carries no results across
/// windows, only capacity. Exactly one solve may use it at a time (`&mut`
/// enforces this); different threads must use different arenas. It is not
/// tied to any skeleton or topology: reusing one arena across topologies,
/// capacity overrides, or weight swaps is safe and merely re-grows buffers
/// on shape changes.
pub struct BatchArena {
    st: BatchState,
    active: Vec<bool>,
    iterations: Vec<usize>,
    residual: Vec<f64>,
    df: Vec<f64>,
    dz: Vec<f64>,
    primal: Vec<f64>,
    /// Per-lane primal/dual residuals captured at each lane's *last active*
    /// iteration (the sweep buffers above are overwritten every iteration,
    /// including for lanes already frozen by the convergence mask).
    primal_final: Vec<f64>,
    dual_final: Vec<f64>,
    dbounds: Vec<usize>,
    ebounds: Vec<usize>,
    lane_max: Vec<std::sync::atomic::AtomicU64>,
    scratch: Vec<f64>,
    /// Per-tile scratch stride for the current window.
    stride: usize,
}

impl Default for BatchArena {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchArena {
    /// An empty arena; buffers grow to fit the first solve that uses it.
    pub fn new() -> Self {
        BatchArena {
            st: BatchState::empty(),
            active: Vec::new(),
            iterations: Vec::new(),
            residual: Vec::new(),
            df: Vec::new(),
            dz: Vec::new(),
            primal: Vec::new(),
            primal_final: Vec::new(),
            dual_final: Vec::new(),
            dbounds: Vec::new(),
            ebounds: Vec::new(),
            lane_max: Vec::new(),
            scratch: Vec::new(),
            stride: 0,
        }
    }

    /// Size every buffer for one window of `solver` across `threads` tiles.
    fn prepare(&mut self, solver: &AdmmBatchSolver, threads: usize) {
        let nb = solver.batch;
        let np = solver.num_demands * solver.k;
        let npos = solver.index.pos_path.len();
        self.st
            .reset_for(np, npos, solver.num_demands, solver.num_edges, nb);
        self.active.clear();
        self.active.resize(nb, true);
        self.iterations.clear();
        self.iterations.resize(nb, 0);
        self.residual.clear();
        self.residual.resize(nb, f64::INFINITY);
        for buf in [&mut self.primal_final, &mut self.dual_final] {
            buf.clear();
            buf.resize(nb, f64::INFINITY);
        }
        for buf in [&mut self.df, &mut self.dz, &mut self.primal] {
            buf.clear();
            buf.resize(nb, 0.0);
        }
        even_bounds_into(solver.num_demands, threads, &mut self.dbounds);
        edge_bounds_into(&solver.index.edge_start, threads, &mut self.ebounds);
        if self.lane_max.len() < nb {
            self.lane_max
                .resize_with(nb, || std::sync::atomic::AtomicU64::new(0));
        }
        // Per-tile sweep scratch, sized for the widest sweep: the F-update
        // needs (2k + 4)·nb, the z-update (max per-edge entries + 2)·nb,
        // the fused slack/dual pass 2·nb.
        let stride = (2 * solver.k + 4)
            .max(solver.index.max_edge_entries + 2)
            .max(2)
            * nb;
        let tiles = (self.dbounds.len().max(self.ebounds.len()))
            .saturating_sub(1)
            .max(1);
        self.stride = stride;
        self.scratch.clear();
        self.scratch.resize(tiles * stride, 0.0);
    }
}

/// Reset the per-lane atomic maxima to zero before a sweep.
fn lane_reset(slots: &[std::sync::atomic::AtomicU64]) {
    for s in slots {
        s.store(0.0f64.to_bits(), std::sync::atomic::Ordering::Relaxed);
    }
}

/// Fold a tile's local maxima into the shared per-lane slots via
/// compare-and-swap. Max is commutative and associative, so tile execution
/// order never affects the folded value — the batched sweeps stay
/// deterministic under any pool schedule.
fn lane_fold(slots: &[std::sync::atomic::AtomicU64], local: &[f64]) {
    use std::sync::atomic::Ordering;
    for (slot, &v) in slots.iter().zip(local) {
        let mut cur = slot.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match slot.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }
}

/// Read the folded per-lane maxima back out.
fn lane_read(slots: &[std::sync::atomic::AtomicU64], out: &mut [f64]) {
    for (o, s) in out.iter_mut().zip(slots) {
        *o = f64::from_bits(s.load(std::sync::atomic::Ordering::Relaxed));
    }
}

/// Raw view of a mutable buffer whose disjoint regions are written by
/// different pool tiles. SAFETY contract: every region is handed to exactly
/// one tile, regions handed out over one `TileBuf`'s lifetime are pairwise
/// disjoint, and the borrow that produced the view outlives the pool
/// dispatch (which blocks until all tiles finish). A buffer whose regions
/// are legitimately reused across *sequential* dispatches (the fused
/// slack/dual scratch) must be re-viewed with a fresh `TileBuf` per
/// dispatch.
///
/// Checked-unsafe instrumentation: in debug/`teal_check` builds every
/// `slice` call is recorded and checked against all earlier ones; an
/// overlapping or out-of-bounds range panics at the hand-out site instead
/// of corrupting a neighbor tile's lanes.
struct TileBuf {
    ptr: *mut f64,
    #[cfg(any(debug_assertions, teal_check))]
    len: usize,
    /// Ranges handed out so far. A plain std mutex (not a pool
    /// primitive): held only for the duration of the overlap scan, and
    /// tiles call `slice` once per claim, off the lane-arithmetic hot
    /// path.
    #[cfg(any(debug_assertions, teal_check))]
    handed: std::sync::Mutex<HandedRanges>,
}

/// Fixed-capacity log of the `(start, len)` ranges a [`TileBuf`] has
/// handed out. Inline storage, not a `Vec`: the instrumentation is live
/// in debug builds, where the steady-state zero-allocation test still
/// counts every heap allocation — recording a hand-out must not be one.
/// Capacity is tile count, which `even_bounds_into` clamps to the pool
/// thread budget; 128 leaves an order of magnitude of headroom.
#[cfg(any(debug_assertions, teal_check))]
struct HandedRanges {
    ranges: [(usize, usize); HANDED_CAP],
    n: usize,
}

#[cfg(any(debug_assertions, teal_check))]
const HANDED_CAP: usize = 128;

// SAFETY: the pointer itself is plain data; dereferencing it is gated by
// `slice`'s contract (disjoint ranges, borrow alive across the dispatch),
// which is exactly what makes the views safe to create from any thread.
unsafe impl Send for TileBuf {}
// SAFETY: as above — concurrent `slice` calls hand out non-overlapping
// `&mut`s by contract, and the instrumentation list is mutex-guarded.
unsafe impl Sync for TileBuf {}

impl TileBuf {
    fn new(data: &mut [f64]) -> Self {
        TileBuf {
            ptr: data.as_mut_ptr(),
            #[cfg(any(debug_assertions, teal_check))]
            len: data.len(),
            #[cfg(any(debug_assertions, teal_check))]
            handed: std::sync::Mutex::new(HandedRanges {
                ranges: [(0, 0); HANDED_CAP],
                n: 0,
            }),
        }
    }

    /// Record `start..start + len` and panic if it escapes the buffer or
    /// overlaps any range already handed out by this view.
    #[cfg(any(debug_assertions, teal_check))]
    fn check_range(&self, start: usize, len: usize) {
        assert!(
            start + len <= self.len,
            "TileBuf range [{start}; {len}) escapes a buffer of {}",
            self.len
        );
        let mut handed = self
            .handed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for &(s, l) in &handed.ranges[..handed.n] {
            assert!(
                start + len <= s || s + l <= start,
                "TileBuf ranges overlap: [{start}; {len}) vs [{s}; {l}) — \
                 two tiles would alias the same lanes"
            );
        }
        assert!(
            handed.n < HANDED_CAP,
            "TileBuf handed out more than {HANDED_CAP} ranges; bump HANDED_CAP"
        );
        let n = handed.n;
        handed.ranges[n] = (start, len);
        handed.n = n + 1;
    }

    /// SAFETY: `start..start + len` must be claimed by exactly one tile and
    /// be disjoint from every other range sliced from this `TileBuf`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, start: usize, len: usize) -> &mut [f64] {
        #[cfg(any(debug_assertions, teal_check))]
        self.check_range(start, len);
        // SAFETY: in-bounds per the caller contract (and asserted above in
        // checked builds); disjointness makes the `&mut` unique.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

/// Execute `job(0..tiles)` — inline when serial (or trivially small),
/// otherwise claimed chunk-by-chunk on the shared `teal-nn` worker pool.
/// The pool's caller-participates protocol makes this safe to invoke from
/// inside other pool jobs and a plain loop on single-CPU machines.
fn par_tiles(tiles: usize, serial: bool, job: &(dyn Fn(usize) + Sync)) {
    if serial || tiles <= 1 {
        for t in 0..tiles {
            job(t);
        }
    } else {
        teal_nn::pool::run(tiles, job);
    }
}

/// Split `0..n` into at most `tiles` contiguous ranges, written as boundary
/// offsets into `out` (reused, grow-only).
fn even_bounds_into(n: usize, tiles: usize, out: &mut Vec<usize>) {
    let tiles = tiles.clamp(1, n.max(1));
    let per = n.div_ceil(tiles);
    out.clear();
    out.extend((0..=tiles).map(|t| (t * per).min(n)));
    out.dedup();
}

/// Split edges into contiguous ranges balanced by incidence-entry count, so
/// hub edges do not serialize a whole tile. Boundaries written into `out`.
fn edge_bounds_into(edge_start: &[usize], tiles: usize, out: &mut Vec<usize>) {
    let num_edges = edge_start.len() - 1;
    let total = *edge_start.last().unwrap_or(&0);
    let tiles = tiles.clamp(1, num_edges.max(1));
    let target = total.div_ceil(tiles).max(1);
    out.clear();
    out.push(0);
    let mut next_cut = target;
    for (e, &start) in edge_start.iter().enumerate().take(num_edges).skip(1) {
        if start >= next_cut {
            out.push(e);
            next_cut = start + target;
        }
    }
    out.push(num_edges);
    out.dedup();
}

/// Batched ADMM fine-tuner: repairs a whole window of traffic matrices in
/// **one pass over the shared incidence index per sweep**, instead of one
/// per-matrix solver per thread re-reading the index `batch` times. Minted
/// by [`AdmmSkeleton::batch_solver`]; see the module docs for the SoA
/// layout, parallel tiling, and per-matrix convergence-mask semantics.
///
/// Produces exactly the allocations, iteration counts, and residuals that
/// `batch` independent [`AdmmSolver::run`] calls would (the per-lane
/// arithmetic is identical, operation for operation) — property-tested to
/// 1e-6 in `tests/batch_equivalence.rs`.
pub struct AdmmBatchSolver {
    batch: usize,
    num_demands: usize,
    k: usize,
    num_edges: usize,
    /// Normalized demand volumes, `[demand][lane]`.
    vols: Vec<f64>,
    /// Normalized capacities per edge (shared across lanes).
    caps: Arc<Vec<f64>>,
    /// Normalized per-path objective coefficients, `[path][lane]`.
    vcoef: Vec<f64>,
    /// Shared incidence index.
    index: Arc<AdmmIndex>,
}

impl AdmmBatchSolver {
    /// Number of matrices in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Run ADMM on every lane from its own warm start (each projected onto
    /// the demand constraints first, like [`AdmmSolver::run`]). With
    /// `cfg.tol > 0`, lanes stop independently once their residual clears
    /// the bar (the convergence mask); the rest keep sweeping. Returns the
    /// refined allocations and one report per matrix. One-shot convenience
    /// over [`AdmmBatchSolver::run_batch_into`] with a throwaway arena.
    pub fn run_batch(
        &self,
        inits: &[Allocation],
        cfg: AdmmConfig,
    ) -> (Vec<Allocation>, Vec<AdmmReport>) {
        let mut arena = BatchArena::new();
        let mut outs = Vec::new();
        let mut reports = Vec::new();
        self.run_batch_into(inits, cfg, &mut arena, &mut outs, &mut reports);
        (outs, reports)
    }

    /// Like [`AdmmBatchSolver::run_batch`], but every byte of working state
    /// lives in the caller's [`BatchArena`] and the results land in the
    /// caller's `outs`/`reports` (reused in place when shapes match, else
    /// replaced). With a retained arena and output buffers, the second and
    /// later windows of a steady-state serving loop perform **zero heap
    /// allocations** end to end. Results are identical to
    /// [`AdmmBatchSolver::run_batch`] regardless of what the arena served
    /// before.
    pub fn run_batch_into(
        &self,
        inits: &[Allocation],
        cfg: AdmmConfig,
        arena: &mut BatchArena,
        outs: &mut Vec<Allocation>,
        reports: &mut Vec<AdmmReport>,
    ) {
        assert_eq!(inits.len(), self.batch, "init count != batch size");
        let nb = self.batch;
        let k = self.k;
        let np = self.num_demands * k;
        let npos = self.index.pos_path.len();
        let serial = cfg.serial;
        let threads = if serial {
            1
        } else {
            teal_nn::par::max_threads()
        };
        arena.prepare(self, threads);
        let BatchArena {
            st,
            active,
            iterations,
            residual,
            df,
            dz,
            primal,
            primal_final,
            dual_final,
            dbounds,
            ebounds,
            lane_max,
            scratch,
            stride,
        } = arena;
        let stride = *stride;

        // Warm-start copy plus the per-lane demand projection, done directly
        // in the SoA lanes: same clamp / sum / rescale order as
        // `Allocation::project_demand_constraints`, so the start is bitwise
        // identical to projecting each init and copying it in (without the
        // per-init clone the one-shot path used to mint).
        for (b, init) in inits.iter().enumerate() {
            assert_eq!(init.num_demands(), self.num_demands);
            assert_eq!(init.k(), k);
            for (p, &v) in init.splits().iter().enumerate() {
                st.f[p * nb + b] = v;
            }
        }
        for d in 0..self.num_demands {
            for b in 0..nb {
                let mut sum = 0.0;
                for j in 0..k {
                    let v = &mut st.f[(d * k + j) * nb + b];
                    if !v.is_finite() || *v < 0.0 {
                        *v = 0.0;
                    }
                    sum += *v;
                }
                if sum > 1.0 {
                    for j in 0..k {
                        st.f[(d * k + j) * nb + b] /= sum;
                    }
                }
            }
        }
        // Same near-consistent start as the per-matrix solver: z matches the
        // warm-started flows, slacks absorb the residual capacities.
        for pos in 0..npos {
            let p = self.index.pos_path[pos] as usize;
            let d = p / k;
            for b in 0..nb {
                st.z[pos * nb + b] = st.f[p * nb + b] * self.vols[d * nb + b];
            }
        }
        for d in 0..self.num_demands {
            for b in 0..nb {
                let mut sum = 0.0;
                for j in 0..k {
                    sum += st.f[(d * k + j) * nb + b];
                }
                st.s1[d * nb + b] = (1.0 - sum).max(0.0);
            }
        }
        for e in 0..self.num_edges {
            for b in 0..nb {
                let mut sum = 0.0;
                for pos in self.index.edge_start[e]..self.index.edge_start[e + 1] {
                    sum += st.z[pos * nb + b];
                }
                st.s3[e * nb + b] = (self.caps[e] - sum).max(0.0);
            }
        }

        let rho = cfg.rho;
        for _ in 0..cfg.max_iters {
            let live = active.iter().filter(|&&a| a).count();
            if live == 0 {
                break;
            }
            // All-lanes-active fast path: until the first lane freezes
            // (never, under the paper's fixed-iteration fine-tuning), the
            // commit loops run branch-free over every lane — `None` selects
            // the zip-vectorized variant with no mask test per lane.
            let mask: Option<&[bool]> = if live == nb { None } else { Some(active) };
            self.update_f(
                st, mask, rho, serial, dbounds, scratch, stride, lane_max, df,
            );
            self.update_z(
                st, mask, rho, serial, ebounds, scratch, stride, lane_max, dz,
            );
            self.update_slacks_duals(
                st, mask, rho, serial, dbounds, ebounds, scratch, stride, lane_max, primal,
            );
            for b in 0..nb {
                if !active[b] {
                    continue;
                }
                iterations[b] += 1;
                // Same two-sided test as the per-matrix solver: feasibility
                // (primal) plus a stationary iterate (dual ~ ρ · step).
                primal_final[b] = primal[b];
                dual_final[b] = rho * df[b].max(dz[b]);
                residual[b] = primal_final[b].max(dual_final[b]);
                if cfg.tol > 0.0 && residual[b] < cfg.tol {
                    active[b] = false;
                }
            }
        }

        outs.truncate(nb);
        reports.clear();
        for b in 0..nb {
            if b == outs.len() {
                outs.push(Allocation::zeros(self.num_demands, k));
            } else if outs[b].k() != k || outs[b].splits().len() != np {
                outs[b] = Allocation::zeros(self.num_demands, k);
            }
            let out = &mut outs[b];
            for (p, s) in out.splits_mut().iter_mut().enumerate() {
                *s = st.f[p * nb + b];
            }
            out.project_demand_constraints();
            reports.push(AdmmReport {
                iterations: iterations[b],
                primal_residual: primal_final[b],
                dual_residual: dual_final[b],
            });
        }
    }

    /// Batched per-demand F-update: one walk of each demand's incidence
    /// entries serves every lane. The hot accumulation loops run unmasked
    /// over all lanes (branch-free, zip-vectorized); the convergence mask
    /// is applied only at the commit site — and skipped entirely on the
    /// all-lanes-active fast path (`mask == None`). Writes per-lane max
    /// split change into `out`. All scratch comes from the arena.
    #[allow(clippy::too_many_arguments)]
    fn update_f(
        &self,
        st: &mut BatchState,
        mask: Option<&[bool]>,
        rho: f64,
        serial: bool,
        dbounds: &[usize],
        scratch: &mut [f64],
        stride: usize,
        lane_max: &[std::sync::atomic::AtomicU64],
        out: &mut [f64],
    ) {
        let nb = self.batch;
        let k = self.k;
        lane_reset(lane_max);
        let fbuf = TileBuf::new(&mut st.f);
        let sbuf = TileBuf::new(scratch);
        let (z, s1, l1, l4) = (&st.z, &st.s1, &st.l1, &st.l4);
        let idx = &*self.index;
        par_tiles(dbounds.len() - 1, serial, &|t| {
            let (d0, d1) = (dbounds[t], dbounds[t + 1]);
            // SAFETY: demand tiles are disjoint, so each tile owns its rows.
            let rows = unsafe { fbuf.slice(d0 * k * nb, (d1 - d0) * k * nb) };
            // SAFETY: tile `t` owns scratch positions `t*stride..(t+1)*stride`.
            let tile = unsafe { sbuf.slice(t * stride, stride) };
            let (b, tile) = tile.split_at_mut(k * nb);
            let (diag, tile) = tile.split_at_mut(k * nb);
            let (sum_binv, tile) = tile.split_at_mut(nb);
            let (sum_inv, tile) = tile.split_at_mut(nb);
            let (corr, tile) = tile.split_at_mut(nb);
            let (local, _) = tile.split_at_mut(nb);
            local.fill(0.0);
            for d in d0..d1 {
                let vols_d = &self.vols[d * nb..(d + 1) * nb];
                let s1_d = &s1[d * nb..(d + 1) * nb];
                let l1_d = &l1[d * nb..(d + 1) * nb];
                for j in 0..k {
                    let p = d * k + j;
                    // Path p's entry ids are contiguous; its incidence walk
                    // is one linear scan of the `entry_pos` arena slice.
                    let ents = &idx.entry_pos[idx.path_start[p]..idx.path_start[p + 1]];
                    let bj = &mut b[j * nb..(j + 1) * nb];
                    let vc = &self.vcoef[p * nb..(p + 1) * nb];
                    for (bv, ((&vcv, &l1v), &s1v)) in
                        bj.iter_mut().zip(vc.iter().zip(l1_d).zip(s1_d))
                    {
                        *bv = vcv - l1v - rho * (s1v - 1.0);
                    }
                    for &pos in ents {
                        let pos = pos as usize;
                        let l4p = &l4[pos * nb..(pos + 1) * nb];
                        let zp = &z[pos * nb..(pos + 1) * nb];
                        for (bv, (&vol, (&l4v, &zv))) in
                            bj.iter_mut().zip(vols_d.iter().zip(l4p.iter().zip(zp)))
                        {
                            *bv += -l4v * vol + rho * vol * zv;
                        }
                    }
                    let len = ents.len() as f64;
                    for (dj, &vol) in diag[j * nb..(j + 1) * nb].iter_mut().zip(vols_d) {
                        *dj = rho * vol * vol * len;
                    }
                }
                sum_binv.fill(0.0);
                sum_inv.fill(0.0);
                for j in 0..k {
                    let bj = &b[j * nb..(j + 1) * nb];
                    let dj = &diag[j * nb..(j + 1) * nb];
                    for ((sb, si), (&bv, &dv)) in sum_binv
                        .iter_mut()
                        .zip(sum_inv.iter_mut())
                        .zip(bj.iter().zip(dj))
                    {
                        *sb += bv / dv;
                        *si += 1.0 / dv;
                    }
                }
                // Sherman-Morrison solve of (diag + rho*11^T) x = b.
                for ((cv, &sb), &si) in corr.iter_mut().zip(sum_binv.iter()).zip(sum_inv.iter()) {
                    *cv = rho * sb / (1.0 + rho * si);
                }
                for j in 0..k {
                    let bj = &b[j * nb..(j + 1) * nb];
                    let dj = &diag[j * nb..(j + 1) * nb];
                    let row = &mut rows[((d - d0) * k + j) * nb..((d - d0) * k + j + 1) * nb];
                    match mask {
                        // Fast path: every lane commits, no mask branch.
                        None => {
                            for ((rv, lv), ((&bv, &dv), (&vol, &cv))) in row
                                .iter_mut()
                                .zip(local.iter_mut())
                                .zip(bj.iter().zip(dj).zip(vols_d.iter().zip(&*corr)))
                            {
                                let x = if vol <= 0.0 {
                                    0.0
                                } else {
                                    ((bv - cv) / dv).clamp(0.0, 1.0)
                                };
                                *lv = lv.max((x - *rv).abs());
                                *rv = x;
                            }
                        }
                        Some(active) => {
                            for lane in 0..nb {
                                if !active[lane] {
                                    continue;
                                }
                                let x = if vols_d[lane] <= 0.0 {
                                    0.0
                                } else {
                                    ((bj[lane] - corr[lane]) / dj[lane]).clamp(0.0, 1.0)
                                };
                                local[lane] = local[lane].max((x - row[lane]).abs());
                                row[lane] = x;
                            }
                        }
                    }
                }
            }
            lane_fold(lane_max, local);
        });
        lane_read(lane_max, out);
    }

    /// Batched per-edge z-update. Edge-major storage lets each tile write
    /// its edges' entries in place — no scratch copy of `z`, no atomics.
    /// Writes per-lane max auxiliary change into `out`.
    #[allow(clippy::too_many_arguments)]
    fn update_z(
        &self,
        st: &mut BatchState,
        mask: Option<&[bool]>,
        rho: f64,
        serial: bool,
        ebounds: &[usize],
        scratch: &mut [f64],
        stride: usize,
        lane_max: &[std::sync::atomic::AtomicU64],
        out: &mut [f64],
    ) {
        let nb = self.batch;
        let k = self.k;
        lane_reset(lane_max);
        let zbuf = TileBuf::new(&mut st.z);
        let sbuf = TileBuf::new(scratch);
        let (f, s3, l3, l4) = (&st.f, &st.s3, &st.l3, &st.l4);
        let idx = &*self.index;
        par_tiles(ebounds.len() - 1, serial, &|t| {
            let (e0, e1) = (ebounds[t], ebounds[t + 1]);
            let base = idx.edge_start[e0];
            // SAFETY: edge tiles own disjoint position ranges of `z`.
            let ztile = unsafe { zbuf.slice(base * nb, (idx.edge_start[e1] - base) * nb) };
            // SAFETY: tile `t` owns scratch positions `t*stride..(t+1)*stride`.
            let tile = unsafe { sbuf.slice(t * stride, stride) };
            let (bs, tile) = tile.split_at_mut(idx.max_edge_entries * nb);
            let (corr, tile) = tile.split_at_mut(nb);
            let (local, _) = tile.split_at_mut(nb);
            local.fill(0.0);
            for e in e0..e1 {
                let (q0, q1) = (idx.edge_start[e], idx.edge_start[e + 1]);
                if q0 == q1 {
                    continue;
                }
                let n = (q1 - q0) as f64;
                corr.fill(0.0);
                let caps_e = self.caps[e];
                let s3_e = &s3[e * nb..(e + 1) * nb];
                let l3_e = &l3[e * nb..(e + 1) * nb];
                for (r, pos) in (q0..q1).enumerate() {
                    let p = idx.pos_path[pos] as usize;
                    let vols_d = &self.vols[(p / k) * nb..(p / k + 1) * nb];
                    let fp = &f[p * nb..(p + 1) * nb];
                    let l4p = &l4[pos * nb..(pos + 1) * nb];
                    let row = &mut bs[r * nb..(r + 1) * nb];
                    for ((bv, cv), (((&vol, &fv), &l4v), (&s3v, &l3v))) in row
                        .iter_mut()
                        .zip(corr.iter_mut())
                        .zip(vols_d.iter().zip(fp).zip(l4p).zip(s3_e.iter().zip(l3_e)))
                    {
                        let bval = -l3v - rho * (s3v - caps_e) + l4v + rho * fv * vol;
                        *bv = bval;
                        *cv += bval;
                    }
                }
                for c in corr.iter_mut() {
                    *c = *c / rho / (1.0 + n);
                }
                for (r, pos) in (q0..q1).enumerate() {
                    let row = &bs[r * nb..(r + 1) * nb];
                    let zrow = &mut ztile[(pos - base) * nb..(pos - base + 1) * nb];
                    match mask {
                        // Fast path: every lane commits, no mask branch.
                        None => {
                            for ((zv, lv), (&bv, &cv)) in zrow
                                .iter_mut()
                                .zip(local.iter_mut())
                                .zip(row.iter().zip(&*corr))
                            {
                                let zi = bv / rho - cv;
                                *lv = lv.max((zi - *zv).abs());
                                *zv = zi;
                            }
                        }
                        Some(active) => {
                            for lane in 0..nb {
                                if !active[lane] {
                                    continue;
                                }
                                let zi = row[lane] / rho - corr[lane];
                                local[lane] = local[lane].max((zi - zrow[lane]).abs());
                                zrow[lane] = zi;
                            }
                        }
                    }
                }
            }
            lane_fold(lane_max, local);
        });
        lane_read(lane_max, out);
    }

    /// Fused batched slack projections + dual ascent: one demand-tiled pass
    /// (s1, λ1) and one edge-tiled pass (s3, λ3, λ4 — each edge owns its λ4
    /// positions). The per-subproblem arithmetic is exactly the per-matrix
    /// solver's; fusing is legal because no quantity crosses subproblems.
    /// Writes per-lane max primal residual into `out`.
    #[allow(clippy::too_many_arguments)]
    fn update_slacks_duals(
        &self,
        st: &mut BatchState,
        mask: Option<&[bool]>,
        rho: f64,
        serial: bool,
        dbounds: &[usize],
        ebounds: &[usize],
        scratch: &mut [f64],
        stride: usize,
        lane_max: &[std::sync::atomic::AtomicU64],
        out: &mut [f64],
    ) {
        let nb = self.batch;
        let k = self.k;
        lane_reset(lane_max);
        let idx = &*self.index;

        {
            // Fresh scratch view per dispatch: the edge pass below reuses
            // the same `t * stride` ranges, which is fine sequentially but
            // must not look like an overlap to one view's checker.
            let sbuf = TileBuf::new(&mut *scratch);
            let s1buf = TileBuf::new(&mut st.s1);
            let l1buf = TileBuf::new(&mut st.l1);
            let f = &st.f;
            par_tiles(dbounds.len() - 1, serial, &|t| {
                let (d0, d1) = (dbounds[t], dbounds[t + 1]);
                // SAFETY: demand tiles own disjoint ranges of s1/l1.
                let s1 = unsafe { s1buf.slice(d0 * nb, (d1 - d0) * nb) };
                let l1 = unsafe { l1buf.slice(d0 * nb, (d1 - d0) * nb) };
                // SAFETY: tile `t` owns its scratch range.
                let tile = unsafe { sbuf.slice(t * stride, stride) };
                let (sum, tile) = tile.split_at_mut(nb);
                let (local, _) = tile.split_at_mut(nb);
                local.fill(0.0);
                for d in d0..d1 {
                    sum.fill(0.0);
                    for j in 0..k {
                        let fr = &f[(d * k + j) * nb..(d * k + j + 1) * nb];
                        for (sv, &fv) in sum.iter_mut().zip(fr) {
                            *sv += fv;
                        }
                    }
                    let s1_d = &mut s1[(d - d0) * nb..(d - d0 + 1) * nb];
                    let l1_d = &mut l1[(d - d0) * nb..(d - d0 + 1) * nb];
                    match mask {
                        // Fast path: every lane commits, no mask branch.
                        None => {
                            for ((sv, lv), (&su, lc)) in s1_d
                                .iter_mut()
                                .zip(l1_d.iter_mut())
                                .zip(sum.iter().zip(local.iter_mut()))
                            {
                                let s = (1.0 - su - *lv / rho).max(0.0);
                                *sv = s;
                                let g = su + s - 1.0;
                                *lv += rho * g;
                                *lc = lc.max(g.abs());
                            }
                        }
                        Some(active) => {
                            for lane in 0..nb {
                                if !active[lane] {
                                    continue;
                                }
                                let s = (1.0 - sum[lane] - l1_d[lane] / rho).max(0.0);
                                s1_d[lane] = s;
                                let g = sum[lane] + s - 1.0;
                                l1_d[lane] += rho * g;
                                local[lane] = local[lane].max(g.abs());
                            }
                        }
                    }
                }
                lane_fold(lane_max, local);
            });
        }

        {
            let sbuf = TileBuf::new(&mut *scratch);
            let s3buf = TileBuf::new(&mut st.s3);
            let l3buf = TileBuf::new(&mut st.l3);
            let l4buf = TileBuf::new(&mut st.l4);
            let (f, z) = (&st.f, &st.z);
            par_tiles(ebounds.len() - 1, serial, &|t| {
                let (e0, e1) = (ebounds[t], ebounds[t + 1]);
                let base = idx.edge_start[e0];
                // SAFETY: edge tiles own disjoint ranges of s3/l3 and (via
                // edge_start) of the edge-major l4 positions.
                let s3 = unsafe { s3buf.slice(e0 * nb, (e1 - e0) * nb) };
                let l3 = unsafe { l3buf.slice(e0 * nb, (e1 - e0) * nb) };
                let l4 = unsafe { l4buf.slice(base * nb, (idx.edge_start[e1] - base) * nb) };
                // SAFETY: tile `t` owns its scratch range (the demand pass
                // above has fully completed before this dispatch starts).
                let tile = unsafe { sbuf.slice(t * stride, stride) };
                let (sum, tile) = tile.split_at_mut(nb);
                let (local, _) = tile.split_at_mut(nb);
                local.fill(0.0);
                for e in e0..e1 {
                    let (q0, q1) = (idx.edge_start[e], idx.edge_start[e + 1]);
                    sum.fill(0.0);
                    for pos in q0..q1 {
                        let zp = &z[pos * nb..(pos + 1) * nb];
                        for (sv, &zv) in sum.iter_mut().zip(zp) {
                            *sv += zv;
                        }
                    }
                    let caps_e = self.caps[e];
                    let s3_e = &mut s3[(e - e0) * nb..(e - e0 + 1) * nb];
                    let l3_e = &mut l3[(e - e0) * nb..(e - e0 + 1) * nb];
                    match mask {
                        // Fast path: every lane commits, no mask branch.
                        None => {
                            for ((sv, lv), (&su, lc)) in s3_e
                                .iter_mut()
                                .zip(l3_e.iter_mut())
                                .zip(sum.iter().zip(local.iter_mut()))
                            {
                                let s = (caps_e - su - *lv / rho).max(0.0);
                                *sv = s;
                                let g = su + s - caps_e;
                                *lv += rho * g;
                                *lc = lc.max(g.abs());
                            }
                        }
                        Some(active) => {
                            for lane in 0..nb {
                                if !active[lane] {
                                    continue;
                                }
                                let s = (caps_e - sum[lane] - l3_e[lane] / rho).max(0.0);
                                s3_e[lane] = s;
                                let g = sum[lane] + s - caps_e;
                                l3_e[lane] += rho * g;
                                local[lane] = local[lane].max(g.abs());
                            }
                        }
                    }
                    for pos in q0..q1 {
                        let p = idx.pos_path[pos] as usize;
                        let vols_d = &self.vols[(p / k) * nb..(p / k + 1) * nb];
                        let fp = &f[p * nb..(p + 1) * nb];
                        let zp = &z[pos * nb..(pos + 1) * nb];
                        let l4p = &mut l4[(pos - base) * nb..(pos - base + 1) * nb];
                        match mask {
                            // Fast path: every lane commits, no mask branch.
                            None => {
                                for ((lv, lc), ((&fv, &vol), &zv)) in l4p
                                    .iter_mut()
                                    .zip(local.iter_mut())
                                    .zip(fp.iter().zip(vols_d).zip(zp))
                                {
                                    let g4 = fv * vol - zv;
                                    *lv += rho * g4;
                                    *lc = lc.max(g4.abs());
                                }
                            }
                            Some(active) => {
                                for lane in 0..nb {
                                    if !active[lane] {
                                        continue;
                                    }
                                    let g4 = fp[lane] * vols_d[lane] - zp[lane];
                                    l4p[lane] += rho * g4;
                                    local[lane] = local[lane].max(g4.abs());
                                }
                            }
                        }
                    }
                }
                lane_fold(lane_max, local);
            });
        }
        lane_read(lane_max, out);
    }
}

/// Minimal scoped-thread helpers for the per-matrix solver. The batched
/// solver runs on the persistent [`teal_nn::pool`] instead; these stay on
/// crossbeam scopes because the Figure-2 racing experiment needs each racer
/// to own plain threads rather than share the global pool.
fn par_chunks_indexed<T: Send, F>(data: &mut [T], min_chunk: usize, serial: bool, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = if serial {
        1
    } else {
        hw.min(8).min(len.div_ceil(min_chunk)).max(1)
    };
    if threads <= 1 {
        f(0, data);
        return;
    }
    let mut chunk = len.div_ceil(threads);
    // Keep chunk a multiple of min_chunk so row groups stay intact.
    chunk = chunk.div_ceil(min_chunk) * min_chunk;
    crossbeam::scope(|s| {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move |_| f(i * chunk, c));
        }
    })
    .expect("admm worker panicked");
}

fn par_iter<T: Sync, F>(items: &[T], min_chunk: usize, serial: bool, f: F)
where
    F: Fn(&T) + Sync,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = if serial {
        1
    } else {
        hw.min(8).min(len.div_ceil(min_chunk)).max(1)
    };
    if threads <= 1 {
        items.iter().for_each(&f);
        return;
    }
    let chunk = len.div_ceil(threads);
    crossbeam::scope(|s| {
        for c in items.chunks(chunk) {
            let f = &f;
            s.spawn(move |_| c.iter().for_each(f));
        }
    })
    .expect("admm worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::evaluate;
    use crate::simplex;
    use teal_topology::{PathSet, Topology};
    use teal_traffic::TrafficMatrix;

    fn diamond() -> Topology {
        let mut t = Topology::new("d", 4);
        t.add_link(0, 1, 10.0, 1.0);
        t.add_link(1, 3, 10.0, 1.0);
        t.add_link(0, 2, 10.0, 1.5);
        t.add_link(2, 3, 10.0, 1.5);
        t.add_link(0, 3, 5.0, 4.0);
        t
    }

    /// Exact optimum of the same LP via simplex, for comparison.
    fn simplex_optimum(inst: &TeInstance) -> f64 {
        let k = inst.k();
        let vc = inst.value_coefficients(Objective::TotalFlow);
        let mut rows = Vec::new();
        for d in 0..inst.num_demands() {
            let coeffs = (0..k).map(|j| (d * k + j, 1.0)).collect();
            rows.push(simplex::Row { coeffs, rhs: 1.0 });
        }
        for e in 0..inst.topo.num_edges() {
            let plist = inst.paths.paths_on_edge(e);
            if plist.is_empty() {
                continue;
            }
            let coeffs = plist
                .iter()
                .map(|&p| (p as usize, inst.tm.demand(p as usize / k)))
                .collect();
            rows.push(simplex::Row {
                coeffs,
                rhs: inst.topo.edge(e).capacity,
            });
        }
        let r = simplex::solve(&vc, &rows, 50_000);
        assert_eq!(r.status, simplex::SimplexStatus::Optimal);
        r.objective
    }

    #[test]
    fn admm_converges_to_lp_optimum_single_demand() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        // Demand exceeds single-path capacity: optimum uses all 25 units of
        // cut capacity.
        let tm = TrafficMatrix::new(vec![30.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        let (alloc, report) = solver.run(&Allocation::zeros(1, 4), AdmmConfig::to_convergence());
        let stats = evaluate(&inst, &alloc);
        let opt = simplex_optimum(&inst);
        assert!(
            stats.realized_flow > 0.95 * opt,
            "admm {} vs simplex {} (residual {})",
            stats.realized_flow,
            opt,
            report.primal_residual
        );
        assert!(alloc.demand_feasible(1e-6));
    }

    #[test]
    fn admm_matches_simplex_multi_demand() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize), (1usize, 2usize), (3usize, 0usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![12.0, 9.0, 15.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        let (alloc, _) = solver.run(&Allocation::zeros(3, 4), AdmmConfig::to_convergence());
        let got = evaluate(&inst, &alloc).realized_flow;
        let opt = simplex_optimum(&inst);
        assert!(got > 0.93 * opt, "admm {got} vs simplex {opt}");
    }

    #[test]
    fn few_iterations_reduce_violations_of_bad_start() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![40.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        // Grossly infeasible warm start: everything on every path.
        let bad = Allocation::from_splits(4, vec![1.0, 1.0, 1.0, 1.0]);
        let mut bad_proj = bad.clone();
        bad_proj.project_demand_constraints();
        let before = evaluate(&inst, &bad_proj).total_overuse;
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        let (tuned, _) = solver.run(
            &bad,
            AdmmConfig {
                rho: 1.0,
                max_iters: 5,
                tol: 0.0,
                serial: false,
            },
        );
        let after = evaluate(&inst, &tuned).total_overuse;
        assert!(after < before, "overuse before {before}, after {after}");
    }

    #[test]
    fn warm_start_speeds_convergence() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize), (1usize, 2usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![18.0, 6.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        // Near-optimal warm start.
        let (near_opt, _) = solver.run(&Allocation::zeros(2, 4), AdmmConfig::to_convergence());
        let opt_flow = evaluate(&inst, &near_opt).realized_flow;
        let cfg5 = AdmmConfig {
            rho: 1.0,
            max_iters: 5,
            tol: 0.0,
            serial: false,
        };
        let (from_warm, _) = solver.run(&near_opt, cfg5);
        let warm_flow = evaluate(&inst, &from_warm).realized_flow;
        // Five fine-tuning iterations on a near-optimal warm start must
        // preserve near-optimality (the property §3.4 relies on).
        assert!(
            warm_flow >= 0.90 * opt_flow,
            "warm 5-iter flow {warm_flow} degraded from optimum {opt_flow}"
        );
    }

    #[test]
    fn batch_solver_matches_per_matrix_runs() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize), (1usize, 2usize), (3usize, 0usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let skel = AdmmSkeleton::new(&topo, &paths, Objective::TotalFlow);
        let tms = [
            TrafficMatrix::new(vec![12.0, 9.0, 15.0]),
            TrafficMatrix::new(vec![1.0, 0.0, 30.0]),
            TrafficMatrix::new(vec![0.0, 0.0, 0.0]),
        ];
        let inits = [
            Allocation::shortest_path(3, 4),
            Allocation::zeros(3, 4),
            Allocation::from_splits(4, vec![1.0; 12]),
        ];
        // tol > 0 exercises the convergence mask: lanes stop independently.
        let cfg = AdmmConfig {
            rho: 1.0,
            max_iters: 200,
            tol: 1e-4,
            serial: false,
        };
        let (outs, reps) = skel.batch_solver(&tms).run_batch(&inits, cfg);
        for b in 0..tms.len() {
            let (want, wrep) = skel.solver(&tms[b]).run(&inits[b], cfg);
            assert_eq!(
                reps[b].iterations, wrep.iterations,
                "lane {b} iteration count diverged"
            );
            for (x, y) in outs[b].splits().iter().zip(want.splits()) {
                assert!(
                    (x - y).abs() <= 1e-9,
                    "lane {b}: batched {x} vs per-matrix {y}"
                );
            }
        }
    }

    #[test]
    fn zero_demand_yields_zero_allocation() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![0.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let solver = AdmmSolver::new(&inst, Objective::TotalFlow);
        let (alloc, _) = solver.run(
            &Allocation::shortest_path(1, 4),
            AdmmConfig::to_convergence(),
        );
        assert!(alloc.splits().iter().all(|&v| v == 0.0));
    }
}

//! Criterion bench: large-WAN scale envelope. Generated scale-free
//! topologies ([`large_wan`]) at 256 / 512 / 1,024 nodes with
//! gravity-sampled demand pairs, measuring the three costs that matter at
//! scale:
//!
//! * `precompute_paths` — the once-per-topology KSP precompute (amortized
//!   over the serving lifetime, benched at the smallest size);
//! * `forward_only` — one batched FlowGNN forward window, exercising the
//!   cache-blocked incidence SpMM;
//! * `window` — the headline: one full serving window (forward + batched
//!   warm-started ADMM over the flat incidence arena). The acceptance bar
//!   for the scale PR: `window/LargeWAN-1024x8` mean under one second.
//!
//! Run with `CRITERION_JSON_PATH=BENCH_scale.json` to persist the results
//! the CI workflow publishes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use teal_core::{EngineConfig, Env, TealConfig, TealEngine, TealModel};
use teal_topology::{gravity_pairs, large_wan, PathSet};
use teal_traffic::{TrafficConfig, TrafficModel};

/// Traffic matrices per serving window.
const WINDOW: usize = 8;
/// Generator / traffic seed (fixed: the bench compares kernels, not seeds).
const SEED: u64 = 7;

fn setup(n: usize) -> (Arc<Env>, Vec<teal_traffic::TrafficMatrix>) {
    let topo = large_wan(n, SEED);
    let pairs = gravity_pairs(&topo, 2 * n, SEED ^ 1);
    let paths = PathSet::compute(&topo, &pairs, 4);
    let mut traffic = TrafficModel::new(&pairs, TrafficConfig::default(), SEED);
    let env = Arc::new(Env::new(topo, paths));
    traffic.calibrate(env.topo(), env.paths());
    let tms = traffic.series(0, WINDOW);
    (env, tms)
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    // Once-per-topology path precompute, at the smallest size so the bench
    // stays fast; scratch-reusing Yen's makes this linear-ish in pairs.
    {
        let topo = large_wan(256, SEED);
        let pairs = gravity_pairs(&topo, 512, SEED ^ 1);
        group.bench_with_input(
            BenchmarkId::new("precompute_paths", "LargeWAN-256x512pairs"),
            &(),
            |b, _| b.iter(|| PathSet::compute(&topo, &pairs, 4)),
        );
    }

    for &n in &[256usize, 512, 1024] {
        let (env, tms) = setup(n);
        let label = format!("LargeWAN-{n}x{WINDOW}");

        let model_only = TealEngine::new(
            TealModel::new(Arc::clone(&env), TealConfig::default()),
            EngineConfig::without_admm(teal_lp::Objective::TotalFlow),
        );
        group.bench_with_input(BenchmarkId::new("forward_only", &label), &(), |b, _| {
            b.iter(|| model_only.allocate_batch(&tms).0)
        });

        let engine = TealEngine::new(
            TealModel::new(Arc::clone(&env), TealConfig::default()),
            EngineConfig::paper_default(env.topo().num_nodes()),
        );
        group.bench_with_input(BenchmarkId::new("window", &label), &(), |b, _| {
            b.iter(|| engine.allocate_batch(&tms).0)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);

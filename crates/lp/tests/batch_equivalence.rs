//! Property tests: [`AdmmBatchSolver`] ≡ per-matrix [`AdmmSolver`] to 1e-6.
//!
//! The batched sweep is a layout/parallelism transformation — no ADMM
//! quantity couples two matrices — so every lane of a batched run must
//! reproduce what its own per-matrix `AdmmSolver::run` would produce: same
//! splits, same iteration counts under early stopping (the convergence
//! mask), on random topologies, heterogeneous demand volumes, both linear
//! objectives, and failure-modified (zero-capacity) capacity vectors. In
//! the spirit of the commutativity-rule line of work, the two paths commute
//! by construction and that equivalence is machine-checked here.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teal_lp::{AdmmBatchSolver, AdmmConfig, AdmmSkeleton, Allocation, BatchArena, Objective};
use teal_topology::{gravity_pairs, large_wan, PathSet, Topology};
use teal_traffic::TrafficMatrix;

/// The batch sizes the issue calls out: singleton, tiny, odd, and a full
/// serving window.
const BATCH_SIZES: [usize; 4] = [1, 2, 7, 16];

/// Random connected topology: a ring (guarantees strong connectivity) plus
/// random chords, with heterogeneous capacities.
fn random_topology(n: usize, extra_links: usize, rng: &mut StdRng) -> Topology {
    let mut t = Topology::new("rand", n);
    for a in 0..n {
        let b = (a + 1) % n;
        t.add_link(a, b, rng.gen_range(5.0..60.0), rng.gen_range(1.0..3.0));
    }
    for _ in 0..extra_links {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !t.has_link(a, b) {
            t.add_link(a, b, rng.gen_range(5.0..60.0), rng.gen_range(1.0..3.0));
        }
    }
    t
}

/// A random problem: topology, candidate paths for a sampled demand set,
/// and the objective under test.
fn random_problem(seed: u64, obj: Objective) -> (Topology, PathSet, AdmmSkeleton, usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..9);
    let topo = random_topology(n, rng.gen_range(0..2 * n), &mut rng);
    let mut pairs = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b && rng.gen_range(0.0..1.0) < 0.35 {
                pairs.push((a, b));
            }
        }
    }
    if pairs.is_empty() {
        pairs.push((0, n / 2 + 1));
    }
    pairs.truncate(10);
    let k = rng.gen_range(2..5);
    let paths = PathSet::compute(&topo, &pairs, k);
    let skel = AdmmSkeleton::new(&topo, &paths, obj);
    let nd = paths.num_demands();
    (topo, paths, skel, nd, k)
}

/// Heterogeneous traffic window: volumes span zero, light, and saturating,
/// so lanes behave differently (and converge at different iterations).
fn random_window(nb: usize, nd: usize, rng: &mut StdRng) -> Vec<TrafficMatrix> {
    (0..nb)
        .map(|_| {
            TrafficMatrix::new(
                (0..nd)
                    .map(|_| {
                        if rng.gen_range(0.0..1.0) < 0.15 {
                            0.0
                        } else {
                            rng.gen_range(0.1..80.0)
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Random (pre-projection) warm starts, like a raw model output.
fn random_inits(nb: usize, nd: usize, k: usize, rng: &mut StdRng) -> Vec<Allocation> {
    (0..nb)
        .map(|_| Allocation::from_splits(k, (0..nd * k).map(|_| rng.gen_range(0.0..1.2)).collect()))
        .collect()
}

/// Core assertion: one batched run ≡ `nb` per-matrix runs, splits to 1e-6
/// and identical iteration counts (exercised by tol > 0 configs).
fn assert_batch_matches(
    skel: &AdmmSkeleton,
    tms: &[TrafficMatrix],
    inits: &[Allocation],
    cfg: AdmmConfig,
) -> Result<(), String> {
    let (outs, reps) = skel.batch_solver(tms).run_batch(inits, cfg);
    for (b, tm) in tms.iter().enumerate() {
        let (want, wrep) = skel.solver(tm).run(&inits[b], cfg);
        prop_assert_eq!(
            reps[b].iterations,
            wrep.iterations,
            "lane {} iterations: batched {} vs per-matrix {}",
            b,
            reps[b].iterations,
            wrep.iterations
        );
        for (p, (x, y)) in outs[b].splits().iter().zip(want.splits()).enumerate() {
            prop_assert!(
                (x - y).abs() <= 1e-6,
                "lane {} split {}: batched {} vs per-matrix {}",
                b,
                p,
                x,
                y
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Paper fine-tuning setting (fixed 2–5 iterations, no early stop),
    /// TotalFlow, all four batch sizes.
    #[test]
    fn fine_tune_total_flow_matches(seed in 0u64..1_000_000, iters in 2usize..6) {
        let (_topo, _paths, skel, nd, k) = random_problem(seed, Objective::TotalFlow);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c);
        let cfg = AdmmConfig { rho: 1.0, max_iters: iters, tol: 0.0, serial: false };
        for &nb in &BATCH_SIZES {
            let tms = random_window(nb, nd, &mut rng);
            let inits = random_inits(nb, nd, k, &mut rng);
            assert_batch_matches(&skel, &tms, &inits, cfg)?;
        }
    }

    /// Delay-penalized objective: per-path discounts flow through vcoef; the
    /// batched lanes must see exactly the same discounted coefficients.
    #[test]
    fn fine_tune_delay_penalized_matches(seed in 0u64..1_000_000, gamma in 0.05f64..0.9) {
        let (_topo, _paths, skel, nd, k) =
            random_problem(seed, Objective::DelayPenalizedFlow(gamma));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xde1a);
        let cfg = AdmmConfig { rho: 1.0, max_iters: 4, tol: 0.0, serial: false };
        for &nb in &BATCH_SIZES {
            let tms = random_window(nb, nd, &mut rng);
            let inits = random_inits(nb, nd, k, &mut rng);
            assert_batch_matches(&skel, &tms, &inits, cfg)?;
        }
    }

    /// Early stopping: tol > 0 makes lanes drop out of the sweeps at
    /// different iterations — the convergence mask must freeze each lane
    /// exactly where its own per-matrix run would stop.
    #[test]
    fn convergence_mask_matches_early_stopping(seed in 0u64..1_000_000) {
        let (_topo, _paths, skel, nd, k) = random_problem(seed, Objective::TotalFlow);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70f1);
        let cfg = AdmmConfig { rho: 1.0, max_iters: 300, tol: 1e-4, serial: false };
        for &nb in &[2usize, 7] {
            let tms = random_window(nb, nd, &mut rng);
            let inits = random_inits(nb, nd, k, &mut rng);
            assert_batch_matches(&skel, &tms, &inits, cfg)?;
        }
    }

    /// Failure topologies (§5.3): random links zeroed through
    /// `AdmmSkeleton::with_topology` — the batched path must track the
    /// per-matrix path on the degraded capacity vector too.
    #[test]
    fn failed_links_match(seed in 0u64..1_000_000, fail_frac in 0.05f64..0.4) {
        let (topo, _paths, skel, nd, k) = random_problem(seed, Objective::TotalFlow);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa11);
        let failed: Vec<usize> = (0..topo.num_edges())
            .filter(|_| rng.gen_range(0.0..1.0) < fail_frac)
            .collect();
        let degraded = topo.with_failed_edges(&failed);
        let skel = skel.with_topology(&degraded);
        let cfg = AdmmConfig { rho: 1.0, max_iters: 5, tol: 0.0, serial: false };
        for &nb in &[1usize, 7] {
            let tms = random_window(nb, nd, &mut rng);
            let inits = random_inits(nb, nd, k, &mut rng);
            assert_batch_matches(&skel, &tms, &inits, cfg)?;
        }
    }

    /// Arena reuse across windows: one retained [`BatchArena`] + solver +
    /// output buffers serving a sequence of windows (batch sizes shrink and
    /// grow, and the skeleton's capacity vector is swapped mid-sequence —
    /// the lp-level analog of a serving hot swap) must produce *bitwise*
    /// what a fresh `run_batch` produces for each window. Nothing may leak
    /// from one window's state into the next through the arena.
    #[test]
    fn arena_reuse_across_windows_matches_fresh(seed in 0u64..1_000_000) {
        let (topo, _paths, skel, nd, k) = random_problem(seed, Objective::TotalFlow);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa12e);
        // tol > 0 so the convergence mask (and its all-lanes fast path
        // hand-off) is exercised across reused buffers.
        let cfg = AdmmConfig { rho: 1.0, max_iters: 60, tol: 1e-4, serial: false };
        let degraded = topo.with_failed_edges(&[0]);
        let swapped = skel.with_topology(&degraded);
        let mut arena = BatchArena::new();
        let mut outs = Vec::new();
        let mut reports = Vec::new();
        let mut solver: Option<AdmmBatchSolver> = None;
        for (w, &nb) in [3usize, 7, 1, 7, 4].iter().enumerate() {
            // Swap to the degraded capacities from window 2 on; the arena
            // and output buffers carry over untouched.
            let skel_w = if w >= 2 { &swapped } else { &skel };
            let tms = random_window(nb, nd, &mut rng);
            let inits = random_inits(nb, nd, k, &mut rng);
            match solver.as_mut() {
                Some(s) => skel_w.remint_batch_solver(s, &tms),
                None => solver = Some(skel_w.batch_solver(&tms)),
            }
            solver.as_ref().expect("minted").run_batch_into(
                &inits, cfg, &mut arena, &mut outs, &mut reports,
            );
            let (fresh_outs, fresh_reps) = skel_w.batch_solver(&tms).run_batch(&inits, cfg);
            prop_assert_eq!(outs.len(), nb);
            for b in 0..nb {
                prop_assert_eq!(
                    reports[b].iterations, fresh_reps[b].iterations,
                    "window {} lane {}: reused-arena iterations diverged", w, b
                );
                for (p, (x, y)) in outs[b].splits().iter().zip(fresh_outs[b].splits()).enumerate() {
                    prop_assert!(
                        x == y,
                        "window {} lane {} split {}: reused {} vs fresh {}",
                        w, b, p, x, y
                    );
                }
            }
        }
    }

    /// Generated large-WAN instances: the flat path/edge index arena built
    /// from scale-free topologies (hub edges carry hundreds of paths, so
    /// per-edge entry runs are long and uneven) must preserve batched ≡
    /// per-matrix equivalence just like the small ring instances.
    #[test]
    fn large_wan_batch_matches(seed in 0u64..1_000_000, n in 64usize..128) {
        let topo = large_wan(n, seed);
        let pairs = gravity_pairs(&topo, 2 * n, seed ^ 0x1a2);
        let paths = PathSet::compute(&topo, &pairs, 3);
        let skel = AdmmSkeleton::new(&topo, &paths, Objective::TotalFlow);
        let (nd, k) = (paths.num_demands(), paths.k());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1a3);
        let cfg = AdmmConfig { rho: 1.0, max_iters: 3, tol: 0.0, serial: false };
        for &nb in &[1usize, 4] {
            let tms = random_window(nb, nd, &mut rng);
            let inits = random_inits(nb, nd, k, &mut rng);
            assert_batch_matches(&skel, &tms, &inits, cfg)?;
        }
    }

    /// The serial flag must not change results, only scheduling — and a
    /// serial batched run must still match the per-matrix solver.
    #[test]
    fn serial_and_parallel_batched_agree(seed in 0u64..1_000_000) {
        let (_topo, _paths, skel, nd, k) = random_problem(seed, Objective::TotalFlow);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e1a);
        let tms = random_window(7, nd, &mut rng);
        let inits = random_inits(7, nd, k, &mut rng);
        let par = AdmmConfig { rho: 1.0, max_iters: 50, tol: 1e-4, serial: false };
        let ser = AdmmConfig { serial: true, ..par };
        let (outs_p, reps_p) = skel.batch_solver(&tms).run_batch(&inits, par);
        let (outs_s, reps_s) = skel.batch_solver(&tms).run_batch(&inits, ser);
        for b in 0..tms.len() {
            prop_assert_eq!(reps_p[b].iterations, reps_s[b].iterations);
            for (x, y) in outs_p[b].splits().iter().zip(outs_s[b].splits()) {
                prop_assert!((x - y).abs() <= 1e-12,
                    "serial/parallel batched runs diverged: {} vs {}", x, y);
            }
        }
        assert_batch_matches(&skel, &tms, &inits, par)?;
    }
}

//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` crate cannot be fetched. This vendored stand-in implements exactly
//! the surface the workspace needs — `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}` — on top of a deterministic
//! xoshiro256++ generator. It is *not* a cryptographic RNG and its streams
//! differ from upstream `rand`; everything in this workspace only requires
//! determinism under a fixed seed, which this provides.

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f32`/`f64` in
    /// `[0, 1)`, full-range integers, `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full seed from a single `u64` (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" distribution.
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Streams are reproducible under a fixed seed but do not
    /// match upstream `rand`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling and element choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..2.0);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn mean_of_uniform_close_to_half() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

//! Experiment runner: regenerates the paper's tables and figures.
//!
//! Usage: `expts [--fast] <id>...` where `<id>` is one of
//! table1 table2 table3 fig2 fig6 fig7 fig8 fig9 fig10a fig10b fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 fig18, or `all`.

use teal_bench::experiments as ex;
use teal_bench::Harness;

const ALL: &[&str] = &[
    "table1", "table2", "table3", "fig6", "fig7", "fig13", "fig18", "fig8", "fig9", "fig10a",
    "fig10b", "fig11", "fig12", "fig14", "fig15", "fig16", "fig2", "fig17",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let mut ids: Vec<String> = args.into_iter().filter(|a| a != "--fast").collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }
    let mut h = Harness::new(fast);
    for id in &ids {
        let t0 = std::time::Instant::now();
        eprintln!("[expts] running {id} ...");
        match id.as_str() {
            "table1" => ex::tables::table1(),
            "table2" => {
                ex::tables::table2();
                ex::tables::table2_measured();
            }
            "table3" => ex::tables::table3(),
            "fig2" => ex::tables::fig2(fast),
            "fig6" => ex::comparison::fig6(&mut h),
            "fig7" => ex::comparison::fig7(&mut h),
            "fig8" => ex::failures::fig8(&mut h),
            "fig9" => ex::failures::fig9(&mut h),
            "fig10a" => ex::robustness::fig10a(&mut h),
            "fig10b" => ex::robustness::fig10b(&mut h),
            "fig11" => ex::objectives::fig11(&mut h),
            "fig12" => ex::objectives::fig12(&mut h),
            "fig13" => ex::comparison::fig13(&mut h),
            "fig14" => ex::ablation::fig14(&mut h),
            "fig15" => ex::ablation::fig15(&mut h),
            "fig16" => ex::ablation::fig16(&mut h),
            "fig17" => ex::tables::fig17(fast),
            "fig18" => ex::comparison::fig18(&mut h),
            other => eprintln!("[expts] unknown experiment id: {other}"),
        }
        eprintln!("[expts] {id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
}

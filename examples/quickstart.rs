//! Quickstart: train Teal on Google's B4 topology and allocate live traffic.
//!
//! Walks the full pipeline of the paper's Figure 3 — FlowGNN feature
//! learning, COMA* multi-agent RL training, and ADMM fine-tuning — end to
//! end on the smallest evaluation network, then compares the result against
//! the exact LP optimum.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use teal::core::{
    train_coma, validate, ComaConfig, EngineConfig, Env, TealConfig, TealEngine, TealModel,
};
use teal::lp::{evaluate, solve_lp, LpConfig, Objective};
use teal::topology::b4;
use teal::traffic::{TrafficConfig, TrafficModel};

fn main() {
    // --- 1. Topology and candidate paths (4 shortest per demand, §2).
    let topo = b4();
    println!(
        "topology: {} nodes, {} directed edges",
        topo.num_nodes(),
        topo.num_edges()
    );
    let env = Arc::new(Env::for_topology(topo));
    println!(
        "candidate paths: {} demands x {} paths",
        env.num_demands(),
        env.k()
    );

    // --- 2. Synthetic SWAN-like traffic, calibrated so the network is
    //        contended (the regime where TE matters).
    let mut traffic = TrafficModel::new(&env.topo().all_pairs(), TrafficConfig::default(), 7);
    traffic.calibrate(env.topo(), env.paths());
    let train = traffic.series(0, 48);
    let val = traffic.series(48, 8);
    let test = traffic.series(56, 8);

    // --- 3. Train FlowGNN + policy network end to end with COMA*.
    let mut model = TealModel::new(Arc::clone(&env), TealConfig::default());
    println!("model parameters: {}", model.num_parameters());
    let before = validate(&model, &env, &test);
    let cfg = ComaConfig {
        epochs: 12,
        lr: 3e-3,
        ..ComaConfig::default()
    };
    let report = train_coma(&mut model, &train, &val, &cfg);
    println!("untrained satisfied demand: {before:.1}%");
    for e in report.history.iter().step_by(3) {
        println!(
            "  epoch {:>2}: sampled reward {:.1}% of demand, val satisfied {:.1}%",
            e.epoch,
            100.0 * e.train_reward_frac,
            e.val_satisfied_pct
        );
    }

    // --- 4. Deploy: one forward pass + 2 ADMM iterations per matrix (§4).
    let engine = TealEngine::new(model, EngineConfig::paper_default(12));
    let mut teal_sat = 0.0;
    let mut lp_sat = 0.0;
    let mut teal_time = 0.0;
    for tm in &test {
        let (alloc, dt) = engine.allocate(tm);
        let inst = env.instance(tm);
        teal_sat += 100.0 * evaluate(&inst, &alloc).realized_flow / tm.total();
        teal_time += dt.as_secs_f64();
        let (opt, _) = solve_lp(&inst, Objective::TotalFlow, &LpConfig::default());
        lp_sat += 100.0 * evaluate(&inst, &opt).realized_flow / tm.total();
    }
    let n = test.len() as f64;
    println!("---");
    println!(
        "Teal:   {:.1}% satisfied demand, {:.1} ms per allocation",
        teal_sat / n,
        1e3 * teal_time / n
    );
    println!(
        "LP-all: {:.1}% satisfied demand (exact optimum)",
        lp_sat / n
    );
}

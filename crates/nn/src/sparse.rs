//! Compressed sparse row (CSR) matrices and sparse-dense products.
//!
//! FlowGNN's message passing is a fixed bipartite incidence structure
//! (paths x edges), so the sparse pattern never changes between forward
//! passes. We pre-build a CSR matrix together with its transpose once per
//! topology and reuse the pair for every forward/backward pass: the backward
//! pass of `y = A x` needs `A^T dy`, which is just another SpMM with the
//! stored transpose.
//!
//! # Cache-blocked arena layout
//!
//! At paper scale (754–1,739 nodes) the right-hand side of the SpMM no
//! longer fits in L1: a 1,024-node WAN has several thousand directed edges
//! and tens of thousands of path rows, so the gather `x[col]` walks a
//! multi-hundred-KB operand with near-random locality. Matrices wide enough
//! to hit this ([`BLOCK_COLS`] columns, with enough non-zeros to amortize
//! the index) therefore carry an extra per-row *column-block pointer* arena,
//! built once in [`Csr::from_triplets`]: `block_ptr[r * (nb + 1) + b]`
//! brackets the non-zeros of row `r` whose columns fall in block `b` of
//! [`BLOCK_COLS`] columns. [`Csr::spmm_batch`] then walks a small tile of
//! output rows per column block, so each `x` block (`BLOCK_COLS * d` floats
//! ≈ L1-sized) is reused across the whole tile before moving on. Because
//! columns are ascending within a row, the blocked walk visits each row's
//! non-zeros in exactly the storage order — blocking changes traversal
//! scheduling, never per-row summation order — and the block decision
//! depends only on the matrix shape, so batched and per-block calls stay
//! bitwise identical. The `d == 1` right-hand sides of the first GNN layer
//! take a four-lane unrolled gather instead (f32 lanes, recombined once per
//! row), which reassociates within the 1e-6 equivalence budget pinned by
//! the `spmm_blocked` proptest suite against [`Csr::spmm_batch_reference`].

use crate::tensor::Tensor;
use std::sync::Arc;

/// Column-block width of the cache-blocked SpMM path: `BLOCK_COLS * d` f32s
/// of the right-hand side (≈16–24 KB for FlowGNN's embedding widths) stay
/// resident while a tile of output rows consumes them.
const BLOCK_COLS: usize = 1024;

/// Non-zero floor below which the blocked arena isn't worth its footprint.
const BLOCK_MIN_NNZ: usize = 4096;

/// Output rows per tile in the blocked walk; `TILE_ROWS * d` accumulators
/// stay in L1 across all column blocks of the tile.
const TILE_ROWS: usize = 64;

/// A CSR sparse matrix with `f32` values.
#[derive(Clone, Debug)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// Row start offsets, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, one per non-zero.
    col_idx: Vec<u32>,
    /// Non-zero values parallel to `col_idx`.
    values: Vec<f32>,
    /// Column-block boundaries per row (`rows * (num_blocks + 1)` offsets
    /// into `col_idx`), empty when the matrix is too small to block.
    block_ptr: Vec<u32>,
    /// Number of `BLOCK_COLS`-wide column blocks (0 = unblocked).
    num_blocks: usize,
}

impl Csr {
    /// Build from COO triplets. Duplicate coordinates are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of bounds {rows}x{cols}"
            );
        }
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(usize, usize, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx: Vec<u32> = merged.iter().map(|&(_, c, _)| c as u32).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();

        // Build the column-block arena for matrices wide enough that the
        // SpMM right-hand side spills out of L1. Keyed on shape/nnz only,
        // never on the batch size of a later multiply.
        let (num_blocks, block_ptr) = if cols > BLOCK_COLS && col_idx.len() >= BLOCK_MIN_NNZ {
            let nb = cols.div_ceil(BLOCK_COLS);
            let mut bp = vec![0u32; rows * (nb + 1)];
            for r in 0..rows {
                let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
                let base = r * (nb + 1);
                bp[base] = lo as u32;
                let mut e = lo;
                for b in 0..nb {
                    let col_end = ((b + 1) * BLOCK_COLS) as u32;
                    while e < hi && col_idx[e] < col_end {
                        e += 1;
                    }
                    bp[base + b + 1] = e as u32;
                }
            }
            (nb, bp)
        } else {
            (0, Vec::new())
        };

        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
            block_ptr,
            num_blocks,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate over `(col, value)` entries of one row.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(self.values[lo..hi].iter())
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Csr {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                triplets.push((c, r, v));
            }
        }
        Csr::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Sparse-dense product `out = self * x` where `x` is `cols x d`.
    /// Parallelizes across output rows once the multi-column right-hand side
    /// is wide enough to amortize thread spawn.
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        self.spmm_batch(x, 1)
    }

    /// Block-diagonal batched product: `x` stacks `batch` matrices of shape
    /// `[cols, d]` vertically, and the result stacks the `batch` products
    /// `self * x_b` the same way. Equivalent to `(I_batch ⊗ self) * x`
    /// without materializing the Kronecker structure; the batched forward
    /// pass routes every traffic matrix through one call.
    pub fn spmm_batch(&self, x: &Tensor, batch: usize) -> Tensor {
        assert!(batch >= 1, "spmm_batch requires batch >= 1");
        assert_eq!(
            x.rows(),
            self.cols * batch,
            "spmm_batch shape mismatch: x has {} rows, expected {} x {}",
            x.rows(),
            batch,
            self.cols
        );
        let d = x.cols();
        let mut out = Tensor::zeros(self.rows * batch, d);
        let work = self.nnz() * d * batch;
        let rows = self.rows;
        let xd = x.data();
        crate::par::par_row_chunks_mut(out.data_mut(), d, work, |row0, chunk| {
            if d == 1 {
                // First-layer embeddings: a pure gather. Four independent
                // f32 lanes over the non-zeros of each row, recombined once.
                for (i, out_row) in chunk.chunks_mut(1).enumerate() {
                    let gr = row0 + i;
                    let (b, r) = (gr / rows, gr % rows);
                    let x_off = b * self.cols;
                    let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                    let mut s0 = 0.0f32;
                    let mut s1 = 0.0f32;
                    let mut s2 = 0.0f32;
                    let mut s3 = 0.0f32;
                    let mut e = lo;
                    while e + 4 <= hi {
                        s0 += self.values[e] * xd[x_off + self.col_idx[e] as usize];
                        s1 += self.values[e + 1] * xd[x_off + self.col_idx[e + 1] as usize];
                        s2 += self.values[e + 2] * xd[x_off + self.col_idx[e + 2] as usize];
                        s3 += self.values[e + 3] * xd[x_off + self.col_idx[e + 3] as usize];
                        e += 4;
                    }
                    let mut s = (s0 + s1) + (s2 + s3);
                    while e < hi {
                        s += self.values[e] * xd[x_off + self.col_idx[e] as usize];
                        e += 1;
                    }
                    out_row[0] = s;
                }
            } else if self.num_blocks > 1 {
                // Cache-blocked walk: a TILE_ROWS output tile sweeps the
                // column blocks in order, so each L1-sized x block is reused
                // across the whole tile. Per-row accumulation order equals
                // the plain walk (columns ascend within a row).
                let nb = self.num_blocks;
                for (ti, tile) in chunk.chunks_mut(TILE_ROWS * d).enumerate() {
                    let tile_base = row0 + ti * TILE_ROWS;
                    for blk in 0..nb {
                        for (i, out_row) in tile.chunks_mut(d).enumerate() {
                            let gr = tile_base + i;
                            let (b, r) = (gr / rows, gr % rows);
                            let x_off = b * self.cols;
                            let base = r * (nb + 1);
                            let lo = self.block_ptr[base + blk] as usize;
                            let hi = self.block_ptr[base + blk + 1] as usize;
                            for e in lo..hi {
                                let c = self.col_idx[e] as usize;
                                let v = self.values[e];
                                let x_row = &xd[(x_off + c) * d..(x_off + c + 1) * d];
                                for (o, &xv) in out_row.iter_mut().zip(x_row.iter()) {
                                    *o += v * xv;
                                }
                            }
                        }
                    }
                }
            } else {
                for (i, out_row) in chunk.chunks_mut(d).enumerate() {
                    let gr = row0 + i;
                    let (b, r) = (gr / rows, gr % rows);
                    let x_off = b * self.cols;
                    let lo = self.row_ptr[r];
                    let hi = self.row_ptr[r + 1];
                    for e in lo..hi {
                        let c = self.col_idx[e] as usize;
                        let v = self.values[e];
                        let x_row = &xd[(x_off + c) * d..(x_off + c + 1) * d];
                        for (o, &xv) in out_row.iter_mut().zip(x_row.iter()) {
                            *o += v * xv;
                        }
                    }
                }
            }
        });
        out
    }

    /// Scalar reference SpMM: the plain single-threaded walk with no
    /// blocking and no unrolled lanes. This is the oracle the `spmm_blocked`
    /// proptest suite pins [`Csr::spmm_batch`] against (1e-6 budget).
    pub fn spmm_batch_reference(&self, x: &Tensor, batch: usize) -> Tensor {
        assert!(batch >= 1, "spmm_batch requires batch >= 1");
        assert_eq!(x.rows(), self.cols * batch, "reference shape mismatch");
        let d = x.cols();
        let mut out = Tensor::zeros(self.rows * batch, d);
        for b in 0..batch {
            for r in 0..self.rows {
                for e in self.row_ptr[r]..self.row_ptr[r + 1] {
                    let c = self.col_idx[e] as usize;
                    let v = self.values[e];
                    for j in 0..d {
                        let acc = out.get(b * self.rows + r, j) + v * x.get(b * self.cols + c, j);
                        out.set(b * self.rows + r, j, acc);
                    }
                }
            }
        }
        out
    }

    /// Dense representation, for tests and small problems.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out.set(r, c, out.get(r, c) + v);
            }
        }
        out
    }
}

/// A CSR matrix paired with its pre-computed transpose.
///
/// Shareable across forward passes via `Arc`; the autograd graph stores a
/// clone of the `Arc` in each SpMM node so backward can run `A^T * dy`
/// without rebuilding anything.
#[derive(Clone, Debug)]
pub struct CsrPair {
    /// The forward matrix `A`.
    pub fwd: Arc<Csr>,
    /// `A^T`.
    pub bwd: Arc<Csr>,
}

impl CsrPair {
    /// Build both directions from COO triplets for `A` (`rows x cols`).
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let fwd = Csr::from_triplets(rows, cols, triplets);
        let bwd = fwd.transposed();
        CsrPair {
            fwd: Arc::new(fwd),
            bwd: Arc::new(bwd),
        }
    }

    /// The pair for `A^T` (swaps the two directions).
    pub fn transposed(&self) -> CsrPair {
        CsrPair {
            fwd: Arc::clone(&self.bwd),
            bwd: Arc::clone(&self.fwd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::matmul;

    fn sample() -> Csr {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0],
        //  [0, 5, 6]]
        Csr::from_triplets(
            4,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (2, 0, 3.0),
                (2, 1, 4.0),
                (3, 1, 5.0),
                (3, 2, 6.0),
            ],
        )
    }

    #[test]
    fn dense_roundtrip() {
        let a = sample();
        let d = a.to_dense();
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(d.get(3, 2), 6.0);
        assert_eq!(a.nnz(), 6);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = Csr::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.to_dense().item(), 3.5);
    }

    #[test]
    fn spmm_matches_dense() {
        let a = sample();
        let x = Tensor::from_vec(3, 2, vec![1.0, -1.0, 0.5, 2.0, 3.0, 0.0]);
        let sparse = a.spmm(&x);
        let dense = matmul(&a.to_dense(), &x);
        assert!(sparse.approx_eq(&dense, 1e-6));
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a = sample();
        let at = a.transposed();
        assert!(at.to_dense().approx_eq(&a.to_dense().transposed(), 1e-6));
    }

    #[test]
    fn pair_directions_consistent() {
        let p = CsrPair::from_triplets(4, 3, &[(0, 1, 1.0), (2, 2, 2.0)]);
        assert_eq!(p.fwd.rows(), 4);
        assert_eq!(p.bwd.rows(), 3);
        let t = p.transposed();
        assert_eq!(t.fwd.rows(), 3);
    }

    #[test]
    fn spmm_batch_matches_per_block_spmm() {
        let a = sample();
        // Two stacked [3, 2] blocks with distinct values.
        let x0 = Tensor::from_vec(3, 2, vec![1.0, -1.0, 0.5, 2.0, 3.0, 0.0]);
        let x1 = Tensor::from_vec(3, 2, vec![-2.0, 4.0, 1.5, 0.0, -1.0, 2.5]);
        let mut stacked = x0.data().to_vec();
        stacked.extend_from_slice(x1.data());
        let x = Tensor::from_vec(6, 2, stacked);
        let y = a.spmm_batch(&x, 2);
        assert_eq!(y.shape(), (8, 2));
        let y0 = a.spmm(&x0);
        let y1 = a.spmm(&x1);
        for r in 0..4 {
            assert_eq!(y.row(r), y0.row(r), "block 0 row {r}");
            assert_eq!(y.row(r + 4), y1.row(r), "block 1 row {r}");
        }
    }

    #[test]
    fn spmm_wide_rhs_matches_dense() {
        // Wide enough to cross the parallel threshold on a big matrix.
        let mut triplets = Vec::new();
        for r in 0..300 {
            triplets.push((r, r % 7, 1.0 + r as f32 * 0.01));
            triplets.push((r, (r * 3) % 7, -0.5));
        }
        let a = Csr::from_triplets(300, 7, &triplets);
        let x = Tensor::from_vec(
            7,
            96,
            (0..7 * 96).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        let sparse = a.spmm(&x);
        let dense = matmul(&a.to_dense(), &x);
        assert!(sparse.approx_eq(&dense, 1e-4));
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = Csr::from_triplets(3, 3, &[]);
        let x = Tensor::full(3, 2, 1.0);
        assert_eq!(a.spmm(&x).sum(), 0.0);
    }
}

//! Criterion bench: candidate-path precomputation (Yen's k-shortest paths),
//! the one-time setup cost every scheme shares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teal_topology::{generate, k_shortest_paths, PathSet, TopoKind};

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("paths");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, kind, scale) in [
        ("B4", TopoKind::B4, 1.0),
        ("SWAN-x0.5", TopoKind::Swan, 0.5),
    ] {
        let topo = generate(kind, scale, 42);
        group.bench_with_input(BenchmarkId::new("yen_single_pair", label), &(), |b, _| {
            b.iter(|| k_shortest_paths(&topo, 0, topo.num_nodes() - 1, 4))
        });
        let pairs = topo.all_pairs();
        group.bench_with_input(BenchmarkId::new("full_pathset", label), &(), |b, _| {
            b.iter(|| PathSet::compute(&topo, &pairs, 4))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);

//! `teal-bench`: the benchmark harness regenerating every table and figure
//! of the paper (see DESIGN.md §4 for the experiment index).
//!
//! Run `cargo run -p teal-bench --bin expts --release -- all` to reproduce
//! everything; individual experiments run via their id (e.g. `fig6`).
//! Results are printed and persisted under `results/`.

pub mod experiments;
pub mod table;
pub mod testbed;

pub use experiments::Harness;
pub use testbed::{train_teal_engine, Testbed, TestbedSpec, TrainBudget};

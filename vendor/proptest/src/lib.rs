//! Offline shim implementing the subset of the `proptest` API this
//! workspace's property tests use: the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, range and `collection::vec` strategies,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! its case index and the sampled-input message produced by the assertion.
//! Sampling is deterministic per test (seeded from the test's name), so
//! failures reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Number-of-cases configuration, mirroring `proptest::test_runner`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic sample source handed to strategies.
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// Seed from a test name so every property has its own stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Gen {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A value generator. Implemented for primitive ranges and `collection::vec`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, gen: &mut Gen) -> $t {
                gen.rng().gen_range(self.clone())
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, gen: &mut Gen) -> $t {
                gen.rng().gen_range(self.clone())
            }
        }
    )*};
}
float_strategy!(f32, f64);

/// Collection strategies.
pub mod collection {
    use super::{Gen, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range of sizes.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// comes from `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, gen: &mut Gen) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                gen.rng().gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(gen)).collect()
        }
    }
}

/// Run each property in the block `cases` times with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut gen = $crate::Gen::deterministic(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut gen);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "property {} failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure reports the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}` ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Skip the current case when its sampled inputs don't fit the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Gen, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respected(x in 3u64..17, f in -1.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..2.0).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0.0f64..1.0, 4), w in crate::collection::vec(0u64..9, 1..5)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!((1..5).contains(&w.len()));
            prop_assume!(!w.is_empty());
            prop_assert!(w.iter().all(|x| *x < 9));
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        let mut a = Gen::deterministic("t");
        let mut b = Gen::deterministic("t");
        let s = 0u64..1000;
        for _ in 0..16 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}

//! TEAVAR* — the failure-aware baseline of §5.3 (Figure 8).
//!
//! TEAVAR (Bogle et al., SIGCOMM 2019) "balances link utilization with
//! operator-defined availability requirements"; the paper compares against
//! TEAVAR*, NCFlow's adaptation that maximizes total flow. Both hedge
//! against probabilistic link failures at allocation time, trading peak
//! utilization for availability — which is why TEAVAR* satisfies less
//! demand than the other schemes when no failure occurs (Figure 8).
//!
//! Our implementation keeps TEAVAR's essence — penalizing the value-at-risk
//! of failure-induced traffic loss — as a compact LP:
//!
//! `max Σ_p v_p x_p − κ·L`
//! `s.t.` demand rows, no-failure capacity rows, and per-scenario loss rows
//! `Σ_{p crossing link(s)} d_p x_p ≤ L` (the flow stranded if link `s`
//! fails is bounded by the variable `L`, whose price κ encodes the
//! operator's availability requirement).
//!
//! Minimizing the worst-case stranded flow makes the allocation spread
//! demands across disjoint routes. Scenario rows grow with the link count,
//! so — like TEAVAR in the paper — this is only viable on small networks
//! such as B4.

use teal_lp::simplex::{self, Row};
use teal_lp::{Allocation, Objective, TeInstance};

/// TEAVAR* configuration.
#[derive(Clone, Copy, Debug)]
pub struct TeavarConfig {
    /// Price κ of worst-case stranded flow. 0 disables hedging; ~0.5 is a
    /// balanced setting; large values forfeit substantial utilization.
    pub risk_penalty: f64,
}

impl Default for TeavarConfig {
    fn default() -> Self {
        TeavarConfig { risk_penalty: 0.5 }
    }
}

/// Solve the VaR-penalized robust LP.
pub fn solve_teavar(inst: &TeInstance, cfg: &TeavarConfig) -> Allocation {
    let k = inst.k();
    let nd = inst.num_demands();
    let ne = inst.topo.num_edges();
    let nx = nd * k;

    // Bidirectional links (failure units): groups of directed edge ids.
    let mut links: Vec<Vec<usize>> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, e) in inst.topo.edges().iter().enumerate() {
        let key = (e.src.min(e.dst), e.src.max(e.dst));
        if seen.insert(key) {
            let mut ids = vec![i];
            if let Some(rev) = inst.topo.find_edge(e.dst, e.src) {
                ids.push(rev);
            }
            links.push(ids);
        }
    }

    // Variables: x (nx splits) then the scalar worst-case loss L.
    let nvars = nx + 1;
    let l_var = nx;
    let mut c = vec![0.0f64; nvars];
    c[..nx].copy_from_slice(&inst.value_coefficients(Objective::TotalFlow));
    c[l_var] = -cfg.risk_penalty;

    let mut rows = Vec::new();
    for d in 0..nd {
        rows.push(Row {
            coeffs: (0..k).map(|j| (d * k + j, 1.0)).collect(),
            rhs: 1.0,
        });
    }
    // No-failure capacity rows (hard).
    for e in 0..ne {
        let plist = inst.paths.paths_on_edge(e);
        if plist.is_empty() {
            continue;
        }
        let coeffs: Vec<(usize, f64)> = plist
            .iter()
            .map(|&p| (p as usize, inst.tm.demand(p as usize / k)))
            .collect();
        rows.push(Row {
            coeffs,
            rhs: inst.topo.edge(e).capacity,
        });
    }
    // Per-link loss rows: flow crossing the link minus L <= 0.
    if cfg.risk_penalty > 0.0 {
        for link in &links {
            let mut touched: Vec<usize> = link
                .iter()
                .flat_map(|&e| inst.paths.paths_on_edge(e).iter().map(|&p| p as usize))
                .collect();
            touched.sort_unstable();
            touched.dedup();
            if touched.is_empty() {
                continue;
            }
            let mut coeffs: Vec<(usize, f64)> = touched
                .iter()
                .map(|&p| (p, inst.tm.demand(p / k)))
                .collect();
            coeffs.push((l_var, -1.0));
            rows.push(Row { coeffs, rhs: 0.0 });
        }
    }

    let r = simplex::solve(&c, &rows, 500_000);
    let mut alloc = Allocation::from_splits(k, r.x[..nx].to_vec());
    alloc.project_demand_constraints();
    alloc
}

/// Realized flow in the worst single-bidirectional-link failure (helper for
/// Figure 8-style robustness comparisons).
pub fn worst_single_failure_flow(inst: &TeInstance, alloc: &Allocation) -> f64 {
    let mut worst = f64::INFINITY;
    let mut seen = std::collections::HashSet::new();
    for e in inst.topo.edges() {
        let key = (e.src.min(e.dst), e.src.max(e.dst));
        if !seen.insert(key) {
            continue;
        }
        let failed = inst.topo.with_failed_link(e.src, e.dst);
        let failed_inst = TeInstance::new(&failed, inst.paths, inst.tm);
        let f = teal_lp::evaluate(&failed_inst, alloc).realized_flow;
        worst = worst.min(f);
    }
    if worst.is_finite() {
        worst
    } else {
        teal_lp::evaluate(inst, alloc).realized_flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teal_lp::{evaluate, solve_lp, LpConfig};
    use teal_topology::{PathSet, Topology};
    use teal_traffic::TrafficMatrix;

    fn diamond() -> Topology {
        let mut t = Topology::new("d", 4);
        t.add_link(0, 1, 10.0, 1.0);
        t.add_link(1, 3, 10.0, 1.0);
        t.add_link(0, 2, 10.0, 1.5);
        t.add_link(2, 3, 10.0, 1.5);
        t
    }

    fn instance(tm: &TrafficMatrix, topo: &Topology, paths: &PathSet) -> (Allocation, Allocation) {
        let inst = TeInstance::new(topo, paths, tm);
        let robust = solve_teavar(&inst, &TeavarConfig::default());
        let lp = solve_lp(&inst, Objective::TotalFlow, &LpConfig::default()).0;
        (robust, lp)
    }

    #[test]
    fn teavar_never_beats_failure_oblivious_optimum() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![18.0]);
        let (robust, lp) = instance(&tm, &topo, &paths);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let f_r = evaluate(&inst, &robust).realized_flow;
        let f_lp = evaluate(&inst, &lp).realized_flow;
        assert!(f_r <= f_lp + 1e-6, "robust {f_r} vs optimum {f_lp}");
        assert!(f_r > 0.0);
    }

    #[test]
    fn teavar_spreads_across_disjoint_routes() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![12.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let robust = solve_teavar(&inst, &TeavarConfig { risk_penalty: 0.5 });
        // Flow through each physical route (slots may alias the same path).
        let mut route_flow = std::collections::HashMap::new();
        for (j, p) in paths.paths_for(0).iter().enumerate() {
            *route_flow.entry(p.edges.clone()).or_insert(0.0) += robust.demand_splits(0)[j] * 12.0;
        }
        let max_route = route_flow.values().cloned().fold(0.0f64, f64::max);
        let total: f64 = route_flow.values().sum();
        assert!(
            total > 10.0,
            "robust allocation should still route most demand"
        );
        assert!(
            max_route < 0.7 * total,
            "VaR hedging must spread flow, got max route {max_route} of {total}"
        );
    }

    #[test]
    fn teavar_survives_failures_better_than_lp() {
        let topo = diamond();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![12.0]);
        let (robust, lp) = instance(&tm, &topo, &paths);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let worst_r = worst_single_failure_flow(&inst, &robust);
        let worst_lp = worst_single_failure_flow(&inst, &lp);
        assert!(
            worst_r >= worst_lp - 1e-6,
            "teavar worst-case {worst_r} must be at least LP's {worst_lp}"
        );
        assert!(
            worst_r > 4.0,
            "hedged allocation should keep >1/3 flow under failure"
        );
    }
}

//! `TealClient`: a blocking TCP client with pipelined submits.
//!
//! [`TealClient::submit`] encodes and sends the request immediately and
//! returns a [`Ticket`] — the same handle in-process callers get — without
//! waiting for the reply; callers pipeline as many requests as they like
//! and redeem the tickets in any order. A background reader thread matches
//! REPLY frames to tickets by request id (the server answers out of
//! order), so one slow request never blocks the replies behind it.
//!
//! The client is shareable across threads (`submit` takes `&self`; sends
//! are serialized by a short-held writer lock, replies are dispatched by
//! the reader thread), and the request ids are minted from one atomic —
//! concurrent submitters commute, mirroring the serving core's submit
//! path. A dropped or failed connection fulfills every outstanding ticket
//! with [`ServeError::Internal`] rather than hanging its waiters.

// teal-lint: checked-sync
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{thread, Arc, Condvar, Mutex};
use crate::telemetry::now;
use std::collections::HashMap;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;
use teal_traffic::TrafficMatrix;

use crate::request::{ResponseSlot, ServeError, ServeReply, SubmitRequest, Ticket};
use crate::telemetry::TelemetrySnapshot;
use crate::wire;

/// One-shot slot a telemetry scrape waits on (the STATS twin of
/// [`ResponseSlot`], carrying a snapshot instead of an allocation).
struct StatsSlot {
    slot: Mutex<Option<Result<TelemetrySnapshot, ServeError>>>,
    ready: Condvar,
}

impl StatsSlot {
    fn new() -> Arc<Self> {
        Arc::new(StatsSlot {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, r: Result<TelemetrySnapshot, ServeError>) {
        let mut slot = self.slot.lock();
        *slot = Some(r);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<TelemetrySnapshot, ServeError> {
        let mut slot = self.slot.lock();
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.ready.wait(slot);
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Result<TelemetrySnapshot, ServeError> {
        let deadline = now() + timeout;
        let mut slot = self.slot.lock();
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            let current = now();
            if current >= deadline {
                return Err(ServeError::DeadlineExceeded);
            }
            let (guard, _) = self.ready.wait_timeout(slot, deadline - current);
            slot = guard;
        }
    }
}

/// Client-side shared state between submitters and the reader thread.
struct ClientShared {
    /// In-flight request id → response slot.
    pending: Mutex<HashMap<u64, Arc<ResponseSlot>>>,
    /// In-flight telemetry scrape id → stats slot (ids share the request
    /// id space; the server keys both reply kinds off the same counter).
    stats_pending: Mutex<HashMap<u64, Arc<StatsSlot>>>,
    /// Set once the reader has exited (connection gone): new submits fail
    /// fast instead of queueing onto a dead socket.
    closed: AtomicBool,
    /// Reply/STATS_OK frames whose id matched nothing pending. A nonzero
    /// count means id bookkeeping broke somewhere (client or server) —
    /// previously these were silently dropped, hiding the bug.
    unmatched: AtomicU64,
}

impl ClientShared {
    /// Fail every in-flight request and scrape (connection died or client
    /// dropped).
    fn fail_all(&self, why: &str) {
        let drained: Vec<Arc<ResponseSlot>> = {
            let mut pending = self.pending.lock();
            pending.drain().map(|(_, s)| s).collect()
        };
        for slot in drained {
            slot.fulfill(Err(ServeError::Internal(why.to_string())));
        }
        let drained: Vec<Arc<StatsSlot>> = {
            let mut stats = self.stats_pending.lock();
            stats.drain().map(|(_, s)| s).collect()
        };
        for slot in drained {
            slot.fulfill(Err(ServeError::Internal(why.to_string())));
        }
    }
}

/// Blocking TCP client for a [`crate::TealServer`] (see module docs).
pub struct TealClient {
    /// Sender half plus its reusable encode buffer; the lock is held only
    /// to encode and write one frame.
    writer: Mutex<(TcpStream, Vec<u8>)>,
    /// Reader half (kept for shutdown on drop).
    stream: TcpStream,
    shared: Arc<ClientShared>,
    next_id: AtomicU64,
    reader: Option<thread::JoinHandle<()>>,
}

impl TealClient {
    /// Connect and perform the versioned handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TealClient> {
        let mut stream = TcpStream::connect(addr)?;
        // Pipelined small frames: never let Nagle hold a request back for
        // a delayed ACK.
        stream.set_nodelay(true)?;
        let mut buf = Vec::new();
        wire::encode_hello(&mut buf);
        wire::write_frame(&mut stream, &buf)?;
        match wire::read_frame(&mut stream, &mut buf) {
            Ok(true) => wire::decode_hello_ok(&buf)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?,
            Ok(false) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "server closed during handshake (version rejected?)",
                ))
            }
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                ))
            }
        };
        let shared = Arc::new(ClientShared {
            pending: Mutex::new(HashMap::new()),
            stats_pending: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
            unmatched: AtomicU64::new(0),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            let stream = stream.try_clone()?;
            thread::spawn_named("teal-client-reader", move || reader_loop(stream, &shared))
        };
        Ok(TealClient {
            writer: Mutex::new((stream.try_clone()?, Vec::new())),
            stream,
            shared,
            next_id: AtomicU64::new(0),
            reader: Some(reader),
        })
    }

    /// Pipeline one request; returns its [`Ticket`] immediately. A send
    /// failure (dead connection) is reported through the ticket, keeping
    /// the submit-then-redeem control flow identical to the in-process
    /// daemon API.
    pub fn submit(&self, req: &SubmitRequest) -> Ticket {
        let slot = ResponseSlot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        if self.shared.closed.load(Ordering::Acquire) {
            slot.fulfill(Err(ServeError::Internal("connection closed".into())));
            return ticket;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Register before sending: the reply can race back before this
        // thread regains the CPU.
        self.shared.pending.lock().insert(id, Arc::clone(&slot));
        let sent = {
            // Encode into the writer-owned buffer under the same short
            // lock that serializes the send: steady-state submitters reuse
            // one buffer instead of allocating per pipelined request.
            let mut w = self.writer.lock();
            let (stream, buf) = &mut *w;
            wire::encode_request(buf, id, req);
            wire::write_frame(stream, buf)
        };
        // Close the race with the reader's fail_all: if the reader
        // observed EOF and drained `pending` between our closed-check and
        // the insert above, nobody else will ever fulfill this slot — the
        // send may even "succeed" into a half-closed socket. Re-checking
        // `closed` after registering makes the overlap visible here.
        if sent.is_err() || self.shared.closed.load(Ordering::Acquire) {
            if let Some(slot) = self.shared.pending.lock().remove(&id) {
                slot.fulfill(Err(ServeError::Internal(if sent.is_err() {
                    "connection write failed".into()
                } else {
                    "connection closed".into()
                })));
            }
        }
        ticket
    }

    /// Submit a plain request and block for the reply.
    pub fn allocate(
        &self,
        topology: impl Into<String>,
        tm: TrafficMatrix,
    ) -> Result<ServeReply, ServeError> {
        self.submit(&SubmitRequest::new(topology, tm)).wait()
    }

    /// [`TealClient::allocate`] with a bounded wait; the wire twin of
    /// [`Ticket::wait_timeout`].
    pub fn allocate_timeout(
        &self,
        topology: impl Into<String>,
        tm: TrafficMatrix,
        timeout: Duration,
    ) -> Result<ServeReply, ServeError> {
        self.submit(&SubmitRequest::new(topology, tm))
            .wait_timeout(timeout)
    }

    /// Scrape the server's live [`TelemetrySnapshot`] over the connection
    /// (a STATS frame). Blocks until the reply arrives; pipelines with
    /// in-flight requests like any other frame.
    pub fn stats(&self) -> Result<TelemetrySnapshot, ServeError> {
        self.request_stats()?.wait()
    }

    /// [`TealClient::stats`] with a bounded wait.
    pub fn stats_timeout(&self, timeout: Duration) -> Result<TelemetrySnapshot, ServeError> {
        self.request_stats()?.wait_timeout(timeout)
    }

    /// Send one STATS frame following submit's register-before-send
    /// protocol (and its reader-race re-check; see [`TealClient::submit`]).
    fn request_stats(&self) -> Result<Arc<StatsSlot>, ServeError> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(ServeError::Internal("connection closed".into()));
        }
        let slot = StatsSlot::new();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared
            .stats_pending
            .lock()
            .insert(id, Arc::clone(&slot));
        let sent = {
            let mut w = self.writer.lock();
            let (stream, buf) = &mut *w;
            wire::encode_stats_request(buf, id);
            wire::write_frame(stream, buf)
        };
        if sent.is_err() || self.shared.closed.load(Ordering::Acquire) {
            if let Some(slot) = self.shared.stats_pending.lock().remove(&id) {
                slot.fulfill(Err(ServeError::Internal(if sent.is_err() {
                    "connection write failed".into()
                } else {
                    "connection closed".into()
                })));
            }
        }
        Ok(slot)
    }

    /// How many REPLY/STATS_OK frames arrived whose request id matched no
    /// pending submission. Always `0` in a healthy deployment; nonzero
    /// means id bookkeeping broke on one side of the connection.
    pub fn unmatched_replies(&self) -> u64 {
        self.shared.unmatched.load(Ordering::Relaxed)
    }
}

impl Drop for TealClient {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            // A panicked reader already ran its fail_all via unwind or is
            // about to be covered by ours below; don't panic in drop.
            let _ = h.join();
        }
        self.shared
            .fail_all("client dropped with requests in flight");
    }
}

/// Match incoming REPLY/STATS_OK frames to pending tickets and stats
/// slots by id until the connection ends; then fail whatever is left.
fn reader_loop(mut stream: TcpStream, shared: &ClientShared) {
    let mut buf = Vec::new();
    while let Ok(true) = wire::read_frame(&mut stream, &mut buf) {
        match wire::peek_kind(&buf) {
            Ok(wire::Kind::Reply) => {
                let Ok((id, result)) = wire::decode_reply(&buf) else {
                    break;
                };
                let slot = shared.pending.lock().remove(&id);
                match slot {
                    Some(slot) => slot.fulfill(result),
                    // An unsolicited reply id: count it instead of
                    // silently dropping the frame (the count is the
                    // debugging breadcrumb for broken id bookkeeping).
                    None => {
                        shared.unmatched.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Ok(wire::Kind::StatsOk) => {
                let Ok((id, snap)) = wire::decode_stats_reply(&buf) else {
                    break;
                };
                let slot = shared.stats_pending.lock().remove(&id);
                match slot {
                    Some(slot) => slot.fulfill(Ok(snap)),
                    None => {
                        shared.unmatched.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            _ => break, // protocol violation: treat as a dead connection
        }
    }
    shared.closed.store(true, Ordering::Release);
    shared.fail_all("connection closed with requests in flight");
}

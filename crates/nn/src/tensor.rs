//! Dense 2-D tensor used throughout the Teal reproduction.
//!
//! All neural-network state in this project is two-dimensional (batches of
//! embeddings, weight matrices, column vectors), so the tensor type is a flat
//! row-major `Vec<f32>` with an explicit `(rows, cols)` shape. Keeping the
//! representation this simple makes the autograd kernels in
//! [`crate::graph`] easy to audit and easy to parallelize.

use std::fmt;

/// A dense, row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor from raw parts. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// A tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A tensor filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// A 1 x 1 tensor holding a scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(1, 1, vec![value])
    }

    /// A column vector (n x 1).
    pub fn col_vec(values: &[f32]) -> Self {
        Tensor::from_vec(values.len(), 1, values.to_vec())
    }

    /// A row vector (1 x n).
    pub fn row_vec(values: &[f32]) -> Self {
        Tensor::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable slice of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The scalar value of a 1 x 1 tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    pub fn reshaped(&self, rows: usize, cols: usize) -> Tensor {
        assert_eq!(
            rows * cols,
            self.len(),
            "reshape must preserve element count"
        );
        Tensor {
            rows,
            cols,
            data: self.data.clone(),
        }
    }

    /// Reshape by consuming the tensor — no buffer copy.
    pub fn into_reshaped(self, rows: usize, cols: usize) -> Tensor {
        assert_eq!(
            rows * cols,
            self.len(),
            "reshape must preserve element count"
        );
        Tensor {
            rows,
            cols,
            data: self.data,
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * *b;
        }
    }

    /// In-place scaling by a constant.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Reset all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element (0.0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Elementwise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

/// Dense matrix multiply `out = a * b`, single-threaded kernel.
///
/// Uses an i-k-j loop order so the inner loop streams through contiguous rows
/// of `b`, which is the cache-friendly order for row-major data.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.cols, b.rows,
        "matmul shape mismatch: {}x{} * {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    let mut out = Tensor::zeros(a.rows, b.cols);
    matmul_into(a, b, out.data_mut());
    out
}

/// Dense matrix multiply writing into a pre-allocated row-major buffer.
pub(crate) fn matmul_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let (m, k) = a.shape();
    let n = b.cols;
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate().take(k) {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b.data[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * bv;
            }
        }
    }
}

/// Column-wise concatenation `[a | b]` into a fresh tensor.
pub fn concat_cols(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows, b.rows, "concat_cols row mismatch");
    let (m, na) = a.shape();
    let nb = b.cols;
    let mut data = Vec::with_capacity(m * (na + nb));
    for r in 0..m {
        data.extend_from_slice(a.row(r));
        data.extend_from_slice(b.row(r));
    }
    Tensor::from_vec(m, na + nb, data)
}

/// Fused dense layer kernel: `out = leaky(a * w + bias)` computed row by
/// row, touching each output row exactly once while it is cache-resident.
/// `slope == 1.0` makes the activation the identity (no-activation layers).
/// Avoids the two intermediate tensors (and four extra memory passes) a
/// matmul / bias-add / activation op chain would allocate — the difference
/// between cache-resident and RAM-bound on wide batched inputs.
pub fn linear_act_into(a: &[f32], k: usize, w: &Tensor, bias: &[f32], slope: f32, out: &mut [f32]) {
    let n = w.cols;
    debug_assert_eq!(k, w.rows, "linear_act shape mismatch");
    debug_assert_eq!(bias.len(), n);
    let m = out.len() / n;
    debug_assert_eq!(a.len(), m * k);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        out_row.copy_from_slice(bias);
        for (kk, &a_ik) in a_row.iter().enumerate().take(k) {
            if a_ik == 0.0 {
                continue;
            }
            let w_row = &w.data[kk * n..(kk + 1) * n];
            for (o, &wv) in out_row.iter_mut().zip(w_row.iter()) {
                *o += a_ik * wv;
            }
        }
        if slope != 1.0 {
            for o in out_row.iter_mut() {
                if *o < 0.0 {
                    *o *= slope;
                }
            }
        }
    }
}

/// Fused two-input dense layer kernel: `out = leaky([a | b] * w + bias)`
/// without materializing the column concatenation. `w`'s first `a_cols`
/// rows apply to `a`, the rest to `b`. Used by the tape-free inference path
/// where the concat buffer would be the largest allocation of the layer.
#[allow(clippy::too_many_arguments)]
pub fn linear2_act_into(
    a: &[f32],
    a_cols: usize,
    b: &[f32],
    b_cols: usize,
    w: &Tensor,
    bias: &[f32],
    slope: f32,
    out: &mut [f32],
) {
    let n = w.cols;
    debug_assert_eq!(a_cols + b_cols, w.rows, "linear2_act shape mismatch");
    debug_assert_eq!(bias.len(), n);
    let m = out.len() / n;
    debug_assert_eq!(a.len(), m * a_cols);
    debug_assert_eq!(b.len(), m * b_cols);
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        out_row.copy_from_slice(bias);
        let a_row = &a[i * a_cols..(i + 1) * a_cols];
        for (kk, &v) in a_row.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let w_row = &w.data[kk * n..(kk + 1) * n];
            for (o, &wv) in out_row.iter_mut().zip(w_row.iter()) {
                *o += v * wv;
            }
        }
        let b_row = &b[i * b_cols..(i + 1) * b_cols];
        for (kk, &v) in b_row.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let w_row = &w.data[(a_cols + kk) * n..(a_cols + kk + 1) * n];
            for (o, &wv) in out_row.iter_mut().zip(w_row.iter()) {
                *o += v * wv;
            }
        }
        if slope != 1.0 {
            for o in out_row.iter_mut() {
                if *o < 0.0 {
                    *o *= slope;
                }
            }
        }
    }
}

/// `out = a^T * b` without materializing the transpose of `a`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows, b.rows, "matmul_at_b shape mismatch");
    let (k, m) = a.shape();
    let n = b.cols;
    let mut out = Tensor::zeros(m, n);
    for r in 0..k {
        let a_row = a.row(r);
        let b_row = b.row(r);
        for (i, &a_ri) in a_row.iter().enumerate().take(m) {
            if a_ri == 0.0 {
                continue;
            }
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ri * bv;
            }
        }
    }
    out
}

/// `out = a * b^T` without materializing the transpose of `b`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.cols, "matmul_a_bt shape mismatch");
    let (m, k) = a.shape();
    let n = b.rows;
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = &mut out.data[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate().take(n) {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a_row[kk] * b_row[kk];
            }
            *o = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn zeros_full_scalar() {
        assert_eq!(Tensor::zeros(2, 2).sum(), 0.0);
        assert_eq!(Tensor::full(2, 2, 3.0).sum(), 12.0);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tt = t.transposed();
        assert_eq!(tt.shape(), (3, 2));
        assert_eq!(tt.get(2, 1), 6.0);
        assert_eq!(tt.transposed(), t);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let a = Tensor::from_vec(3, 2, vec![1.0, -2.0, 0.5, 3.0, 2.0, 1.0]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|i| i as f32 * 0.3).collect());
        let direct = matmul(&a.transposed(), &b);
        let fused = matmul_at_b(&a, &b);
        assert!(direct.approx_eq(&fused, 1e-5));

        let c = Tensor::from_vec(4, 2, (0..8).map(|i| 1.0 - i as f32).collect());
        let direct2 = matmul(&a, &c.transposed());
        let fused2 = matmul_a_bt(&a, &c);
        assert!(direct2.approx_eq(&fused2, 1e-5));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full(1, 3, 1.0);
        let b = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.reshaped(3, 2);
        assert_eq!(r.get(2, 1), 6.0);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn norms_and_finiteness() {
        let t = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
        assert_eq!(t.max_abs(), 4.0);
        assert!(t.all_finite());
        let bad = Tensor::from_vec(1, 1, vec![f32::NAN]);
        assert!(!bad.all_finite());
    }
}

//! `TealServer`: the TCP front end over the transport-agnostic serving
//! core — `std::net` and the workspace's plain-thread idioms, no async
//! runtime (the registry is unreachable in this environment, and the
//! blocking-thread model matches the rest of the daemon).
//!
//! Two interchangeable front ends sit behind [`TealServer::bind`], chosen
//! by [`crate::ServeConfig::event_loop`]:
//!
//! * the **epoll event loop** (default on Linux) — one thread multiplexing
//!   every connection through readiness notifications; see [`crate::net`];
//! * the **thread-per-connection** baseline below — two OS threads per
//!   socket, kept as the A/B comparison arm and the non-Linux fallback.
//!
//! Both speak the same wire protocol against the same daemon, so tests and
//! benches can run identical traffic through either by flipping the config
//! bit.
//!
//! In the threaded baseline, one accept-loop thread turns each connection
//! into a **reader** and a **writer** thread:
//!
//! * The reader performs the versioned handshake, then decodes pipelined
//!   [`crate::wire`] REQUEST frames and feeds them straight into
//!   [`ServeDaemon::submit_on`] — the same validated, admission-controlled
//!   path in-process callers use. Before submitting, it registers the
//!   request's response slot (keyed by the client's request id) with the
//!   connection's reply map, so even a synchronously-failed submit has a
//!   home for its reply.
//! * The writer blocks on the connection's completion queue and drains
//!   replies **out of order, by request id**, the moment each ticket
//!   fulfills — a slow request never convoys the replies queued behind it.
//!   At reader EOF the writer finishes every still-pending ticket before
//!   closing (a client that half-closed its send side still gets all its
//!   replies).
//!
//! Per the scalable-commutativity design rule the connections share no
//! mutable state with each other — each has its own reply map and
//! completion queue, and all cross-connection coordination happens inside
//! the serving core's per-topology shards — so adding connections scales
//! like adding submitter threads, which is exactly what the loopback soak
//! test exercises.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use teal_core::PolicyModel;

use crate::daemon::ServeDaemon;

/// Poison-recovering lock for this module's std mutexes. This file stays on
/// `std::sync` deliberately (see `crate::sync` — blocking-I/O plumbing is
/// out of the model checker's scope), so it needs its own recovery shim:
/// the reply/stats maps are valid at every panic point, and the writer must
/// keep draining completions even if a sibling thread panicked.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Named spawn that treats thread-creation failure (resource exhaustion)
/// as fatal — there is no graceful fallback for a front end that cannot
/// start its connection threads.
fn spawn_named<F: FnOnce() + Send + 'static>(name: &str, f: F) -> JoinHandle<()> {
    match std::thread::Builder::new().name(name.to_string()).spawn(f) {
        Ok(h) => h,
        Err(e) => panic!("spawn thread {name:?}: {e}"),
    }
}
use crate::request::{Completions, ResponseSlot, Ticket};
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use crate::wire;

/// Connection-level shared state between its reader and writer threads.
struct Conn {
    /// Request id → response slot ticket, inserted by the reader *before*
    /// submit, drained by the writer as completions arrive.
    pending: Mutex<HashMap<u64, Ticket>>,
    /// Scrape id → telemetry snapshot, taken synchronously by the reader
    /// when a STATS frame arrives and announced on the same completion
    /// queue, so stats replies interleave with serve replies in completion
    /// order (ids share one space with REQUEST frames).
    stats: Mutex<HashMap<u64, TelemetrySnapshot>>,
    completions: Arc<Completions>,
    /// Reader hit EOF/error: no new ids will ever be inserted.
    done_reading: AtomicBool,
}

impl Conn {
    /// No reply of either kind is still owed to this client.
    fn settled(&self) -> bool {
        locked(&self.pending).is_empty() && locked(&self.stats).is_empty()
    }
}

/// Server-wide state the accept loop and `shutdown` share.
struct ServerShared {
    shutdown: AtomicBool,
    /// Live connections: each thread handle paired with a clone of its
    /// socket (for unblocking its blocking reads at shutdown). Finished
    /// entries are pruned (joined, fd dropped) on every accept, so a
    /// long-running server churning short-lived connections does not leak
    /// one fd + handle per connection.
    conns: Mutex<Vec<(JoinHandle<()>, TcpStream)>>,
}

/// Which connection-handling machinery backs this server (see module
/// docs).
enum Front {
    /// Thread-per-connection baseline: accept thread + reader/writer pair
    /// per socket.
    Threaded {
        shared: Arc<ServerShared>,
        accept: Option<JoinHandle<()>>,
    },
    /// One epoll thread multiplexing every connection.
    #[cfg(all(target_os = "linux", not(teal_loom)))]
    Event(crate::net::EventLoopHandle),
}

/// The TCP serving front end (see module docs).
pub struct TealServer<M: PolicyModel + Send + Sync + 'static> {
    daemon: Arc<ServeDaemon<M>>,
    addr: SocketAddr,
    front: Front,
    /// `shutdown()` already ran (it must shut the daemon down exactly
    /// once, and also runs on drop).
    finished: bool,
}

impl<M: PolicyModel + Send + Sync + 'static> TealServer<M> {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and start accepting connections that submit into `daemon`.
    ///
    /// [`crate::ServeConfig::event_loop`] picks the front end; the
    /// threaded baseline is used off Linux regardless.
    pub fn bind(daemon: Arc<ServeDaemon<M>>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        #[cfg(all(target_os = "linux", not(teal_loom)))]
        if daemon.config().event_loop {
            let handle = crate::net::spawn_event_loop(Arc::clone(&daemon), listener)?;
            return Ok(TealServer {
                daemon,
                addr,
                front: Front::Event(handle),
                finished: false,
            });
        }
        let shared = Arc::new(ServerShared {
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let daemon = Arc::clone(&daemon);
            let shared = Arc::clone(&shared);
            spawn_named("teal-serve-accept", move || {
                accept_loop(&listener, &daemon, &shared)
            })
        };
        Ok(TealServer {
            daemon,
            addr,
            front: Front::Threaded {
                shared,
                accept: Some(accept),
            },
            finished: false,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving core this front end feeds.
    pub fn daemon(&self) -> &Arc<ServeDaemon<M>> {
        &self.daemon
    }

    /// Stop accepting connections, unblock and join the front end's
    /// threads, then shut the serving core down (queued requests are still
    /// served; see [`ServeDaemon::shutdown`]). Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        match &mut self.front {
            Front::Threaded { shared, accept } => {
                shared.shutdown.store(true, Ordering::Release);
                // Unblock the accept loop: `TcpListener::incoming` has no
                // native cancellation in std, so poke it with a throwaway
                // connection.
                let _ = TcpStream::connect(self.addr);
                if let Some(h) = accept.take() {
                    // Shutdown also runs on drop; a panicked accept loop
                    // must not abort it (connections below still get
                    // joined and unblocked).
                    let _ = h.join();
                }
                // Unblock connection readers parked in read_exact, then
                // join.
                let conns: Vec<(JoinHandle<()>, TcpStream)> =
                    locked(&shared.conns).drain(..).collect();
                // Read half only: the parked readers wake with EOF and
                // stop accepting frames, but each connection's writer
                // still flushes the replies for requests already in the
                // daemon's shard queues (the daemon below keeps serving
                // until those queues drain) — a client caught mid-pipeline
                // by shutdown gets its answers, not a hangup.
                for (_, stream) in &conns {
                    let _ = stream.shutdown(Shutdown::Read);
                }
                for (handle, _) in conns {
                    let _ = handle.join();
                }
            }
            // Same contract: stop reading, flush what is owed (shards keep
            // fulfilling until the daemon shutdown *below*), join the loop.
            #[cfg(all(target_os = "linux", not(teal_loom)))]
            Front::Event(handle) => handle.shutdown(),
        }
        self.daemon.shutdown();
    }
}

impl<M: PolicyModel + Send + Sync + 'static> Drop for TealServer<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<M: PolicyModel + Send + Sync + 'static>(
    listener: &TcpListener,
    daemon: &Arc<ServeDaemon<M>>,
    shared: &Arc<ServerShared>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Latency service: replies are small frames that must not sit in
        // Nagle's buffer waiting for a delayed ACK.
        let _ = stream.set_nodelay(true);
        // Without a clone the connection could not be unblocked at
        // shutdown; refuse it rather than risk a hang.
        let Ok(unblock) = stream.try_clone() else {
            continue;
        };
        let daemon = Arc::clone(daemon);
        let handle = spawn_named("teal-serve-conn", move || serve_connection(stream, &daemon));
        let mut conns = locked(&shared.conns);
        // Prune finished connections: join their threads and release the
        // fd clones before tracking the new one — a long-lived server must
        // not accumulate one fd per connection it ever served.
        let mut live = Vec::with_capacity(conns.len() + 1);
        for (h, s) in conns.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push((h, s));
            }
        }
        live.push((handle, unblock));
        *conns = live;
    }
}

/// Drive one connection: handshake, spawn the writer, then decode and
/// submit requests until EOF/error.
fn serve_connection<M: PolicyModel + Send + Sync + 'static>(
    mut stream: TcpStream,
    daemon: &Arc<ServeDaemon<M>>,
) {
    let mut buf = Vec::new();
    // Handshake: HELLO in, HELLO_OK out. Anything else closes the socket
    // (this includes version mismatches — a v2 client gets a hangup, not
    // silently misdecoded frames).
    match wire::read_frame(&mut stream, &mut buf) {
        Ok(true) => {
            if wire::decode_hello(&buf).is_err() {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
        _ => return,
    }
    let mut out = Vec::new();
    wire::encode_hello_ok(&mut out);
    if wire::write_frame(&mut (&stream), &out).is_err() {
        return;
    }

    let conn = Arc::new(Conn {
        pending: Mutex::new(HashMap::new()),
        stats: Mutex::new(HashMap::new()),
        completions: Completions::new(),
        done_reading: AtomicBool::new(false),
    });
    let writer = {
        let conn = Arc::clone(&conn);
        let telemetry = Arc::clone(daemon.telemetry());
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        spawn_named("teal-serve-conn-writer", move || {
            writer_loop(stream, &conn, &telemetry)
        })
    };

    // Reader loop: decode pipelined requests, register the slot, submit.
    // A clean EOF, a broken socket, or a protocol violation all end it the
    // same way: no more requests from this peer.
    while let Ok(true) = wire::read_frame(&mut stream, &mut buf) {
        match wire::peek_kind(&buf) {
            Ok(wire::Kind::Request) => {}
            Ok(wire::Kind::Stats) => {
                // Telemetry scrape: snapshot synchronously (cheap — a copy
                // under short locks) and announce it on the completion
                // queue so the writer sends it in order with serve replies.
                let Ok(id) = wire::decode_stats_request(&buf) else {
                    break;
                };
                let in_flight = locked(&conn.pending).contains_key(&id);
                {
                    let mut stats = locked(&conn.stats);
                    if in_flight || stats.contains_key(&id) {
                        break; // duplicated id: hang up, same as requests
                    }
                    stats.insert(id, daemon.stats());
                }
                conn.completions.push(id);
                continue;
            }
            _ => break, // protocol violation: hang up
        }
        let (id, req) = match wire::decode_request(&buf) {
            Ok(decoded) => decoded,
            Err(_) => break, // protocol violation: hang up
        };
        let slot = ResponseSlot::with_notify(Arc::clone(&conn.completions), id);
        {
            let mut pending = locked(&conn.pending);
            // A duplicated id would orphan the first ticket; refuse the
            // connection rather than guess which reply the client meant.
            // Checked *before* inserting: replacing the in-flight ticket
            // would leave the writer waiting forever on a slot that was
            // never submitted.
            if pending.contains_key(&id) || locked(&conn.stats).contains_key(&id) {
                break;
            }
            pending.insert(id, Ticket::new(Arc::clone(&slot)));
        }
        // Submit *after* registration: even an immediately-fulfilled error
        // reply finds its ticket in the map.
        daemon.submit_on(req, slot);
    }
    conn.done_reading.store(true, Ordering::Release);
    conn.completions.kick();
    // The writer drains every pending ticket before exiting; join it so
    // the server's shutdown join sees a fully-settled connection.
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Drain replies out of order as tickets fulfill, until the reader is done
/// and nothing is pending.
fn writer_loop(stream: TcpStream, conn: &Conn, telemetry: &Telemetry) {
    let mut stream = stream;
    let mut out = Vec::new();
    loop {
        let done = || conn.done_reading.load(Ordering::Acquire) && conn.settled();
        let Some(id) = conn.completions.pop_wait(done) else {
            return;
        };
        if let Some(ticket) = locked(&conn.pending).remove(&id) {
            // The completion queue announced this id, so wait() is
            // immediate.
            let reply = ticket.wait();
            wire::encode_reply(&mut out, id, &reply);
        } else if let Some(snap) = locked(&conn.stats).remove(&id) {
            wire::encode_stats_reply(&mut out, id, &snap);
        } else {
            // A completion whose id matches nothing registered: count it —
            // this is the id-bookkeeping bug counter, not a crash.
            telemetry.on_unmatched_reply();
            continue;
        }
        if wire::write_frame(&mut stream, &out).is_err() {
            // Client went away: keep consuming completions so the shard's
            // fulfillments don't pile up a queue, but stop writing.
            drain_silently(conn);
            return;
        }
    }
}

/// Consume remaining completions without writing (dead client socket).
fn drain_silently(conn: &Conn) {
    loop {
        let done = || conn.done_reading.load(Ordering::Acquire) && conn.settled();
        let Some(id) = conn.completions.pop_wait(done) else {
            return;
        };
        locked(&conn.pending).remove(&id);
        locked(&conn.stats).remove(&id);
    }
}

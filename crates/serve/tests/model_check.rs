//! Model-check suite for the serving stack's synchronization protocols.
//!
//! Compiled and run only under the model-checker cfg:
//!
//! ```text
//! RUSTFLAGS="--cfg teal_loom" cargo test -p teal-serve --test model_check
//! ```
//!
//! Each protocol gets a *pristine/mutant pair*: the pristine test proves
//! the shipping ordering holds in every explored interleaving (and that
//! exploration was both exhaustive and non-trivial — at least 1,000
//! distinct schedules), while the mutant test re-introduces one seeded
//! ordering bug and asserts the checker kills it. A mutant that survives
//! means the model lost the schedule that matters; treat that as a test
//! failure of the *model*, not a license to ship.
//!
//! A failing pristine test prints a `TEAL_LOOM_REPLAY=<schedule>` line;
//! re-run with that variable set to step the one failing interleaving.
#![cfg(teal_loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use loom::Builder;
use teal_serve::model::{
    client_register_before_send, shutdown_straggler_sweep, submit_vs_shutdown, wfq_one_ahead,
    ClientMutation, ShutdownMutation, SweepMutation, WfqMutation,
};

/// Schedules explored below this are too few to mean anything — the
/// acceptance bar for every pristine protocol proof.
const MIN_EXECUTIONS: usize = 1_000;

fn checker() -> Builder {
    checker_bounded(None)
}

fn checker_bounded(preemption_bound: Option<usize>) -> Builder {
    Builder {
        preemption_bound,
        max_executions: 400_000,
    }
}

/// Run a mutant model and assert the checker kills it. Mutant hunts are
/// preemption-bounded: every seeded bug here needs at most two
/// involuntary switches to fire, and the bound keeps the worst case (a
/// surviving mutant exploring its whole tree) from burning CI minutes.
fn assert_killed(name: &str, f: impl Fn() + Send + Sync + 'static) {
    let result = catch_unwind(AssertUnwindSafe(|| checker_bounded(Some(3)).check(f)));
    assert!(
        result.is_err(),
        "seeded mutant {name} survived model checking — the model no longer \
         explores the schedule that distinguishes it"
    );
}

#[test]
fn wfq_one_ahead_grant_order_is_schedule_independent() {
    // The WFQ model's full schedule tree is too large to exhaust (> 400k
    // schedules); three involuntary preemptions per schedule is the
    // classic bound — real ordering bugs need one or two — and keeps the
    // proof exhaustive *within* the bound.
    let report = checker_bounded(Some(3)).check(|| wfq_one_ahead(WfqMutation::Pristine));
    eprintln!("wfq pristine: {} interleavings", report.executions);
    assert!(
        report.complete,
        "WFQ model exploration hit the execution cap"
    );
    assert!(
        report.executions >= MIN_EXECUTIONS,
        "only {} interleavings explored",
        report.executions
    );
}

#[test]
fn wfq_mutant_without_one_ahead_is_killed() {
    assert_killed("NoOneAhead", || wfq_one_ahead(WfqMutation::NoOneAhead));
}

#[test]
fn submit_vs_shutdown_never_strands_a_ticket() {
    let report = checker().check(|| submit_vs_shutdown(ShutdownMutation::Pristine));
    eprintln!("shutdown pristine: {} interleavings", report.executions);
    assert!(
        report.complete,
        "shutdown model exploration hit the execution cap"
    );
    assert!(
        report.executions >= MIN_EXECUTIONS,
        "only {} interleavings explored",
        report.executions
    );
}

#[test]
fn submit_vs_shutdown_mutant_without_recheck_is_killed() {
    assert_killed("NoRecheckUnderLock", || {
        submit_vs_shutdown(ShutdownMutation::NoRecheckUnderLock)
    });
}

#[test]
fn client_slots_registered_before_send_always_resolve() {
    let report = checker().check(|| client_register_before_send(ClientMutation::Pristine));
    eprintln!("client pristine: {} interleavings", report.executions);
    assert!(
        report.complete,
        "client model exploration hit the execution cap"
    );
    assert!(
        report.executions >= MIN_EXECUTIONS,
        "only {} interleavings explored",
        report.executions
    );
}

#[test]
fn client_mutant_registering_after_send_is_killed() {
    assert_killed("RegisterAfterSend", || {
        client_register_before_send(ClientMutation::RegisterAfterSend)
    });
}

#[test]
fn shutdown_sweep_resolves_every_straggler() {
    // Like the WFQ model, the full tree overflows the execution cap; the
    // preemption bound keeps the proof exhaustive within three
    // involuntary switches.
    let report =
        checker_bounded(Some(3)).check(|| shutdown_straggler_sweep(SweepMutation::Pristine));
    eprintln!("sweep pristine: {} interleavings", report.executions);
    assert!(
        report.complete,
        "sweep model exploration hit the execution cap"
    );
    assert!(
        report.executions >= MIN_EXECUTIONS,
        "only {} interleavings explored",
        report.executions
    );
}

#[test]
fn shutdown_mutant_without_sweep_is_killed() {
    assert_killed("NoStragglerSweep", || {
        shutdown_straggler_sweep(SweepMutation::NoStragglerSweep)
    });
}

/// Regression for the bug this model *found* in `ServeDaemon::shutdown`:
/// waking the dispatchers without holding the queue lock loses the wakeup
/// when it lands between a dispatcher's flag check and its wait
/// registration — the shard sleeps through shutdown and the join hangs.
#[test]
fn shutdown_mutant_notifying_outside_lock_is_killed() {
    assert_killed("NotifyOutsideLock", || {
        shutdown_straggler_sweep(SweepMutation::NotifyOutsideLock)
    });
}

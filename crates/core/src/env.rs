//! The per-topology environment Teal trains and runs against.
//!
//! An [`Env`] bundles everything that is fixed across traffic matrices: the
//! topology, the precomputed candidate paths, the path-edge incidence (as a
//! CSR pair for FlowGNN's message passing), and normalization constants.
//! Per-traffic-matrix inputs are produced by [`Env::model_input`].

use teal_lp::TeInstance;
use teal_nn::{CsrPair, Tensor};
use teal_topology::{PathSet, Topology};
use teal_traffic::TrafficMatrix;

/// Fixed per-topology state shared by the model, trainer, and engine.
#[derive(Clone)]
pub struct Env {
    topo: Topology,
    paths: PathSet,
    /// Path-edge incidence `A` (`num_paths x num_edges`) with its transpose.
    incidence: CsrPair,
    /// Mean link capacity, used to normalize capacities and volumes.
    mean_cap: f64,
}

impl Env {
    /// Build the environment (computes the incidence structure once).
    pub fn new(topo: Topology, paths: PathSet) -> Self {
        let triplets = paths.incidence_triplets();
        let incidence =
            CsrPair::from_triplets(paths.num_paths(), topo.num_edges(), &triplets);
        let mean_cap = topo.total_capacity() / topo.num_edges().max(1) as f64;
        Env { topo, paths, incidence, mean_cap: mean_cap.max(1e-12) }
    }

    /// Convenience: compute 4 shortest paths for every ordered pair.
    pub fn for_topology(topo: Topology) -> Self {
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        Env::new(topo, paths)
    }

    /// The WAN graph.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The candidate paths.
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }

    /// The path-edge incidence CSR pair.
    pub fn incidence(&self) -> &CsrPair {
        &self.incidence
    }

    /// Mean link capacity (normalization constant).
    pub fn mean_cap(&self) -> f64 {
        self.mean_cap
    }

    /// Demands per matrix.
    pub fn num_demands(&self) -> usize {
        self.paths.num_demands()
    }

    /// Candidate paths per demand.
    pub fn k(&self) -> usize {
        self.paths.k()
    }

    /// Borrow an LP instance for a traffic matrix on the env's own topology.
    pub fn instance<'a>(&'a self, tm: &'a TrafficMatrix) -> TeInstance<'a> {
        TeInstance::new(&self.topo, &self.paths, tm)
    }

    /// LP instance against an alternative topology (e.g. with failed links);
    /// the path set stays the one precomputed on the original topology,
    /// matching the paper's failure model.
    pub fn instance_on<'a>(
        &'a self,
        topo: &'a Topology,
        tm: &'a TrafficMatrix,
    ) -> TeInstance<'a> {
        TeInstance::new(topo, &self.paths, tm)
    }

    /// Per-traffic-matrix model inputs: normalized PathNode and EdgeNode
    /// initializations (§3.2 — PathNodes start from the demand volume, and
    /// EdgeNodes from the link capacity). An optional topology override
    /// injects failed-link capacities without retraining.
    pub fn model_input(&self, tm: &TrafficMatrix, topo_override: Option<&Topology>) -> ModelInput {
        let topo = topo_override.unwrap_or(&self.topo);
        assert_eq!(topo.num_edges(), self.topo.num_edges(), "override edge count mismatch");
        let k = self.k();
        let inv = 1.0 / self.mean_cap;
        let mut path_init = Vec::with_capacity(self.paths.num_paths());
        for d in 0..self.num_demands() {
            let v = (tm.demand(d) * inv) as f32;
            for _ in 0..k {
                path_init.push(v);
            }
        }
        let edge_init: Vec<f32> =
            topo.edges().iter().map(|e| (e.capacity * inv) as f32).collect();
        ModelInput {
            path_init: Tensor::from_vec(path_init.len(), 1, path_init),
            edge_init: Tensor::from_vec(edge_init.len(), 1, edge_init),
        }
    }
}

/// Per-traffic-matrix tensors fed into the models.
#[derive(Clone, Debug)]
pub struct ModelInput {
    /// `[num_paths, 1]` — demand volume of the path's demand (normalized).
    pub path_init: Tensor,
    /// `[num_edges, 1]` — link capacity (normalized).
    pub edge_init: Tensor,
}

#[cfg(test)]
mod tests {
    use super::*;
    use teal_topology::b4;

    #[test]
    fn env_shapes_consistent() {
        let env = Env::for_topology(b4());
        assert_eq!(env.num_demands(), 132);
        assert_eq!(env.k(), 4);
        assert_eq!(env.incidence().fwd.rows(), env.paths().num_paths());
        assert_eq!(env.incidence().fwd.cols(), env.topo().num_edges());
    }

    #[test]
    fn model_input_shapes_and_normalization() {
        let env = Env::for_topology(b4());
        let tm = TrafficMatrix::new(vec![env.mean_cap(); env.num_demands()]);
        let input = env.model_input(&tm, None);
        assert_eq!(input.path_init.shape(), (env.paths().num_paths(), 1));
        assert_eq!(input.edge_init.shape(), (env.topo().num_edges(), 1));
        // A demand equal to the mean capacity normalizes to 1.
        assert!((input.path_init.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn failure_override_changes_edge_init_only() {
        let env = Env::for_topology(b4());
        let tm = TrafficMatrix::new(vec![1.0; env.num_demands()]);
        let failed = env.topo().with_failed_link(0, 1);
        let base = env.model_input(&tm, None);
        let after = env.model_input(&tm, Some(&failed));
        assert_eq!(base.path_init, after.path_init);
        assert_ne!(base.edge_init, after.edge_init);
        let e = env.topo().find_edge(0, 1).unwrap();
        assert_eq!(after.edge_init.get(e, 0), 0.0);
    }
}

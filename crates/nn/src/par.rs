//! CPU parallelism helpers.
//!
//! The paper's speed argument rests on neural-network inference being "one
//! fixed-cost batch of matrix multiplications" that parallel hardware chews
//! through. We stand in for the GPU with the persistent worker pool in
//! [`crate::pool`]: dense and sparse kernels split their output rows into
//! chunks once the problem is large enough to amortize the hand-off, and
//! pool workers (plus the calling thread) claim chunks from a shared
//! counter. No threads are spawned per call — the old crossbeam scoped
//! threads cost a spawn/join per kernel invocation, which the serving
//! daemon's request rate turns into real overhead.

use crate::pool;
use crate::tensor::{matmul_into, Tensor};

/// Work sizes below this many fused multiply-adds stay single-threaded.
const PAR_THRESHOLD: usize = 1 << 18;

/// Worker cap for the dense/sparse kernels. Defaults to the machine's
/// available parallelism; override with the `TEAL_NN_THREADS` environment
/// variable (values < 1 or unparsable fall back to the default).
pub fn max_threads() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        match std::env::var("TEAL_NN_THREADS") {
            Ok(v) => v
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .unwrap_or(hw),
            Err(_) => hw,
        }
    })
}

/// Number of worker threads to use for a problem of `work` FLOPs.
fn thread_count(work: usize) -> usize {
    if work < PAR_THRESHOLD {
        return 1;
    }
    max_threads().max(1)
}

/// Disjoint `(start, ptr, len)` sub-slices handed to pool chunks by index.
///
/// SAFETY invariant: the recorded ranges never overlap, and the pool claims
/// each index exactly once, so reconstructing `&mut [T]` per index aliases
/// nothing.
struct RawChunks<T>(Vec<(usize, *mut T, usize)>);

// SAFETY: the table is read-only once built; each `(ptr, len)` range is
// disjoint (asserted at construction in debug builds) and claimed by
// exactly one pool chunk, so sending the table across threads cannot
// create aliasing `&mut`s.
unsafe impl<T: Send> Send for RawChunks<T> {}
// SAFETY: as above — shared access only reads the pointer table; the
// exclusive reconstructions it enables are pairwise disjoint.
unsafe impl<T: Send> Sync for RawChunks<T> {}

impl<T> RawChunks<T> {
    /// Checked-unsafe instrumentation: in debug/`teal_check` builds, verify
    /// the invariant the `Send`/`Sync` impls and `run_chunked`'s pointer
    /// reconstruction lean on — no two recorded ranges overlap. (The ranges
    /// come from `chunks_mut`, so this should be impossible; the assert
    /// keeps a future refactor from silently breaking it.)
    #[cfg(any(debug_assertions, teal_check))]
    fn assert_disjoint(&self) {
        // Pairwise O(n²) rather than sort-based: n is the pool chunk
        // count (a handful), and this must not heap-allocate — debug
        // builds run under the steady-state zero-allocation test.
        for (i, &(_, ptr, len)) in self.0.iter().enumerate() {
            let (lo, bytes) = (ptr as usize, len * std::mem::size_of::<T>());
            for &(_, q, m) in &self.0[i + 1..] {
                let (qlo, qbytes) = (q as usize, m * std::mem::size_of::<T>());
                assert!(
                    lo + bytes <= qlo || qlo + qbytes <= lo,
                    "RawChunks ranges overlap: [{lo:#x}; {bytes}) vs [{qlo:#x}; {qbytes})"
                );
            }
        }
    }
}

/// Run `f(start, chunk)` over the given disjoint mutable chunks on the pool.
fn run_chunked<T, F>(chunks: Vec<(usize, &mut [T])>, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let table = RawChunks(
        chunks
            .into_iter()
            .map(|(start, c)| (start, c.as_mut_ptr(), c.len()))
            .collect(),
    );
    #[cfg(any(debug_assertions, teal_check))]
    table.assert_disjoint();
    // Capture the Sync wrapper, not its inner Vec (precise closure capture
    // would otherwise grab the non-Sync field directly).
    let table = &table;
    pool::run(table.0.len(), &|i| {
        let (start, ptr, len) = table.0[i];
        // SAFETY: see `RawChunks` — disjoint ranges, one claim per index,
        // and the borrow that produced them is held across `pool::run`.
        let chunk = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        f(start, chunk);
    });
}

/// Dense matmul that transparently parallelizes across output rows.
pub fn pmatmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "pmatmul shape mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let threads = thread_count(m * n * k);
    let mut out = Tensor::zeros(m, n);
    if threads <= 1 || m < 2 {
        matmul_into(a, b, out.data_mut());
        return out;
    }
    let rows_per = m.div_ceil(threads);
    let chunks: Vec<(usize, &mut [f32])> = out
        .data_mut()
        .chunks_mut(rows_per * n)
        .enumerate()
        .map(|(i, c)| (i * rows_per, c))
        .collect();
    run_chunked(chunks, |lo, chunk| {
        let rows = chunk.len() / n;
        let sub = slice_rows(a, lo, rows);
        matmul_into(&sub, b, chunk);
    });
    out
}

/// Run `f(first_row, chunk)` over row-aligned mutable chunks of a row-major
/// buffer, in parallel when `work` (FLOPs) justifies it. Unlike
/// [`par_chunks_mut`], chunk boundaries never split a row — required by the
/// sparse kernels, whose per-row accumulation must stay on one thread.
pub fn par_row_chunks_mut<F>(data: &mut [f32], row_width: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let width = row_width.max(1);
    let rows = data.len() / width;
    let threads = thread_count(work).min(rows.max(1));
    if threads <= 1 {
        f(0, data);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    let chunks: Vec<(usize, &mut [f32])> = data
        .chunks_mut(rows_per * width)
        .enumerate()
        .map(|(i, c)| (i * rows_per, c))
        .collect();
    run_chunked(chunks, f);
}

/// Copy `rows` rows of `t` starting at `lo` into a new tensor.
fn slice_rows(t: &Tensor, lo: usize, rows: usize) -> Tensor {
    let n = t.cols();
    let data = t.data()[lo * n..(lo + rows) * n].to_vec();
    Tensor::from_vec(rows, n, data)
}

/// Run `f(chunk_start, chunk)` over mutable chunks of `data` in parallel.
///
/// Used by the ADMM solver, whose per-demand and per-edge updates are
/// independent — the "inherently parallel iteration" claimed in §3.4.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], min_chunk: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let threads = max_threads().min(len.div_ceil(min_chunk)).max(1);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let chunk = len.div_ceil(threads);
    let chunks: Vec<(usize, &mut [T])> = data
        .chunks_mut(chunk)
        .enumerate()
        .map(|(i, c)| (i * chunk, c))
        .collect();
    run_chunked(chunks, f);
}

/// Map `f` over indices `0..n` in parallel, collecting results in order.
pub fn par_map<T, F>(n: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    par_chunks_mut(&mut out, min_chunk, |start, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = f(start + i);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::tensor::matmul;
    use rand::Rng;

    #[test]
    fn pmatmul_matches_serial_small() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert!(pmatmul(&a, &b).approx_eq(&matmul(&a, &b), 1e-6));
    }

    #[test]
    fn pmatmul_matches_serial_large() {
        let mut rng = seeded(3);
        let a = Tensor::from_vec(
            257,
            64,
            (0..257 * 64).map(|_| rng.gen::<f32>() - 0.5).collect(),
        );
        let b = Tensor::from_vec(
            64,
            96,
            (0..64 * 96).map(|_| rng.gen::<f32>() - 0.5).collect(),
        );
        assert!(pmatmul(&a, &b).approx_eq(&matmul(&a, &b), 1e-4));
    }

    #[test]
    fn par_chunks_mut_covers_everything() {
        let mut data = vec![0usize; 1000];
        par_chunks_mut(&mut data, 16, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = start + i;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn par_map_ordering() {
        let out = par_map(100, 8, |i| i * 2);
        assert_eq!(out[99], 198);
        assert_eq!(out[0], 0);
    }
}

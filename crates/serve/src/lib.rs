//! `teal-serve`: a multi-topology TE serving system — a transport-agnostic
//! serving core plus a TCP wire front end.
//!
//! The paper's pitch is that TE allocation becomes a *fixed-cost batched
//! compute step* fast enough to run inside the TE control interval. The
//! library crates realize the compute step ([`teal_core::ServingContext`]);
//! this crate turns it into a long-running, concurrency-safe **service**
//! reachable over a socket — the bridge from "library" to the ROADMAP's
//! "serve heavy traffic from millions of users".
//!
//! # Architecture
//!
//! ```text
//!   wire clients                     server front end        serving core
//!   ────────────                     ────────────────        ────────────────────
//!   TealClient ── REQUEST frames ──► TealServer (one of two, by
//!     │  (pipelined, id-tagged,      ServeConfig::event_loop)
//!     │   tenant-tagged since v3)
//!     │ ── STATS frame ─► snapshot   ┌ epoll event loop (default) ──────┐
//!     │                              │ one thread, N conns:             │
//!     │                              │  epoll_wait ─► accept burst      │
//!     │                              │   · per-conn FrameDecoder        │
//!     │                              │     (resumes mid-frame)          │
//!     │                              │   · per-conn WriteQueue          │
//!     │                              │     (pooled encode, one flush,   │
//!     │                              │      EPOLLOUT while backlogged)  │
//!     │                              │  completion ─► waker ─► eventfd  │
//!     │                              │  doorbell ─► drain + flush       │
//!     │                              │  slot map w/ generation tokens   │
//!     │                              └──────────────┬───────────────────┘
//!     │                              ┌ threaded (A/B baseline) ─────────┐
//!     │                              │  accept ► reader+writer threads  │
//!     │                              │  per conn · completions (scrape) │
//!     │                              └──────────────┬───────────────────┘
//!   in-process clients                              │ submit(SubmitRequest)
//!   ──────────────────                              ▼
//!   submit(SubmitRequest) ───────►┌──── admission control ────┐
//!                                 │ shed: queue full+deadline │──► shed ctr
//!        │                        │ shed: budget already gone │
//!        │                        └──────────┬────────────────┘
//!        │                 Trace ⊕ enqueue   │  route by topology
//!        │                                   ▼
//!        │                  shard "b4":   queue ► drain + linger
//!        │                     │    (linger capped at half the tightest
//!        │                     │     queued deadline budget)
//!        │                     │  expire stale deadlines (→ expired ctr)
//!        │                     │  EDF sort: tightest expiry first, plain
//!        │                     │    FIFO tail (DrainOrder; → inversion ctr)
//!        │                     │  group by failed-link signature
//!        │                     ▼                           ▼
//!        │          plain sub-batch             failure sub-batches
//!        │             │ chunks of max_batch       │
//!        │             ▼                           ▼
//!        │          ┌── per-chunk window ─────────────────────────────┐
//!        │          │ WFQ gate: DRR across tenants when shards share  │
//!        │          │   a shard_threads budget (tenant_weights)       │
//!        │          │ adaptive §3.4 budget: headroom < queue-wait p99 │
//!        │          │   ⇒ 2 ADMM iters, else full (→ downgrade ctr)   │
//!        │          │ ⊕ drained + solve-start (queue-wait span ends)  │
//!        │          │ try_allocate_batch_with      (steady arena)     │
//!        │          │ try_allocate_batch_on_with   (failure arena)    │
//!        │          │ ⊕ solve-end · SolveReport (iters, budget,       │
//!        │          │   residuals, frozen lanes) out of the arena     │
//!        │          └─────────────────────────────────────────────────┘
//!        │             ▼
//!        │          ShardStats.record_batch(e2e + stage histograms,
//!        │             ADMM accumulators ⊕ per-budget window counts,
//!        │             slow-request exemplar ring) · per-tenant ctrs
//!        │                  shard "swan":  ... a true parallel lane ...
//!        ▼                                   ▼
//!   Ticket::wait /                 per-request response slots
//!   Ticket::wait_timeout ◄──────── (completion queue notifies the
//!   front end ◄──────────────────── wire front end; REPLY and STATS_OK
//!     REPLY frames, any order)     frames drain out of order by id)
//!
//!   observability taps (⊕ = Trace stamp):
//!   ServeDaemon::stats() / TealClient::stats() ──► TelemetrySnapshot
//!     per-topology e2e + queue-wait/solve/write p50/p99 · AdmmStats
//!     (budgeted iters, downgrades, windows-by-budget) · per-tenant
//!     request/window counts · deadline inversions · unmatched replies ·
//!     teal_nn pool gauges · slow exemplars ──► to_prometheus() text
//! ```
//!
//! Layered deliberately:
//!
//! * **Request vocabulary** ([`SubmitRequest`], [`ServeReply`],
//!   [`ServeError`], [`Ticket`]) — one set of types spoken by every
//!   transport. A request carries three optional scenario axes: a
//!   **deadline** (admission control: shed at enqueue, expire at drain,
//!   bounded waits via [`Ticket::wait_timeout`]), **failed-link
//!   overrides** (the paper's §5.3 failure recovery, served without
//!   retraining through [`teal_core::ServingContext::try_allocate_batch_on_with`]),
//!   and a **tenant tag** (fair-queuing identity; untagged requests are
//!   the `"default"` tenant).
//! * **Serving core** ([`ServeDaemon`]) — per-topology dispatch shards
//!   behind the narrow `submit(SubmitRequest) -> Ticket` API. Submit
//!   routes each request to its topology's shard — a dedicated dispatcher
//!   thread with a private queue, condvars, two ADMM arenas
//!   ([`teal_core::BatchScratch`]: steady-state + failure), and a
//!   telemetry slot. Each shard drains its queue (lingering up to
//!   [`ServeConfig::linger`] so bursts pile up — but never past half of
//!   the tightest queued deadline budget), expires stale requests, sorts
//!   the window **earliest-deadline-first** ([`DrainOrder`]; deadline-less
//!   requests keep FIFO order behind the deadline'd ones), groups by
//!   failure signature, and serves each sub-batch through one batched
//!   forward pass + arena-reusing batched ADMM. Each chunk's ADMM
//!   iteration budget adapts to pressure (the paper's §3.4 knob:
//!   [`ServeConfig::pressured_budget`] iterations when deadline headroom
//!   is tighter than the shard's queue-wait p99, the full budget
//!   otherwise — every downgrade lands in [`AdmmStats`]). Backpressure is
//!   a bounded per-shard queue; [`ServeConfig::shard_threads`] optionally
//!   caps one shard's `teal_nn::pool` fan-out so shards degrade into even
//!   lanes when topologies outnumber cores, and setting it arms the
//!   per-tenant **deficit-round-robin window arbiter**
//!   ([`ServeConfig::tenant_weights`]): shards contending for one budget
//!   take turns in weight ratio instead of racing. Built from commutative
//!   operations across cores *and* connections (the
//!   scalable-commutativity design rule): no lock is held across model
//!   compute and no two shards share hot-path state, so a network front
//!   end multiplying concurrent submitters scales the same way more
//!   threads do.
//! * **Wire front end** ([`wire`], [`TealServer`], [`TealClient`]) —
//!   std-only TCP (no async runtime): a length-prefixed, versioned binary
//!   codec; a server multiplexing every connection on **one epoll
//!   event-loop thread** (incremental frame decode, pooled write queues,
//!   eventfd completion doorbell — the thread-per-connection baseline
//!   stays selectable via [`ServeConfig::event_loop`] for A/B runs and
//!   non-Linux builds), draining tickets **out of order by request id**
//!   off per-connection completion queues; and a blocking client with
//!   pipelined submits returning the same [`Ticket`] handle in-process
//!   callers use. Protocol version 4 (v4 adds the unmatched-reply counter
//!   to STATS_OK; v3 added the optional tenant tag to REQUEST and the
//!   budget/tenant telemetry; older peers are refused at HELLO):
//!
//!   | frame (kind)    | direction       | payload                            |
//!   |-----------------|-----------------|------------------------------------|
//!   | HELLO (1)       | client → server | protocol version (u16)             |
//!   | HELLO_OK (2)    | server → client | accepted version (u16)             |
//!   | REQUEST (3)     | client → server | id · topology · matrix · deadline? · tenant? · failed links |
//!   | REPLY (4)       | server → client | id · allocation ⊕ stage timings, or a [`ServeError`] |
//!   | STATS (5)       | client → server | id (scrape trigger, no body)       |
//!   | STATS_OK (6)    | server → client | id · full [`TelemetrySnapshot`] (incl. per-budget window counts, per-tenant counters, deadline inversions, unmatched replies) |
//! * **Topology/model registry with hot swap** ([`ModelRegistry`]) and
//!   **serving telemetry** ([`Telemetry`] / [`TelemetrySnapshot`]). Every
//!   request carries a fixed-size [`telemetry::Trace`] stamped at enqueue,
//!   coalesce, solve-start and solve-end, so shards record *per-stage*
//!   latency histograms (queue-wait / solve / write, each with p50/p99)
//!   alongside the end-to-end one — and each [`ServeReply`] carries its
//!   own [`telemetry::StageTimings`] breakdown. Batches that reach the
//!   ADMM fine-tuner feed a [`teal_core::SolveReport`] (iteration counts,
//!   primal/dual residuals, lane-freeze fractions) into per-topology
//!   [`telemetry::AdmmStats`]; `teal_nn::pool` occupancy gauges and a
//!   bounded ring of slow-request exemplars round out the snapshot. Export
//!   it three ways: [`ServeDaemon::stats`] in process,
//!   [`TealClient::stats`] over TCP (the v2 `STATS` frame), or
//!   [`TelemetrySnapshot::to_prometheus`] as Prometheus text.
//!
//! # Quickstart (in-process)
//!
//! ```no_run
//! use std::sync::Arc;
//! use teal_core::{Env, EngineConfig, ServingContext, TealConfig, TealModel};
//! use teal_serve::{ModelRegistry, ServeDaemon, SubmitRequest};
//! use teal_topology::b4;
//! use teal_traffic::TrafficMatrix;
//!
//! let env = Arc::new(Env::for_topology(b4()));
//! let model = TealModel::new(Arc::clone(&env), TealConfig::default());
//! let registry = ModelRegistry::new();
//! registry.insert("b4", ServingContext::new(model, EngineConfig::paper_default(12)));
//! let daemon = ServeDaemon::with_defaults(registry);
//!
//! let tm = TrafficMatrix::new(vec![20.0; env.num_demands()]);
//! let reply = daemon.allocate("b4", tm.clone()).expect("served");
//! println!("batch of {} in {:?}", reply.batch_size, reply.latency);
//!
//! // Scenario axes: bounded wait + a failure window, same submit API.
//! let degraded = daemon.submit(
//!     SubmitRequest::new("b4", tm)
//!         .with_deadline(std::time::Duration::from_millis(50))
//!         .with_failed_link(0, 1),
//! );
//! match degraded.wait() {
//!     Ok(reply) => println!("failure window served: {:?}", reply.latency),
//!     Err(e) => println!("shed/expired: {e}"),
//! }
//! ```
//!
//! # Quickstart (wire)
//!
//! ```no_run
//! use std::sync::Arc;
//! use teal_serve::{ModelRegistry, ServeDaemon, TealClient, TealServer};
//! # use teal_core::{Env, EngineConfig, ServingContext, TealConfig, TealModel};
//! # use teal_topology::b4;
//! # use teal_traffic::TrafficMatrix;
//! # let env = Arc::new(Env::for_topology(b4()));
//! # let model = TealModel::new(Arc::clone(&env), TealConfig::default());
//! # let registry = ModelRegistry::new();
//! # registry.insert("b4", ServingContext::new(model, EngineConfig::paper_default(12)));
//! let daemon = Arc::new(ServeDaemon::with_defaults(registry));
//! let server = TealServer::bind(Arc::clone(&daemon), "127.0.0.1:0").expect("bind");
//! let client = TealClient::connect(server.local_addr()).expect("connect");
//! let tm = TrafficMatrix::new(vec![20.0; env.num_demands()]);
//! let reply = client.allocate("b4", tm).expect("served over TCP");
//! println!("batch of {} in {:?}", reply.batch_size, reply.latency);
//! ```
//!
//! See `examples/wire_serve.rs` for the full socket loop (plain +
//! deadline'd + failure requests, sheds/expiries in telemetry),
//! `examples/serve_loop.rs` for the in-process submit → coalesce → hot
//! swap loop, and the `serve_latency` bench in `teal-bench` for the
//! daemon-vs-sequential-vs-socket comparison (`BENCH_serve.json`).

// Unsafe is denied crate-wide; the single allowed override is
// `net/sys.rs`, the hand-rolled epoll/eventfd FFI bindings (the crates
// registry is unreachable, so no `libc`), which opts back in with its own
// `#![allow(unsafe_code)]` and per-site SAFETY comments. `cargo xtask
// lint` additionally confines `extern` declarations and `std::os` fd
// plumbing to that one file.
#![deny(unsafe_code)]

pub mod client;
pub mod daemon;
/// The epoll event-loop front end (Linux only; the loom model-check build
/// also skips it — blocking syscall I/O is out of the checker's scope,
/// same as `server`).
#[cfg(all(target_os = "linux", not(teal_loom)))]
pub(crate) mod net;
pub mod registry;
pub mod server;
pub mod telemetry;
pub mod wire;

// The concurrency-bearing internals are private in a normal build, but the
// model-check harness (`tests/model_check.rs`, compiled with
// `RUSTFLAGS="--cfg teal_loom"`) drives the real WFQ arbiter, response-slot
// protocol and distilled daemon/client protocols directly, so the loom
// build exports them.
#[cfg(teal_loom)]
pub mod model;
#[cfg(not(teal_loom))]
mod request;
#[cfg(teal_loom)]
pub mod request;
#[cfg(not(teal_loom))]
pub(crate) mod sync;
#[cfg(teal_loom)]
pub mod sync;
#[cfg(not(teal_loom))]
mod wfq;
#[cfg(teal_loom)]
pub mod wfq;

pub use client::TealClient;
pub use daemon::{DrainOrder, ServeConfig, ServeDaemon};
pub use registry::ModelRegistry;
pub use request::{ServeError, ServeReply, SubmitRequest, Ticket, DEFAULT_TENANT};
pub use server::TealServer;
pub use telemetry::{
    AdmmStats, LatencyHistogram, LatencyStats, SlowExemplar, StageTimings, Telemetry,
    TelemetrySnapshot, TenantSnapshot, TopoSnapshot, Trace,
};

//! Reverse-mode automatic differentiation on a tape ("define-by-run").
//!
//! A [`Graph`] records every operation executed during a forward pass as a
//! node on a tape. Because nodes are appended in execution order, the tape is
//! already topologically sorted and the backward pass is a single reverse
//! sweep. This mirrors how PyTorch (the paper's substrate) drives training,
//! scoped down to exactly the operators FlowGNN, the policy network, and the
//! surrogate-loss ablation need.
//!
//! Gradient correctness for every operator is cross-checked against central
//! finite differences in this module's tests and in property tests.

use crate::sparse::CsrPair;
use crate::tensor::{linear_act_into, matmul_a_bt, matmul_at_b, Tensor};
use std::sync::Arc;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// Operator tag stored per tape node; parents are recorded inline.
enum Op {
    /// Constant input or trainable parameter (leaf node).
    Leaf,
    MatMul(Var, Var),
    /// Fixed-structure sparse times dense: `y = A x`.
    SpMM(CsrPair, Var),
    /// Batched sparse times dense: `x` stacks `batch` blocks of `A.cols`
    /// rows vertically; `y` stacks the `batch` products. Backward applies
    /// `A^T` to each block of `dy`.
    SpMMBatch(CsrPair, Var, usize),
    /// Fused dense layer `y = leaky(x w + b)` (slope 0 = ReLU, slope 1 =
    /// identity). One output buffer instead of the three a
    /// matmul/add_row/leaky chain allocates; the backward recovers the
    /// activation mask from the sign of `y`.
    LinearAct {
        x: Var,
        w: Var,
        b: Var,
        slope: f32,
    },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `a [m,n] + b [1,n]`, broadcasting `b` over rows (bias add).
    AddRow(Var, Var),
    /// `a [m,n] * b [1,n]`, broadcasting `b` over rows.
    MulRow(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    LeakyRelu(Var, f32),
    Tanh(Var),
    Exp(Var),
    SoftmaxRows(Var),
    /// Shape change over the same row-major buffer.
    Reshape(Var),
    /// `[a | b]` column-wise concatenation.
    ConcatCols(Var, Var),
    /// Select rows of the parent by index; backward scatter-adds.
    GatherRows(Var, Arc<Vec<usize>>),
    /// `[m,n] -> [m,1]` row sums.
    SumRows(Var),
    /// `[m,n] -> [1,1]` total sum.
    SumAll(Var),
    MeanAll(Var),
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    needs_grad: bool,
    op: Op,
}

/// The autograd tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Fresh, empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            needs_grad,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Record a constant input (no gradient).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, false)
    }

    /// Record a trainable parameter (gradient tracked).
    pub fn param(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, true)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after [`Graph::backward`]; zeros if it never
    /// received a contribution.
    pub fn grad(&self, v: Var) -> Tensor {
        match &self.nodes[v.0].grad {
            Some(g) => g.clone(),
            None => {
                let (r, c) = self.nodes[v.0].value.shape();
                Tensor::zeros(r, c)
            }
        }
    }

    // ---- operators -------------------------------------------------------

    /// Dense matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = crate::par::pmatmul(self.value(a), self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MatMul(a, b), ng)
    }

    /// Sparse (fixed-structure) times dense product.
    pub fn spmm(&mut self, a: &CsrPair, x: Var) -> Var {
        let v = a.fwd.spmm(self.value(x));
        let ng = self.needs(x);
        self.push(v, Op::SpMM(a.clone(), x), ng)
    }

    /// Batched sparse product: `x` is `batch` vertically stacked
    /// `[A.cols, d]` blocks; the result stacks the per-block products
    /// `A * x_b`. With `batch == 1` this is exactly [`Graph::spmm`]; larger
    /// batches push a whole minibatch of traffic matrices through one
    /// message-passing step.
    pub fn spmm_batch(&mut self, a: &CsrPair, x: Var, batch: usize) -> Var {
        let v = a.fwd.spmm_batch(self.value(x), batch);
        let ng = self.needs(x);
        self.push(v, Op::SpMMBatch(a.clone(), x, batch), ng)
    }

    /// Fused dense layer: `leaky(x w + b)` with negative-side `slope`
    /// (`0.0` = plain ReLU, `1.0` = no activation). `b` is a `[1, n]` bias
    /// row. Requires `slope >= 0` so the backward pass can recover the
    /// activation mask from the output's sign.
    pub fn linear_leaky(&mut self, x: Var, w: Var, b: Var, slope: f32) -> Var {
        assert!(
            slope >= 0.0,
            "linear_leaky requires slope >= 0 (0.0 = ReLU, 1.0 = identity)"
        );
        let tx = self.value(x);
        let tw = self.value(w);
        let tb = self.value(b);
        assert_eq!(tx.cols(), tw.rows(), "linear_leaky shape mismatch");
        assert_eq!(tb.rows(), 1, "linear_leaky bias must be a row vector");
        assert_eq!(tb.cols(), tw.cols(), "linear_leaky bias width mismatch");
        let (m, k) = tx.shape();
        let n = tw.cols();
        let mut out = Tensor::zeros(m, n);
        crate::par::par_row_chunks_mut(out.data_mut(), n, m * k * n, |row0, chunk| {
            let rows = chunk.len() / n;
            let sub = &tx.data()[row0 * k..(row0 + rows) * k];
            linear_act_into(sub, k, tw, tb.data(), slope, chunk);
        });
        let ng = self.needs(x) || self.needs(w) || self.needs(b);
        self.push(out, Op::LinearAct { x, w, b, slope }, ng)
    }

    /// Elementwise sum of two same-shape tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut v = self.value(a).clone();
        v.add_assign(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Add(a, b), ng)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let mut v = self.value(a).clone();
        v.axpy(-1.0, self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Sub(a, b), ng)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let ta = self.value(a);
        let tb = self.value(b);
        assert_eq!(ta.shape(), tb.shape(), "mul shape mismatch");
        let data = ta
            .data()
            .iter()
            .zip(tb.data())
            .map(|(x, y)| x * y)
            .collect();
        let v = Tensor::from_vec(ta.rows(), ta.cols(), data);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Mul(a, b), ng)
    }

    /// Row-broadcast addition: `a [m,n] + b [1,n]`.
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        let ta = self.value(a);
        let tb = self.value(b);
        assert_eq!(tb.rows(), 1, "add_row bias must be a row vector");
        assert_eq!(ta.cols(), tb.cols(), "add_row width mismatch");
        let mut v = ta.clone();
        for r in 0..v.rows() {
            for (o, &x) in v.row_mut(r).iter_mut().zip(tb.data()) {
                *o += x;
            }
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::AddRow(a, b), ng)
    }

    /// Row-broadcast product: `a [m,n] * b [1,n]`.
    pub fn mul_row(&mut self, a: Var, b: Var) -> Var {
        let ta = self.value(a);
        let tb = self.value(b);
        assert_eq!(tb.rows(), 1, "mul_row scale must be a row vector");
        assert_eq!(ta.cols(), tb.cols(), "mul_row width mismatch");
        let mut v = ta.clone();
        for r in 0..v.rows() {
            for (o, &x) in v.row_mut(r).iter_mut().zip(tb.data()) {
                *o *= x;
            }
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MulRow(a, b), ng)
    }

    /// Multiply every element by a constant.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let mut v = self.value(a).clone();
        v.scale_assign(k);
        let ng = self.needs(a);
        self.push(v, Op::Scale(a, k), ng)
    }

    /// Add a constant to every element.
    pub fn add_scalar(&mut self, a: Var, k: f32) -> Var {
        let mut v = self.value(a).clone();
        for x in v.data_mut() {
            *x += k;
        }
        let ng = self.needs(a);
        self.push(v, Op::AddScalar(a), ng)
    }

    /// Leaky ReLU with the given negative-side slope.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let mut v = self.value(a).clone();
        for x in v.data_mut() {
            if *x < 0.0 {
                *x *= slope;
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::LeakyRelu(a, slope), ng)
    }

    /// Standard ReLU (leaky with slope 0).
    pub fn relu(&mut self, a: Var) -> Var {
        self.leaky_relu(a, 0.0)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let mut v = self.value(a).clone();
        for x in v.data_mut() {
            *x = x.tanh();
        }
        let ng = self.needs(a);
        self.push(v, Op::Tanh(a), ng)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let mut v = self.value(a).clone();
        for x in v.data_mut() {
            *x = x.exp();
        }
        let ng = self.needs(a);
        self.push(v, Op::Exp(a), ng)
    }

    /// Numerically stable softmax over each row.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let ta = self.value(a);
        let mut v = ta.clone();
        for r in 0..v.rows() {
            softmax_row_inplace(v.row_mut(r));
        }
        let ng = self.needs(a);
        self.push(v, Op::SoftmaxRows(a), ng)
    }

    /// Reinterpret the buffer with a different shape.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let v = self.value(a).reshaped(rows, cols);
        let ng = self.needs(a);
        self.push(v, Op::Reshape(a), ng)
    }

    /// Column-wise concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let ta = self.value(a);
        let tb = self.value(b);
        assert_eq!(ta.rows(), tb.rows(), "concat_cols row mismatch");
        let (m, na) = ta.shape();
        let nb = tb.cols();
        let mut data = Vec::with_capacity(m * (na + nb));
        for r in 0..m {
            data.extend_from_slice(ta.row(r));
            data.extend_from_slice(tb.row(r));
        }
        let v = Tensor::from_vec(m, na + nb, data);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::ConcatCols(a, b), ng)
    }

    /// Select rows by index (duplicates allowed).
    pub fn gather_rows(&mut self, a: Var, idx: Arc<Vec<usize>>) -> Var {
        let ta = self.value(a);
        let n = ta.cols();
        let mut data = Vec::with_capacity(idx.len() * n);
        for &i in idx.iter() {
            data.extend_from_slice(ta.row(i));
        }
        let v = Tensor::from_vec(idx.len(), n, data);
        let ng = self.needs(a);
        self.push(v, Op::GatherRows(a, idx), ng)
    }

    /// Row sums: `[m,n] -> [m,1]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let ta = self.value(a);
        let data = (0..ta.rows()).map(|r| ta.row(r).iter().sum()).collect();
        let v = Tensor::from_vec(ta.rows(), 1, data);
        let ng = self.needs(a);
        self.push(v, Op::SumRows(a), ng)
    }

    /// Total sum as a 1x1 tensor.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        let ng = self.needs(a);
        self.push(v, Op::SumAll(a), ng)
    }

    /// Mean over all elements as a 1x1 tensor.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let ta = self.value(a);
        let v = Tensor::scalar(ta.sum() / ta.len() as f32);
        let ng = self.needs(a);
        self.push(v, Op::MeanAll(a), ng)
    }

    // ---- backward --------------------------------------------------------

    fn accumulate(&mut self, v: Var, delta: Tensor) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut self.nodes[v.0].grad {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Run the reverse sweep from a scalar loss node.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward requires a scalar loss"
        );
        self.nodes[loss.0].grad = Some(Tensor::scalar(1.0));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let dy = match &self.nodes[i].grad {
                Some(g) => g.clone(),
                None => continue,
            };
            // Borrow of self.nodes[i] ends here; ops are cheap to match on.
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        let da = matmul_a_bt(&dy, self.value(b));
                        self.accumulate(a, da);
                    }
                    if self.needs(b) {
                        let db = matmul_at_b(self.value(a), &dy);
                        self.accumulate(b, db);
                    }
                }
                Op::SpMM(csr, x) => {
                    let x = *x;
                    let dx = csr.bwd.spmm(&dy);
                    self.accumulate(x, dx);
                }
                Op::SpMMBatch(csr, x, batch) => {
                    let (x, batch) = (*x, *batch);
                    let dx = csr.bwd.spmm_batch(&dy, batch);
                    self.accumulate(x, dx);
                }
                Op::LinearAct { x, w, b, slope } => {
                    let (x, w, b, slope) = (*x, *w, *b, *slope);
                    // Pre-activation gradient: the activation mask is the
                    // sign of the output. For slope 0 (ReLU) negative
                    // pre-activations produce y == 0, so the mask is
                    // `y <= 0`; for slope > 0 it is `y < 0`.
                    let y = &self.nodes[i].value;
                    let mut dpre = dy;
                    if slope == 0.0 {
                        for (g, &yv) in dpre.data_mut().iter_mut().zip(y.data()) {
                            if yv <= 0.0 {
                                *g = 0.0;
                            }
                        }
                    } else if slope != 1.0 {
                        for (g, &yv) in dpre.data_mut().iter_mut().zip(y.data()) {
                            if yv < 0.0 {
                                *g *= slope;
                            }
                        }
                    }
                    if self.needs(x) {
                        let dx = matmul_a_bt(&dpre, self.value(w));
                        self.accumulate(x, dx);
                    }
                    if self.needs(w) {
                        let dw = matmul_at_b(self.value(x), &dpre);
                        self.accumulate(w, dw);
                    }
                    if self.needs(b) {
                        self.accumulate(b, col_sums(&dpre));
                    }
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, dy.clone());
                    self.accumulate(b, dy);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, dy.clone());
                    let mut n = dy;
                    n.scale_assign(-1.0);
                    self.accumulate(b, n);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        let da = hadamard(&dy, self.value(b));
                        self.accumulate(a, da);
                    }
                    if self.needs(b) {
                        let db = hadamard(&dy, self.value(a));
                        self.accumulate(b, db);
                    }
                }
                Op::AddRow(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, dy.clone());
                    if self.needs(b) {
                        self.accumulate(b, col_sums(&dy));
                    }
                }
                Op::MulRow(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        let tb = self.value(b);
                        let mut da = dy.clone();
                        for r in 0..da.rows() {
                            for (o, &s) in da.row_mut(r).iter_mut().zip(tb.data()) {
                                *o *= s;
                            }
                        }
                        self.accumulate(a, da);
                    }
                    if self.needs(b) {
                        let prod = hadamard(&dy, self.value(a));
                        self.accumulate(b, col_sums(&prod));
                    }
                }
                Op::Scale(a, k) => {
                    let (a, k) = (*a, *k);
                    let mut da = dy;
                    da.scale_assign(k);
                    self.accumulate(a, da);
                }
                Op::AddScalar(a) => {
                    let a = *a;
                    self.accumulate(a, dy);
                }
                Op::LeakyRelu(a, slope) => {
                    let (a, slope) = (*a, *slope);
                    let ta = self.value(a);
                    let mut da = dy;
                    for (g, &x) in da.data_mut().iter_mut().zip(ta.data()) {
                        if x < 0.0 {
                            *g *= slope;
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let ty = &self.nodes[i].value;
                    let mut da = dy;
                    for (g, &y) in da.data_mut().iter_mut().zip(ty.data()) {
                        *g *= 1.0 - y * y;
                    }
                    self.accumulate(a, da);
                }
                Op::Exp(a) => {
                    let a = *a;
                    let ty = &self.nodes[i].value;
                    let da = hadamard(&dy, ty);
                    self.accumulate(a, da);
                }
                Op::SoftmaxRows(a) => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let mut da = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let yr = y.row(r);
                        let gr = dy.row(r);
                        let dot: f32 = yr.iter().zip(gr).map(|(yv, gv)| yv * gv).sum();
                        for ((o, &yv), &gv) in da.row_mut(r).iter_mut().zip(yr).zip(gr) {
                            *o = yv * (gv - dot);
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::Reshape(a) => {
                    let a = *a;
                    let (r, c) = self.value(a).shape();
                    self.accumulate(a, dy.reshaped(r, c));
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let na = self.value(a).cols();
                    let nb = self.value(b).cols();
                    let m = dy.rows();
                    let mut da = Tensor::zeros(m, na);
                    let mut db = Tensor::zeros(m, nb);
                    for r in 0..m {
                        let row = dy.row(r);
                        da.row_mut(r).copy_from_slice(&row[..na]);
                        db.row_mut(r).copy_from_slice(&row[na..]);
                    }
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::GatherRows(a, idx) => {
                    let a = *a;
                    let idx = Arc::clone(idx);
                    let (r, c) = self.value(a).shape();
                    let mut da = Tensor::zeros(r, c);
                    for (out_r, &src_r) in idx.iter().enumerate() {
                        let g = dy.row(out_r).to_vec();
                        for (o, gv) in da.row_mut(src_r).iter_mut().zip(g) {
                            *o += gv;
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::SumRows(a) => {
                    let a = *a;
                    let (r, c) = self.value(a).shape();
                    let mut da = Tensor::zeros(r, c);
                    for rr in 0..r {
                        let g = dy.get(rr, 0);
                        for o in da.row_mut(rr) {
                            *o = g;
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::SumAll(a) => {
                    let a = *a;
                    let (r, c) = self.value(a).shape();
                    self.accumulate(a, Tensor::full(r, c, dy.item()));
                }
                Op::MeanAll(a) => {
                    let a = *a;
                    let (r, c) = self.value(a).shape();
                    let g = dy.item() / (r * c) as f32;
                    self.accumulate(a, Tensor::full(r, c, g));
                }
            }
        }
    }
}

/// Numerically stable in-place softmax of one row.
pub fn softmax_row_inplace(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

fn hadamard(a: &Tensor, b: &Tensor) -> Tensor {
    debug_assert_eq!(a.shape(), b.shape());
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x * y).collect();
    Tensor::from_vec(a.rows(), a.cols(), data)
}

fn col_sums(t: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(1, t.cols());
    for r in 0..t.rows() {
        for (o, &v) in out.data_mut().iter_mut().zip(t.row(r)) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use rand::Rng;

    /// Central finite-difference check of `d loss / d param` for a closure
    /// that builds a scalar loss from a parameter tensor.
    fn check_grad<F>(param: &Tensor, build: F, tol: f32)
    where
        F: Fn(&mut Graph, Var) -> Var,
    {
        let mut g = Graph::new();
        let p = g.param(param.clone());
        let loss = build(&mut g, p);
        g.backward(loss);
        let analytic = g.grad(p);

        let eps = 1e-2f32;
        for i in 0..param.len() {
            let mut plus = param.clone();
            plus.data_mut()[i] += eps;
            let mut minus = param.clone();
            minus.data_mut()[i] -= eps;
            let f = |t: &Tensor| {
                let mut g2 = Graph::new();
                let p2 = g2.param(t.clone());
                let l = build(&mut g2, p2);
                g2.value(l).item()
            };
            let numeric = (f(&plus) - f(&minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn rand_tensor(rng: &mut impl Rng, r: usize, c: usize) -> Tensor {
        Tensor::from_vec(
            r,
            c,
            (0..r * c).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect(),
        )
    }

    #[test]
    fn grad_matmul() {
        let mut rng = seeded(1);
        let w = rand_tensor(&mut rng, 3, 4);
        let x = rand_tensor(&mut rng, 2, 3);
        check_grad(
            &w,
            |g, p| {
                let xi = g.input(x.clone());
                let y = g.matmul(xi, p);
                g.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_spmm() {
        let mut rng = seeded(2);
        let x = rand_tensor(&mut rng, 3, 2);
        let a =
            CsrPair::from_triplets(4, 3, &[(0, 0, 1.0), (1, 2, 2.0), (3, 1, -1.5), (2, 0, 0.5)]);
        check_grad(
            &x,
            |g, p| {
                let y = g.spmm(&a, p);
                let y2 = g.mul(y, y);
                g.sum_all(y2)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_spmm_batch() {
        let mut rng = seeded(12);
        // Two stacked [3, 2] blocks flowing through a 4x3 sparse operator.
        let x = rand_tensor(&mut rng, 6, 2);
        let a =
            CsrPair::from_triplets(4, 3, &[(0, 0, 1.0), (1, 2, 2.0), (3, 1, -1.5), (2, 0, 0.5)]);
        check_grad(
            &x,
            |g, p| {
                let y = g.spmm_batch(&a, p, 2);
                let y2 = g.mul(y, y);
                g.sum_all(y2)
            },
            1e-2,
        );
    }

    #[test]
    fn spmm_batch_value_matches_blockwise_spmm() {
        let mut rng = seeded(13);
        let x = rand_tensor(&mut rng, 6, 3);
        let a = CsrPair::from_triplets(4, 3, &[(0, 1, 2.0), (2, 0, -1.0), (3, 2, 0.5)]);
        let mut g = Graph::new();
        let xi = g.input(x.clone());
        let batched = g.spmm_batch(&a, xi, 2);
        let x0 = g.input(Tensor::from_vec(3, 3, x.data()[..9].to_vec()));
        let x1 = g.input(Tensor::from_vec(3, 3, x.data()[9..].to_vec()));
        let y0 = g.spmm(&a, x0);
        let y1 = g.spmm(&a, x1);
        let vb = g.value(batched).clone();
        for r in 0..4 {
            assert_eq!(vb.row(r), g.value(y0).row(r));
            assert_eq!(vb.row(r + 4), g.value(y1).row(r));
        }
    }

    #[test]
    fn grad_linear_leaky() {
        let mut rng = seeded(14);
        let w = rand_tensor(&mut rng, 3, 4);
        let x = rand_tensor(&mut rng, 5, 3);
        let bias = rand_tensor(&mut rng, 1, 4);
        // Gradient w.r.t. the weight matrix.
        check_grad(
            &w,
            |g, p| {
                let xi = g.input(x.clone());
                let bi = g.input(bias.clone());
                let y = g.linear_leaky(xi, p, bi, 0.1);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            2e-2,
        );
        // Gradient w.r.t. the input, with identity activation (slope 1).
        check_grad(
            &x,
            |g, p| {
                let wi = g.input(w.clone());
                let bi = g.input(bias.clone());
                let y = g.linear_leaky(p, wi, bi, 1.0);
                g.sum_all(y)
            },
            1e-2,
        );
        // Gradient w.r.t. the bias.
        check_grad(
            &bias,
            |g, p| {
                let xi = g.input(x.clone());
                let wi = g.input(w.clone());
                let y = g.linear_leaky(xi, wi, p, 0.1);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_linear_leaky_relu_slope_zero() {
        let mut rng = seeded(16);
        let w = rand_tensor(&mut rng, 3, 4);
        let x = rand_tensor(&mut rng, 5, 3);
        let bias = rand_tensor(&mut rng, 1, 4);
        check_grad(
            &w,
            |g, p| {
                let xi = g.input(x.clone());
                let bi = g.input(bias.clone());
                let y = g.linear_leaky(xi, p, bi, 0.0);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn linear_leaky_matches_op_chain() {
        let mut rng = seeded(15);
        let w = rand_tensor(&mut rng, 4, 3);
        let x = rand_tensor(&mut rng, 6, 4);
        let bias = rand_tensor(&mut rng, 1, 3);
        let mut g = Graph::new();
        let (xi, wi, bi) = (
            g.input(x.clone()),
            g.input(w.clone()),
            g.input(bias.clone()),
        );
        let fused = g.linear_leaky(xi, wi, bi, 0.1);
        let xw = g.matmul(xi, wi);
        let pre = g.add_row(xw, bi);
        let chained = g.leaky_relu(pre, 0.1);
        assert!(g.value(fused).approx_eq(g.value(chained), 1e-6));
    }

    #[test]
    fn grad_elementwise_chain() {
        let mut rng = seeded(3);
        let x = rand_tensor(&mut rng, 2, 3);
        check_grad(
            &x,
            |g, p| {
                let a = g.leaky_relu(p, 0.1);
                let b = g.tanh(a);
                let c = g.scale(b, 2.0);
                let d = g.add_scalar(c, 0.3);
                let e = g.mul(d, d);
                g.mean_all(e)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_softmax() {
        let mut rng = seeded(4);
        let x = rand_tensor(&mut rng, 3, 4);
        // Weighted sum of softmax outputs exercises the full Jacobian.
        let w = rand_tensor(&mut rng, 3, 4);
        check_grad(
            &x,
            |g, p| {
                let s = g.softmax_rows(p);
                let wi = g.input(w.clone());
                let prod = g.mul(s, wi);
                g.sum_all(prod)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_broadcast_ops() {
        let mut rng = seeded(5);
        let b = rand_tensor(&mut rng, 1, 4);
        let x = rand_tensor(&mut rng, 3, 4);
        check_grad(
            &b,
            |g, p| {
                let xi = g.input(x.clone());
                let y = g.add_row(xi, p);
                let z = g.mul_row(y, p);
                let zz = g.mul(z, z);
                g.sum_all(zz)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_concat_reshape_gather() {
        let mut rng = seeded(6);
        let x = rand_tensor(&mut rng, 4, 2);
        let idx = Arc::new(vec![0usize, 2, 2, 3]);
        check_grad(
            &x,
            |g, p| {
                let c = g.concat_cols(p, p);
                let r = g.reshape(c, 2, 8);
                let r2 = g.reshape(r, 4, 4);
                let gth = g.gather_rows(r2, Arc::clone(&idx));
                let sq = g.mul(gth, gth);
                let rs = g.sum_rows(sq);
                g.sum_all(rs)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_exp_sub() {
        let mut rng = seeded(7);
        let x = rand_tensor(&mut rng, 2, 2);
        let y = rand_tensor(&mut rng, 2, 2);
        check_grad(
            &x,
            |g, p| {
                let yi = g.input(y.clone());
                let d = g.sub(p, yi);
                let e = g.exp(d);
                g.sum_all(e)
            },
            2e-2,
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]));
        let s = g.softmax_rows(x);
        let v = g.value(s);
        for r in 0..2 {
            let sum: f32 = v.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(v.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn no_grad_through_inputs() {
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(2.0));
        let p = g.param(Tensor::scalar(3.0));
        let y = g.mul(x, p);
        g.backward(y);
        assert_eq!(g.grad(p).item(), 2.0);
        assert_eq!(g.grad(x).item(), 0.0);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        let mut g = Graph::new();
        let p = g.param(Tensor::scalar(3.0));
        let y = g.mul(p, p); // y = p^2, dy/dp = 2p = 6
        g.backward(y);
        assert!((g.grad(p).item() - 6.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let p = g.param(Tensor::zeros(2, 2));
        g.backward(p);
    }
}

//! Figures 6, 7, 13, 18 — the headline Teal-vs-baselines comparisons.

use super::Harness;
use crate::table::{emit, emit_csv, Table};
use std::sync::Arc;
use teal_lp::Objective;
use teal_sim::{
    metrics, run_offline_batched, run_online, LpAllScheme, LpTopScheme, NcflowScheme, PopScheme,
    Scheme, TealScheme,
};

/// Matrices per batched offline chunk: Teal's batched serving path runs one
/// forward pass per chunk; baselines fall back to their sequential loop.
const OFFLINE_BATCH: usize = 8;
use teal_topology::TopoKind;

/// The scheme lineup of Figure 6 for one testbed. LP-all is skipped on the
/// ASN testbed in default mode, matching the paper's "LP-all is not viable
/// on ASN".
fn lineup(h: &mut Harness, kind: TopoKind, include_lp_all: bool) -> Vec<Box<dyn Scheme>> {
    let engine = h.teal_engine(kind);
    let env = Arc::clone(&h.bed(kind).env);
    let mut v: Vec<Box<dyn Scheme>> = Vec::new();
    if include_lp_all {
        v.push(Box::new(LpAllScheme::new(
            Arc::clone(&env),
            Objective::TotalFlow,
        )));
    }
    v.push(Box::new(LpTopScheme::new(
        Arc::clone(&env),
        Objective::TotalFlow,
    )));
    v.push(Box::new(NcflowScheme::new(
        Arc::clone(&env),
        Objective::TotalFlow,
    )));
    v.push(Box::new(PopScheme::new(
        Arc::clone(&env),
        Objective::TotalFlow,
    )));
    v.push(Box::new(TealScheme::new(engine)));
    v
}

/// Figure 6: average computation time and online satisfied demand across
/// topologies.
pub fn fig6(h: &mut Harness) {
    let kinds = [
        TopoKind::Swan,
        TopoKind::UsCarrier,
        TopoKind::Kdl,
        TopoKind::Asn,
    ];
    let mut t = Table::new(
        "Figure 6: computation time (a) and online satisfied demand (b)",
        &["topology", "scheme", "avg comp time", "avg satisfied (%)"],
    );
    let mut rows_csv = Vec::new();
    for kind in kinds {
        let include_lp_all = kind != TopoKind::Asn;
        let interval = h.online_interval(kind);
        let schemes = lineup(h, kind, include_lp_all);
        let bed = h.bed(kind);
        let env = Arc::clone(&bed.env);
        let tms = bed.test.clone();
        let bed_name = bed.name();
        for mut s in schemes {
            let res = run_online(&env, env.topo(), &tms, s.as_mut(), interval);
            let ct = res.mean_comp_time_s();
            let sat = res.mean_satisfied_pct();
            t.row(vec![
                bed_name.clone(),
                s.name().to_string(),
                metrics::fmt_secs(ct),
                format!("{sat:.1}"),
            ]);
            rows_csv.push(format!("{},{},{:.6},{:.2}", bed_name, s.name(), ct, sat));
        }
    }
    emit("fig6", &t.render());
    emit_csv(
        "fig6",
        "topology,scheme,comp_time_s,satisfied_pct",
        &rows_csv,
    );
}

/// Figure 7: CDFs of computation time and satisfied demand on the ASN
/// testbed.
pub fn fig7(h: &mut Harness) {
    let kind = TopoKind::Asn;
    let interval = h.online_interval(kind);
    let schemes = lineup(h, kind, false);
    let bed = h.bed(kind);
    let env = Arc::clone(&bed.env);
    let tms = bed.test.clone();
    let mut t = Table::new(
        "Figure 7: per-matrix distributions on ASN (computation time / satisfied %)",
        &[
            "scheme", "time p10", "time p50", "time p90", "sat p10", "sat p50", "sat p90",
        ],
    );
    let mut rows_csv = Vec::new();
    for mut s in schemes {
        let res = run_online(&env, env.topo(), &tms, s.as_mut(), interval);
        let times: Vec<f64> = res.comp_times().iter().map(|d| d.as_secs_f64()).collect();
        let sats = res.satisfied_series();
        t.row(vec![
            s.name().to_string(),
            metrics::fmt_secs(metrics::percentile(&times, 0.10)),
            metrics::fmt_secs(metrics::percentile(&times, 0.50)),
            metrics::fmt_secs(metrics::percentile(&times, 0.90)),
            format!("{:.1}", metrics::percentile(&sats, 0.10)),
            format!("{:.1}", metrics::percentile(&sats, 0.50)),
            format!("{:.1}", metrics::percentile(&sats, 0.90)),
        ]);
        for (tt, ss) in times.iter().zip(&sats) {
            rows_csv.push(format!("{},{:.6},{:.2}", s.name(), tt, ss));
        }
    }
    emit("fig7", &t.render());
    emit_csv("fig7", "scheme,comp_time_s,satisfied_pct", &rows_csv);
}

/// Figure 13: offline satisfied demand (no computation delay) on Kdl & ASN.
pub fn fig13(h: &mut Harness) {
    let mut t = Table::new(
        "Figure 13: offline satisfied demand (%) vs computation time",
        &[
            "topology",
            "scheme",
            "avg comp time",
            "offline satisfied (%)",
        ],
    );
    let mut rows_csv = Vec::new();
    for kind in [TopoKind::Kdl, TopoKind::Asn] {
        let include_lp_all = kind != TopoKind::Asn;
        let schemes = lineup(h, kind, include_lp_all);
        let bed = h.bed(kind);
        let env = Arc::clone(&bed.env);
        let tms = bed.test.clone();
        let bed_name = bed.name();
        for mut s in schemes {
            let (sat, total_time) =
                run_offline_batched(&env, env.topo(), &tms, s.as_mut(), OFFLINE_BATCH);
            let mean_time = total_time.as_secs_f64() / tms.len().max(1) as f64;
            t.row(vec![
                bed_name.clone(),
                s.name().to_string(),
                metrics::fmt_secs(mean_time),
                format!("{:.1}", metrics::mean(&sat)),
            ]);
            rows_csv.push(format!(
                "{},{},{:.6},{:.2}",
                bed_name,
                s.name(),
                mean_time,
                metrics::mean(&sat)
            ));
        }
    }
    emit("fig13", &t.render());
    emit_csv(
        "fig13",
        "topology,scheme,comp_time_s,offline_satisfied_pct",
        &rows_csv,
    );
}

/// Figure 18: allocation performance over time (per-interval satisfied
/// demand under the online control loop) on the ASN testbed.
pub fn fig18(h: &mut Harness) {
    let kind = TopoKind::Asn;
    let interval = h.online_interval(kind);
    let schemes = lineup(h, kind, false);
    let bed = h.bed(kind);
    let env = Arc::clone(&bed.env);
    // Extend the series so slow schemes visibly reuse stale routes; start
    // past the train/val windows so the model has not seen these matrices.
    let test_start = bed.train.len() + bed.val.len();
    let tms = bed.traffic.series(test_start, bed.test.len().max(16));
    let mut names = Vec::new();
    let mut series: Vec<Vec<f64>> = Vec::new();
    for mut s in schemes {
        let res = run_online(&env, env.topo(), &tms, s.as_mut(), interval);
        names.push(s.name().to_string());
        series.push(res.satisfied_series());
    }
    let mut header: Vec<&str> = vec!["interval"];
    for n in &names {
        header.push(n);
    }
    let mut t = Table::new(
        "Figure 18: satisfied demand (%) per '5-minute' interval on ASN",
        &header,
    );
    let mut rows_csv = Vec::new();
    for i in 0..tms.len() {
        let mut row = vec![i.to_string()];
        let mut csv = i.to_string();
        for s in &series {
            row.push(format!("{:.1}", s[i]));
            csv.push_str(&format!(",{:.2}", s[i]));
        }
        t.row(row);
        rows_csv.push(csv);
    }
    emit("fig18", &t.render());
    emit_csv("fig18", &format!("interval,{}", names.join(",")), &rows_csv);
}

//! `teal-topology`: WAN graphs, candidate paths, and topology generators.
//!
//! This substrate replaces the paper's external topology data (Topology Zoo,
//! CAIDA, proprietary SWAN) with seeded generators matching the published
//! structural profiles, and implements the path machinery of the TE path
//! formulation: Dijkstra, Yen's k-shortest simple paths, and the path-edge
//! incidence structure FlowGNN message-passes over.
// No raw-pointer or FFI work belongs in this crate; the workspace's
// audited unsafe lives in `teal-nn`/`teal-lp` only (see the root crate's
// unsafe inventory docs).
#![forbid(unsafe_code)]

pub mod gen;
pub mod graph;
pub mod paths;
pub mod stats;

pub use gen::{b4, generate, gravity_pairs, large_wan, TopoKind};
pub use graph::{Edge, EdgeId, NodeId, Topology};
pub use paths::{dijkstra, k_shortest_paths, k_shortest_paths_with, KspScratch, Path, PathSet};

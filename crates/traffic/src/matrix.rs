//! Traffic matrices and demand bookkeeping.
//!
//! A [`TrafficMatrix`] stores one volume per demand, aligned with an external
//! ordered pair list (the same order used by `PathSet`). The paper's traffic
//! statistics of record — total volume and the share carried by the top 10%
//! of demands (88.4% in the SWAN trace) — are computed here.

/// One interval's traffic demands, aligned with a demand-pair list.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficMatrix {
    demands: Vec<f64>,
}

impl TrafficMatrix {
    /// Wrap a demand vector. All volumes must be finite and non-negative.
    pub fn new(demands: Vec<f64>) -> Self {
        assert!(
            demands.iter().all(|d| d.is_finite() && *d >= 0.0),
            "demands must be finite and non-negative"
        );
        TrafficMatrix { demands }
    }

    /// Number of demands.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// True when there are no demands.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Demand volumes in pair order.
    pub fn demands(&self) -> &[f64] {
        &self.demands
    }

    /// Mutable access for perturbation utilities.
    pub fn demands_mut(&mut self) -> &mut [f64] {
        &mut self.demands
    }

    /// Volume of one demand.
    pub fn demand(&self, d: usize) -> f64 {
        self.demands[d]
    }

    /// Total traffic volume.
    pub fn total(&self) -> f64 {
        self.demands.iter().sum()
    }

    /// Multiply every demand by a constant.
    pub fn scale(&mut self, factor: f64) {
        assert!(factor >= 0.0);
        for d in &mut self.demands {
            *d *= factor;
        }
    }

    /// Indices of the top `frac` fraction of demands by volume
    /// (at least one if non-empty), sorted descending by volume.
    pub fn top_indices(&self, frac: f64) -> Vec<usize> {
        assert!((0.0..=1.0).contains(&frac));
        let mut idx: Vec<usize> = (0..self.demands.len()).collect();
        idx.sort_by(|&a, &b| self.demands[b].partial_cmp(&self.demands[a]).unwrap());
        let n = ((self.demands.len() as f64 * frac).ceil() as usize)
            .max(1)
            .min(self.demands.len());
        idx.truncate(n);
        idx
    }

    /// Fraction of total volume carried by the top `frac` of demands.
    /// The SWAN trace's headline statistic is `top_share(0.10) ≈ 0.884`.
    pub fn top_share(&self, frac: f64) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        let top: f64 = self
            .top_indices(frac)
            .iter()
            .map(|&i| self.demands[i])
            .sum();
        top / total
    }
}

/// Per-demand variance of changes between consecutive intervals, the
/// statistic the paper's temporal-fluctuation experiment (§5.4) scales up.
pub fn inter_interval_variance(series: &[TrafficMatrix]) -> Vec<f64> {
    assert!(series.len() >= 2, "need at least two intervals");
    let n = series[0].len();
    let mut var = vec![0.0f64; n];
    let mut mean = vec![0.0f64; n];
    let steps = (series.len() - 1) as f64;
    for w in series.windows(2) {
        for (d, m) in mean.iter_mut().enumerate() {
            *m += (w[1].demand(d) - w[0].demand(d)) / steps;
        }
    }
    for w in series.windows(2) {
        for d in 0..n {
            let delta = w[1].demand(d) - w[0].demand(d) - mean[d];
            var[d] += delta * delta / steps;
        }
    }
    var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_scaling() {
        let mut tm = TrafficMatrix::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(tm.total(), 6.0);
        tm.scale(2.0);
        assert_eq!(tm.total(), 12.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_rejected() {
        let _ = TrafficMatrix::new(vec![-1.0]);
    }

    #[test]
    fn top_indices_sorted_by_volume() {
        let tm = TrafficMatrix::new(vec![5.0, 1.0, 10.0, 3.0]);
        assert_eq!(tm.top_indices(0.5), vec![2, 0]);
        assert_eq!(tm.top_indices(0.25), vec![2]);
    }

    #[test]
    fn top_share_extremes() {
        let tm = TrafficMatrix::new(vec![100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((tm.top_share(0.1) - 1.0).abs() < 1e-12);
        let uniform = TrafficMatrix::new(vec![1.0; 10]);
        assert!((uniform.top_share(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn variance_of_constant_series_is_zero() {
        let series = vec![TrafficMatrix::new(vec![2.0, 3.0]); 5];
        let var = inter_interval_variance(&series);
        assert!(var.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn variance_detects_oscillation() {
        let a = TrafficMatrix::new(vec![0.0]);
        let b = TrafficMatrix::new(vec![2.0]);
        let series = vec![a.clone(), b.clone(), a.clone(), b, a];
        let var = inter_interval_variance(&series);
        assert!(var[0] > 0.5);
    }
}

//! Hand-rolled Linux FFI for the event-loop front end: `epoll`, `eventfd`
//! and `fcntl`, declared directly against libc's exported symbols because
//! the crates registry (and with it the `libc` crate) is unreachable in
//! this environment.
//!
//! This file is the workspace's **only** raw-FFI / raw-fd site outside the
//! audited compute kernels: the `cargo xtask lint` `ffi-confined` rule
//! rejects `extern` declarations and `std::os::fd` imports everywhere
//! else, so every syscall and every raw fd stays behind the typed wrappers
//! below ([`Epoll`], [`EventFd`], [`set_nonblocking`], the `*_fd`
//! accessors). The wrappers own their fds (closed on drop) and surface
//! every failure as `io::Error` via `errno`.

// The crate root carries `#![deny(unsafe_code)]`; this module is the one
// place allowed to override it.
#![allow(unsafe_code)]

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;

// Readiness flags (wait side and interest side share the namespace).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half — half-close detection without a `read`.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. x86-64 is the one Linux ABI where
/// the struct is packed (no padding between `events` and `data`, a relic
/// of the 32-bit compat layer); every other architecture uses natural
/// alignment. Field reads must copy (`ev.events`), never reference.
#[derive(Clone, Copy, Default)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub struct EpollEvent {
    /// Readiness flag set (`EPOLLIN | ...`).
    pub events: u32,
    /// Caller-chosen token returned verbatim with each event (the event
    /// loop packs a slot index + generation in here).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, ...) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// Map the C return convention (negative = error, details in errno) to
/// `io::Result`.
fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance (closed on drop).
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; the flag set is valid.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live, correctly laid out epoll_event for the
        // duration of the call; the kernel copies it and does not retain
        // the pointer past return.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with interest `events`, delivering `token` on wakes.
    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Re-arm `fd` with a new interest set (same token semantics).
    pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregister `fd` entirely.
    pub fn del(&self, fd: i32) -> io::Result<()> {
        // SAFETY: EPOLL_CTL_DEL ignores the event argument (a null pointer
        // is explicitly allowed on every kernel this can run on).
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) })?;
        Ok(())
    }

    /// Block up to `timeout_ms` (`-1` = forever) for readiness, filling
    /// `events` from the front; returns how many entries are valid. An
    /// interrupting signal reports as zero events so callers just re-loop.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        let max = i32::try_from(events.len()).unwrap_or(i32::MAX);
        // SAFETY: `events` is writable for `max` entries and outlives the
        // call; the kernel writes at most `max` entries.
        let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the epoll fd this struct owns; nothing uses
        // it after drop.
        unsafe { close(self.fd) };
    }
}

/// An owned nonblocking eventfd — the completion-wakeup doorbell shard
/// dispatchers ring so they never touch a socket. `ring` is callable from
/// any thread (eventfd writes are atomic).
pub struct EventFd {
    fd: i32,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes no pointers; the flag set is valid.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The fd to register with [`Epoll::add`] under `EPOLLIN` interest.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Ring the doorbell. A saturated counter (EAGAIN) still leaves the fd
    /// readable, so the error is ignorable by design; no other failure is
    /// reachable for a valid eventfd.
    pub fn ring(&self) {
        let buf = 1u64.to_ne_bytes();
        // SAFETY: `buf` is 8 readable bytes, exactly the size eventfd
        // requires per write.
        let _ = unsafe { write(self.fd, buf.as_ptr(), buf.len()) };
    }

    /// Drain the counter so the next [`EventFd::ring`] re-arms
    /// level-triggered readability.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: `buf` is 8 writable bytes, exactly the size eventfd
        // requires per read.
        let _ = unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the eventfd this struct owns; nothing uses
        // it after drop.
        unsafe { close(self.fd) };
    }
}

/// Switch `fd` to nonblocking mode via the classic `fcntl`
/// get-flags/set-flags dance.
pub fn set_nonblocking(fd: i32) -> io::Result<()> {
    // SAFETY: F_GETFL takes no third argument and returns the flag word.
    let flags = cvt(unsafe { fcntl(fd, F_GETFL) })?;
    if flags & O_NONBLOCK != 0 {
        return Ok(());
    }
    // SAFETY: F_SETFL's argument is an int flag word, passed through the
    // variadic slot exactly as C does (int needs no default promotion).
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    Ok(())
}

/// The raw fd of a stream, for epoll registration only — ownership (and
/// closing) stays with the `TcpStream`.
pub fn stream_fd(s: &TcpStream) -> i32 {
    s.as_raw_fd()
}

/// The raw fd of a listener, for epoll registration only.
pub fn listener_fd(l: &TcpListener) -> i32 {
    l.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_rings_and_drains_through_epoll() {
        let ep = Epoll::new().expect("epoll_create1");
        let doorbell = EventFd::new().expect("eventfd");
        ep.add(doorbell.fd(), EPOLLIN, 42).expect("epoll_ctl add");

        let mut events = [EpollEvent::default(); 4];
        // Nothing rung yet: a zero-timeout wait reports no readiness.
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);

        doorbell.ring();
        doorbell.ring(); // coalesces into one readable counter
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let (flags, token) = (events[0].events, events[0].data);
        assert_ne!(flags & EPOLLIN, 0);
        assert_eq!(token, 42);

        // Draining clears level-triggered readability until the next ring.
        doorbell.drain();
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
        doorbell.ring();
        assert_eq!(ep.wait(&mut events, 1000).expect("wait"), 1);
    }

    #[test]
    fn modify_and_del_change_interest() {
        let ep = Epoll::new().expect("epoll_create1");
        let doorbell = EventFd::new().expect("eventfd");
        ep.add(doorbell.fd(), EPOLLIN, 7).expect("add");
        doorbell.ring();

        // Re-arm with a different token: the next wake carries it.
        ep.modify(doorbell.fd(), EPOLLIN, 8).expect("modify");
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 1000).expect("wait"), 1);
        let token = events[0].data;
        assert_eq!(token, 8);

        // Deregistered fds never report, however loudly they ring.
        ep.del(doorbell.fd()).expect("del");
        doorbell.ring();
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
    }

    #[test]
    fn set_nonblocking_is_idempotent() {
        let doorbell = EventFd::new().expect("eventfd");
        set_nonblocking(doorbell.fd()).expect("first");
        set_nonblocking(doorbell.fd()).expect("second");
    }
}

//! Persistent worker pool for the dense/sparse kernels.
//!
//! The original `par` helpers spawned fresh crossbeam scoped threads on
//! every kernel call; at serving rates (thousands of forward passes per TE
//! interval on the batched path) the spawn/join cost is pure overhead. This
//! module keeps `max_threads() - 1` workers alive for the life of the
//! process and hands them *jobs*: an indexed task `f(0..n)` whose chunks
//! workers and the submitting thread claim with one shared atomic counter.
//!
//! Design constraints, in order:
//!
//! * **The caller always participates.** A job makes progress even with
//!   zero workers (single-CPU CI) or with every worker busy elsewhere, so
//!   submission never deadlocks — including *nested* submission from inside
//!   a worker (the outer ADMM parallel sweep calling the parallel matmul).
//! * **Concurrent submitters are first-class.** The serving daemon's
//!   dispatcher, test threads, and training all call kernels at once; jobs
//!   queue up and any idle worker helps whichever job is at the front.
//!   Every operation on the shared state (push job, claim chunk, retire
//!   job) commutes with itself across submitters — there is no per-kernel
//!   lock held while compute runs.
//! * **Borrowed closures.** Kernels pass `&dyn Fn(usize)` borrowing stack
//!   data. The pointer is type-erased to cross the thread boundary; safety
//!   rests on [`run`] not returning until every claimed chunk has finished
//!   (tracked by the `done` count) and on exhausted jobs never being
//!   dereferenced again (the claim counter is monotone).
//!
//! Worker panics are caught per chunk and re-surfaced as a panic in the
//! submitting thread with the original payload (first panic wins), so
//! caller-side `catch_unwind` diagnostics see the real cause — matching
//! the old `crossbeam::scope(...).expect(...)` behavior closely enough for
//! every call site in this workspace. Once a job is poisoned, later chunk
//! claims fast-fail (counted as done, never executed): a batch that will
//! re-panic anyway must not keep burning worker time other jobs could use.
//!
//! Steady state allocates (almost) nothing: each submitting thread caches
//! its last `Job` and re-arms it in place when no worker still holds a
//! reference, and the job queue is preallocated — at serving rates the
//! per-dispatch cost is one queue push, not an allocation.
//!
//! Submitters may bound their fan-out with [`with_thread_cap`]: a capped
//! job carries a helper budget, and workers scanning the queue skip
//! capped-out jobs instead of piling on — the mechanism behind
//! `teal-serve`'s per-shard thread caps when topologies outnumber cores.

// teal-lint: checked-sync
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Jobs ever submitted through [`run`] (including ones served entirely on
/// the submitting thread).
static JOBS: AtomicU64 = AtomicU64::new(0);
/// Chunks executed by the submitting (caller) thread.
static CALLER_CHUNKS: AtomicU64 = AtomicU64::new(0);
/// Chunks stolen by pool workers helping a job.
static HELPER_CHUNKS: AtomicU64 = AtomicU64::new(0);
/// Times a worker scanned past a live job because its helper cap was
/// already met (the [`with_thread_cap`] skip path).
static CAPPED_SKIPS: AtomicU64 = AtomicU64::new(0);

/// Point-in-time pool activity counters: process-wide, monotone since
/// startup. Take two snapshots and subtract to meter an interval. The
/// caller/helper split is the pool's occupancy story — how much kernel work
/// the submitting dispatchers ran themselves versus what the worker threads
/// stole — and `capped_skips` counts demand the thread caps turned away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted through [`run`].
    pub jobs: u64,
    /// Chunks executed by submitting threads.
    pub caller_chunks: u64,
    /// Chunks executed by pool workers.
    pub helper_chunks: u64,
    /// Worker scans that skipped a live job because its helper cap was met.
    pub capped_skips: u64,
}

/// Snapshot the pool counters (relaxed loads; cheap enough for dashboards).
pub fn stats() -> PoolStats {
    PoolStats {
        jobs: JOBS.load(Ordering::Relaxed),
        caller_chunks: CALLER_CHUNKS.load(Ordering::Relaxed),
        helper_chunks: HELPER_CHUNKS.load(Ordering::Relaxed),
        capped_skips: CAPPED_SKIPS.load(Ordering::Relaxed),
    }
}

/// One indexed task: workers claim indices `0..n` until exhausted.
struct Job {
    /// Type- and lifetime-erased task. Only dereferenced between a
    /// successful claim (`next.fetch_add < n`) and the matching `done`
    /// increment, which [`run`] outlives by construction.
    task: *const (dyn Fn(usize) + Sync),
    n: usize,
    /// Maximum number of *workers* allowed to help this job (the submitting
    /// thread always participates on top). `usize::MAX` means uncapped; a
    /// serving shard running under [`with_thread_cap`] bounds it so one
    /// topology's ADMM tiles cannot monopolize the pool.
    helper_cap: usize,
    /// Workers currently helping (reserved slots against `helper_cap`).
    helpers: AtomicUsize,
    /// Next unclaimed index; claims at or past `n` mean "exhausted".
    next: AtomicUsize,
    /// Set when any chunk panicked; the submitter re-panics.
    poisoned: AtomicBool,
    /// First caught panic payload, re-thrown by the submitter so callers
    /// (and their `catch_unwind`s) see the original cause, not a generic
    /// "worker panicked" message.
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Chunks fully executed, with a condvar for the submitter's wait.
    done: Mutex<usize>,
    finished: Condvar,
}

// SAFETY: the raw task pointer is only dereferenced while the submitting
// thread is parked inside `run`, which keeps the closure alive; all other
// fields are Sync primitives.
unsafe impl Send for Job {}
// SAFETY: as above — shared access to `task` is a read of an immutable fat
// pointer whose referent outlives every dereference, and the remaining
// fields synchronize themselves.
unsafe impl Sync for Job {}

impl Job {
    /// Reserve one helper slot against `helper_cap`; workers that fail to
    /// reserve leave the job to the threads already on it.
    fn try_reserve_helper(&self) -> bool {
        let mut h = self.helpers.load(Ordering::Relaxed);
        loop {
            if h >= self.helper_cap {
                return false;
            }
            match self
                .helpers
                .compare_exchange_weak(h, h + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(cur) => h = cur,
            }
        }
    }

    /// Claim and execute chunks until the job is exhausted. Called by
    /// workers and by the submitting thread alike. Returns the number of
    /// chunks this thread claimed, so the caller can attribute them to the
    /// right occupancy counter with one flush instead of a fetch-add per
    /// chunk.
    fn help(&self) -> u64 {
        let mut claimed = 0u64;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return claimed;
            }
            claimed += 1;
            // Fast-fail a poisoned job: the submitter re-panics regardless
            // of what later chunks compute, so executing them only burns
            // worker time other jobs could use. Claimed chunks still count
            // toward `done` so the completion protocol (and `wait`) holds.
            if self.poisoned.load(Ordering::Acquire) {
                self.finish_chunk();
                continue;
            }
            // SAFETY: `i < n`, so the submitter is still inside `run` and
            // the closure is alive.
            let task = unsafe { &*self.task };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                let mut slot = self.payload.lock();
                if slot.is_none() {
                    *slot = Some(p);
                }
                drop(slot);
                self.poisoned.store(true, Ordering::Release);
            }
            self.finish_chunk();
        }
    }

    /// Count one claimed chunk as settled, waking the submitter on the last.
    fn finish_chunk(&self) {
        let mut done = self.done.lock();
        *done += 1;
        if *done == self.n {
            self.finished.notify_all();
        }
    }

    /// Block until every chunk (including ones claimed by workers) is done.
    fn wait(&self) {
        let mut done = self.done.lock();
        while *done < self.n {
            done = self.finished.wait(done);
        }
    }
}

/// Queue shared between submitters and workers.
struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
}

/// The process-wide pool: `max_threads() - 1` parked workers plus every
/// submitting thread.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            // Preallocated so steady-state pushes never grow the deque: the
            // pending-job count is bounded by concurrent submitters, far
            // below this.
            queue: Mutex::new(VecDeque::with_capacity(64)),
            available: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("teal-nn-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        WorkerPool { shared, workers }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                // Retire exhausted jobs the submitter has not removed yet.
                while q
                    .front()
                    .is_some_and(|j| j.next.load(Ordering::Relaxed) >= j.n)
                {
                    q.pop_front();
                }
                // First live job with a free helper slot: a capped-out job
                // (helper_cap reached) is skipped so workers fall through to
                // whatever is queued behind it instead of piling onto a lane
                // that asked to be left alone.
                let mut skipped = 0u64;
                let claimable = q
                    .iter()
                    .find(|j| {
                        if j.next.load(Ordering::Relaxed) >= j.n {
                            return false;
                        }
                        if j.try_reserve_helper() {
                            return true;
                        }
                        skipped += 1;
                        false
                    })
                    .map(Arc::clone);
                if skipped > 0 {
                    CAPPED_SKIPS.fetch_add(skipped, Ordering::Relaxed);
                }
                if let Some(j) = claimable {
                    break j;
                }
                q = shared.available.wait(q);
            }
        };
        let stolen = job.help();
        if stolen > 0 {
            HELPER_CHUNKS.fetch_add(stolen, Ordering::Relaxed);
        }
        // `help` returns only once the job is exhausted, so releasing the
        // slot never reopens capacity on a job that still has chunks.
        job.helpers.fetch_sub(1, Ordering::Relaxed);
    }
}

fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(crate::par::max_threads().saturating_sub(1)))
}

/// Number of persistent worker threads (0 on a single-CPU machine — the
/// submitting thread then runs every chunk itself).
pub fn worker_count() -> usize {
    global().workers
}

thread_local! {
    /// Thread cap applied to jobs submitted from this thread (see
    /// [`with_thread_cap`]). `None` = uncapped.
    static THREAD_CAP: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Run `f` with every [`run`] call *from this thread* capped to `cap`
/// threads total (the submitting thread plus at most `cap - 1` pool
/// workers). `cap == 1` runs jobs entirely on the submitting thread without
/// touching the queue. Nested and re-entrant uses compose (the innermost
/// cap wins); jobs submitted by *worker* threads on behalf of a capped job
/// are not capped — the cap binds at the dispatch lane's top-level calls,
/// which is where serving shards submit their ADMM tiles.
///
/// This is the mechanism behind `teal-serve`'s per-shard thread caps: when
/// topology count exceeds core count, each shard pins its tile fan-out so
/// shards degrade into roughly-even lanes instead of thrashing the pool.
pub fn with_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_CAP.with(|c| c.replace(Some(cap.max(1))));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Execute `f(0)`, …, `f(n - 1)` across the pool, returning once all calls
/// have finished. Each index is claimed by exactly one thread, so `f` may
/// hand out disjoint `&mut` chunks through interior unsafe (see `par`).
/// Panics in `f` propagate to the caller after all chunks settle.
pub fn run(n: usize, f: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    JOBS.fetch_add(1, Ordering::Relaxed);
    let pool = global();
    let cap = THREAD_CAP.with(|c| c.get());
    if pool.workers == 0 || n == 1 || cap == Some(1) {
        for i in 0..n {
            f(i);
        }
        CALLER_CHUNKS.fetch_add(n as u64, Ordering::Relaxed);
        return;
    }
    // Workers allowed to help this job on top of the submitting thread.
    let helper_cap = cap.map_or(usize::MAX, |c| c - 1);
    // Erase the borrow: `run` does not return until `done == n`, and no
    // thread dereferences `task` after the claim counter passes `n`.
    // SAFETY: pure lifetime erasure of a fat reference; validity is upheld
    // by the wait-before-return protocol documented on `Job::task`.
    let task: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
    };
    // Steady-state job reuse: each submitting thread caches its last Job
    // and re-arms it in place when it holds the only reference (no worker
    // kept a clone past the previous job's exhaustion — `Arc::get_mut`
    // proves exclusivity, so the reset is race-free). Serving loops thus
    // stop minting a Job allocation per kernel dispatch; a fresh Job is
    // built only when a worker still holds the old one.
    let job = match JOB_CACHE.with(|c| c.take()) {
        Some(mut cached) => {
            if let Some(m) = Arc::get_mut(&mut cached) {
                m.task = task;
                m.n = n;
                m.helper_cap = helper_cap;
                *m.helpers.get_mut() = 0;
                *m.next.get_mut() = 0;
                *m.poisoned.get_mut() = false;
                *m.payload.get_mut() = None;
                *m.done.get_mut() = 0;
                cached
            } else {
                fresh_job(task, n, helper_cap)
            }
        }
        None => fresh_job(task, n, helper_cap),
    };
    {
        let mut q = pool.shared.queue.lock();
        q.push_back(Arc::clone(&job));
    }
    pool.shared.available.notify_all();
    let ran = job.help();
    if ran > 0 {
        CALLER_CHUNKS.fetch_add(ran, Ordering::Relaxed);
    }
    job.wait();
    // Drop our queue entry eagerly (workers also skip exhausted fronts).
    {
        let mut q = pool.shared.queue.lock();
        q.retain(|j| !Arc::ptr_eq(j, &job));
    }
    if job.poisoned.load(Ordering::Acquire) {
        // Re-throw the original payload so the caller's panic handling
        // (e.g. the serving engine's catch_unwind → AllocError::Poisoned)
        // reports the real cause.
        if let Some(p) = job.payload.lock().take() {
            std::panic::resume_unwind(p);
        }
        panic!("teal-nn pool worker panicked");
    }
    JOB_CACHE.with(|c| c.set(Some(job)));
}

thread_local! {
    /// Per-thread cache of the last submitted [`Job`], re-armed by [`run`]
    /// when exclusively owned. Never dereferenced while cached: the job is
    /// exhausted (`next >= n`) and off the queue, so no thread touches its
    /// stale `task` pointer.
    static JOB_CACHE: std::cell::Cell<Option<Arc<Job>>> = const { std::cell::Cell::new(None) };
}

fn fresh_job(task: *const (dyn Fn(usize) + Sync), n: usize, helper_cap: usize) -> Arc<Job> {
    Arc::new(Job {
        task,
        n,
        helper_cap,
        helpers: AtomicUsize::new(0),
        next: AtomicUsize::new(0),
        poisoned: AtomicBool::new(false),
        payload: Mutex::new(None),
        done: Mutex::new(0),
        finished: Condvar::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} hit count");
        }
    }

    #[test]
    fn empty_job_is_a_noop() {
        run(0, &|_| panic!("must never be called"));
    }

    #[test]
    fn stats_count_jobs_and_chunks() {
        // Counters are process-global and other tests run concurrently, so
        // only delta lower bounds are meaningful here.
        let before = stats();
        run(64, &|_| {});
        let after = stats();
        assert!(after.jobs > before.jobs, "job not counted");
        let chunks = (after.caller_chunks - before.caller_chunks)
            + (after.helper_chunks - before.helper_chunks);
        assert!(chunks >= 64, "expected >= 64 new chunks, got {chunks}");
    }

    #[test]
    fn panic_payload_reaches_submitter() {
        let caught = std::panic::catch_unwind(|| {
            run(4, &|i| {
                if i == 2 {
                    panic!("tile {i} exploded");
                }
            });
        });
        let p = caught.expect_err("poisoned job must re-panic");
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("exploded"), "original payload lost: {msg:?}");
    }

    #[test]
    fn poisoned_job_stops_executing_chunks() {
        // Deterministic single-thread drive of the claim loop: chunk 2
        // panics, so chunks 3..8 must be claimed-and-skipped, not executed
        // — while `done` still reaches `n` so `wait` cannot hang.
        let hits: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        let task = |i: usize| {
            if i == 2 {
                panic!("chunk 2 exploded");
            }
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        let fref: &(dyn Fn(usize) + Sync) = &task;
        // SAFETY: the job lives only within this scope; `help` runs and
        // finishes here, so the erased borrow never outlives the closure.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(fref)
        };
        let job = fresh_job(erased, 8, usize::MAX);
        job.help();
        job.wait();
        assert_eq!(hits[0].load(Ordering::Relaxed), 1);
        assert_eq!(hits[1].load(Ordering::Relaxed), 1);
        for (i, h) in hits.iter().enumerate().skip(2) {
            assert_eq!(
                h.load(Ordering::Relaxed),
                0,
                "chunk {i} ran after the job was poisoned"
            );
        }
        assert!(job.poisoned.load(Ordering::Acquire));
        assert!(job.payload.lock().is_some());
    }

    #[test]
    fn thread_cap_one_runs_on_the_submitting_thread() {
        let submitter = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        with_thread_cap(1, || {
            run(64, &|_| {
                assert_eq!(
                    std::thread::current().id(),
                    submitter,
                    "cap=1 chunk escaped to a pool worker"
                );
                ran.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        // The cap is scoped: it must not leak past the closure.
        assert_eq!(THREAD_CAP.with(|c| c.get()), None);
    }

    #[test]
    fn thread_cap_bounds_concurrent_executors() {
        // Under any pool size, a cap of 2 must never let more than 2
        // threads (submitter + 1 helper) execute chunks at once. The sleep
        // widens each chunk so an over-cap worker would be caught.
        let current = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        with_thread_cap(2, || {
            run(32, &|_| {
                let c = current.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(c, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(200));
                current.fetch_sub(1, Ordering::SeqCst);
            });
        });
        let peak = peak.load(Ordering::SeqCst);
        assert!(
            (1..=2).contains(&peak),
            "peak executors {peak} exceeds cap 2"
        );
    }

    #[test]
    fn capped_results_match_uncapped() {
        let sum_capped = AtomicUsize::new(0);
        with_thread_cap(3, || {
            run(100, &|i| {
                sum_capped.fetch_add(i + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(sum_capped.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn nested_submission_completes() {
        let total = AtomicUsize::new(0);
        run(4, &|_| {
            run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn concurrent_submitters_each_complete() {
        let sums: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for sum in &sums {
                s.spawn(move || {
                    run(100, &|i| {
                        sum.fetch_add(i + 1, Ordering::Relaxed);
                    });
                });
            }
        });
        for sum in &sums {
            assert_eq!(sum.load(Ordering::Relaxed), 5050);
        }
    }
}

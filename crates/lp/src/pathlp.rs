//! High-level TE LP solving — the "LP-all" role from the paper.
//!
//! The paper's LP-all runs Gurobi on the full path LP. Our substitute picks
//! a method by instance size:
//!
//! * **small instances** — the exact dense [`crate::simplex`] solver
//!   (certified optimal; used for ground truth in tests and on B4-scale
//!   networks);
//! * **large instances** — cold-started [`crate::admm`] run to convergence,
//!   which is near-optimal and whose iterative runtime scales with problem
//!   size, reproducing the paper's "LP solvers get slow at scale" behaviour.
//!
//! The min-max-link-utilization objective (§5.5), which routes *all* demand
//! while minimizing peak utilization, is solved by projected subgradient
//! descent over the per-demand probability simplices.

use crate::admm::{AdmmConfig, AdmmSolver};
use crate::problem::{Allocation, Objective, TeInstance};
use crate::simplex::{self, Row, SimplexStatus};

/// Which backend solved the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpMethod {
    /// Exact dense simplex.
    Simplex,
    /// ADMM to convergence.
    Admm,
    /// Projected subgradient (MLU only).
    Subgradient,
}

/// Solve metadata.
#[derive(Clone, Copy, Debug)]
pub struct LpInfo {
    /// Backend used.
    pub method: LpMethod,
    /// Iterations (pivots for simplex).
    pub iterations: usize,
}

/// Configuration for [`solve_lp`].
#[derive(Clone, Copy, Debug)]
pub struct LpConfig {
    /// Use the exact simplex when `variables + constraints` is at most this.
    pub simplex_budget: usize,
    /// ADMM settings for larger instances.
    pub admm: AdmmConfig,
    /// Iterations for the MLU subgradient method.
    pub mlu_iters: usize,
}

impl Default for LpConfig {
    fn default() -> Self {
        LpConfig {
            simplex_budget: 1200,
            admm: AdmmConfig::to_convergence(),
            mlu_iters: 400,
        }
    }
}

/// Build the simplex rows of the path LP (demand rows then capacity rows).
pub fn build_rows(inst: &TeInstance) -> Vec<Row> {
    let k = inst.k();
    let mut rows = Vec::with_capacity(inst.num_demands() + inst.topo.num_edges());
    for d in 0..inst.num_demands() {
        rows.push(Row {
            coeffs: (0..k).map(|j| (d * k + j, 1.0)).collect(),
            rhs: 1.0,
        });
    }
    for e in 0..inst.topo.num_edges() {
        let plist = inst.paths.paths_on_edge(e);
        if plist.is_empty() {
            continue;
        }
        let coeffs: Vec<(usize, f64)> = plist
            .iter()
            .map(|&p| {
                // Duplicate (padded) path slots contribute multiple terms on
                // the same variable; simplex rows sum duplicate columns when
                // the same index repeats, so emit one term per slot.
                (p as usize, inst.tm.demand(p as usize / k))
            })
            .collect();
        rows.push(Row {
            coeffs,
            rhs: inst.topo.edge(e).capacity,
        });
    }
    rows
}

/// Solve the TE LP for a linear objective, choosing a backend by size.
pub fn solve_lp(inst: &TeInstance, obj: Objective, cfg: &LpConfig) -> (Allocation, LpInfo) {
    match obj {
        Objective::MinMaxLinkUtil => solve_mlu(inst, cfg.mlu_iters),
        _ => {
            let k = inst.k();
            let nvars = inst.paths.num_paths();
            let ncons = inst.num_demands() + inst.topo.num_edges();
            if nvars + ncons <= cfg.simplex_budget {
                let c = inst.value_coefficients(obj);
                let rows = build_rows(inst);
                let r = simplex::solve(&c, &rows, 200_000);
                debug_assert_ne!(r.status, SimplexStatus::Unbounded);
                let mut alloc = Allocation::from_splits(k, r.x);
                alloc.project_demand_constraints();
                (
                    alloc,
                    LpInfo {
                        method: LpMethod::Simplex,
                        iterations: r.iterations,
                    },
                )
            } else {
                let solver = AdmmSolver::new(inst, obj);
                let init = Allocation::zeros(inst.num_demands(), k);
                let (alloc, rep) = solver.run(&init, cfg.admm);
                (
                    alloc,
                    LpInfo {
                        method: LpMethod::Admm,
                        iterations: rep.iterations,
                    },
                )
            }
        }
    }
}

/// Minimize max link utilization subject to routing *all* demand:
/// `min_F max_e load_e(F)/c_e` with `F_d ∈ Δ_k` (full simplex per demand).
///
/// Projected subgradient: at each step, find the argmax edge, push the
/// splits of paths crossing it downward, and re-project onto the simplex.
pub fn solve_mlu(inst: &TeInstance, iters: usize) -> (Allocation, LpInfo) {
    let k = inst.k();
    let nd = inst.num_demands();
    let mut alloc = Allocation::shortest_path(nd, k);
    if nd == 0 {
        return (
            alloc,
            LpInfo {
                method: LpMethod::Subgradient,
                iterations: 0,
            },
        );
    }
    let mut best = alloc.clone();
    let mut best_mlu = mlu_of(inst, &alloc);
    for t in 0..iters {
        // Compute loads.
        let mut loads = vec![0.0f64; inst.topo.num_edges()];
        for d in 0..nd {
            let vol = inst.tm.demand(d);
            if vol <= 0.0 {
                continue;
            }
            for (j, &s) in alloc.demand_splits(d).iter().enumerate() {
                if s > 0.0 {
                    for &e in &inst.paths.paths_for(d)[j].edges {
                        loads[e] += s * vol;
                    }
                }
            }
        }
        // Argmax utilization edge.
        let (emax, util) = loads
            .iter()
            .enumerate()
            .filter(|(e, _)| inst.topo.edge(*e).capacity > 0.0)
            .map(|(e, &l)| (e, l / inst.topo.edge(e).capacity))
            .fold((0, 0.0), |acc, cur| if cur.1 > acc.1 { cur } else { acc });
        if util < best_mlu {
            best_mlu = util;
            best = alloc.clone();
        }
        if util <= 1e-12 {
            break;
        }
        // Subgradient step on the splits of paths crossing the max edge.
        let step = 0.25 / (1.0 + t as f64).sqrt();
        let cap = inst.topo.edge(emax).capacity;
        for &p in inst.paths.paths_on_edge(emax) {
            let p = p as usize;
            let d = p / k;
            let vol = inst.tm.demand(d);
            if vol <= 0.0 {
                continue;
            }
            let j = p % k;
            let g = vol / cap;
            alloc.demand_splits_mut(d)[j] -= step * g / (1.0 + g);
        }
        // Re-project each touched demand's splits onto the full simplex.
        let mut touched: Vec<usize> = inst
            .paths
            .paths_on_edge(emax)
            .iter()
            .map(|&p| p as usize / k)
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for d in touched {
            let row = alloc.demand_splits_mut(d);
            project_simplex(row);
        }
    }
    (
        best,
        LpInfo {
            method: LpMethod::Subgradient,
            iterations: iters,
        },
    )
}

fn mlu_of(inst: &TeInstance, alloc: &Allocation) -> f64 {
    crate::flow::evaluate(inst, alloc).max_link_util
}

/// Euclidean projection of a vector onto the probability simplex
/// `{x ≥ 0, Σx = 1}` (Held-Wolfe-Crowder / sort-based algorithm).
pub fn project_simplex(x: &mut [f64]) {
    let n = x.len();
    let mut u: Vec<f64> = x.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut css = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let candidate = (css - 1.0) / (i + 1) as f64;
        if ui - candidate > 0.0 {
            rho = i + 1;
            theta = candidate;
        }
    }
    let _ = rho;
    let _ = n;
    for v in x.iter_mut() {
        *v = (*v - theta).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::evaluate;
    use teal_topology::{b4, PathSet, Topology};
    use teal_traffic::TrafficMatrix;

    fn parallel_pair() -> Topology {
        // Two disjoint 2-hop routes of equal capacity between 0 and 3.
        let mut t = Topology::new("p", 4);
        t.add_link(0, 1, 10.0, 1.0);
        t.add_link(1, 3, 10.0, 1.0);
        t.add_link(0, 2, 10.0, 1.1);
        t.add_link(2, 3, 10.0, 1.1);
        t
    }

    #[test]
    fn project_simplex_basics() {
        let mut x = vec![0.5, 0.5, 0.5];
        project_simplex(&mut x);
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(x.iter().all(|v| (*v - 1.0 / 3.0).abs() < 1e-9));

        let mut y = vec![2.0, -1.0];
        project_simplex(&mut y);
        assert!((y[0] - 1.0).abs() < 1e-9);
        assert!(y[1].abs() < 1e-9);
    }

    #[test]
    fn small_instance_uses_simplex_and_is_optimal() {
        let topo = parallel_pair();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![25.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let (alloc, info) = solve_lp(&inst, Objective::TotalFlow, &LpConfig::default());
        assert_eq!(info.method, LpMethod::Simplex);
        // Both routes saturated: 20 of 25 delivered.
        let flow = evaluate(&inst, &alloc).realized_flow;
        assert!((flow - 20.0).abs() < 1e-6, "flow {flow}");
    }

    #[test]
    fn large_budget_forces_admm_and_agrees_with_simplex() {
        let topo = parallel_pair();
        let pairs = vec![(0usize, 3usize), (1usize, 2usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![25.0, 4.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let (exact, _) = solve_lp(&inst, Objective::TotalFlow, &LpConfig::default());
        let cfg = LpConfig {
            simplex_budget: 0,
            ..LpConfig::default()
        };
        let (approx, info) = solve_lp(&inst, Objective::TotalFlow, &cfg);
        assert_eq!(info.method, LpMethod::Admm);
        let fe = evaluate(&inst, &exact).realized_flow;
        let fa = evaluate(&inst, &approx).realized_flow;
        assert!(fa > 0.93 * fe, "admm {fa} vs simplex {fe}");
    }

    #[test]
    fn mlu_splits_evenly_on_symmetric_routes() {
        let topo = parallel_pair();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![10.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let (alloc, info) = solve_lp(&inst, Objective::MinMaxLinkUtil, &LpConfig::default());
        assert_eq!(info.method, LpMethod::Subgradient);
        let mlu = evaluate(&inst, &alloc).max_link_util;
        // Optimal MLU = 10 / (10 + 10) = 0.5.
        assert!(mlu < 0.56, "mlu {mlu}, optimal 0.5");
        // All demand still routed.
        let s: f64 = alloc.demand_splits(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mlu_beats_shortest_path_on_b4() {
        let topo = b4();
        let pairs = topo.all_pairs();
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![3.0; pairs.len()]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let sp_mlu = evaluate(&inst, &Allocation::shortest_path(pairs.len(), 4)).max_link_util;
        let (alloc, _) = solve_mlu(&inst, 300);
        let got = evaluate(&inst, &alloc).max_link_util;
        assert!(got < sp_mlu, "mlu {got} should beat shortest-path {sp_mlu}");
    }

    #[test]
    fn delay_penalized_prefers_short_paths() {
        let topo = parallel_pair();
        let pairs = vec![(0usize, 3usize)];
        let paths = PathSet::compute(&topo, &pairs, 4);
        let tm = TrafficMatrix::new(vec![5.0]);
        let inst = TeInstance::new(&topo, &paths, &tm);
        let (alloc, _) = solve_lp(
            &inst,
            Objective::DelayPenalizedFlow(0.9),
            &LpConfig::default(),
        );
        // With light load and a strong penalty, everything goes on path 0.
        assert!(
            alloc.demand_splits(0)[0] > 0.9,
            "splits {:?}",
            alloc.demand_splits(0)
        );
    }
}

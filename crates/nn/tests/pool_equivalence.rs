//! Property tests: the persistent-pool kernels must match the
//! single-threaded kernels (≤ 1e-6, and bit-for-bit where chunking
//! preserves accumulation order).
//!
//! CI containers expose one CPU, where the pool would stay empty and these
//! tests would trivially pass through the serial path — so this binary
//! pins `TEAL_NN_THREADS=4` before the first kernel call (the cap is read
//! once per process). Every test funnels through one `Once`, so `set_var`
//! runs exactly once, before any other thread can be reading the
//! environment (tests run in parallel; concurrent getenv/setenv races are
//! what made `set_var` unsafe in edition 2024).

use proptest::prelude::*;
use teal_nn::par::{par_chunks_mut, par_map, par_row_chunks_mut, pmatmul};
use teal_nn::rng::seeded;
use teal_nn::tensor::{matmul, Tensor};
use teal_nn::Csr;

/// Force a 4-thread pool before any kernel runs (see module docs).
fn force_pool() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        std::env::set_var("TEAL_NN_THREADS", "4");
        // Freeze the cap (reads the env var) while every other test thread
        // is still blocked on this `Once` — no concurrent getenv.
        assert_eq!(teal_nn::par::max_threads(), 4, "thread cap already frozen");
    });
    assert_eq!(teal_nn::par::max_threads(), 4);
    assert_eq!(teal_nn::pool::worker_count(), 3);
}

fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = seeded(seed);
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rand::Rng::gen::<f32>(&mut rng) - 0.5)
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pool matmul ≡ serial matmul on sizes large enough to cross the
    /// parallel threshold (2^18 FLOPs). Row-chunked workers reproduce the
    /// serial accumulation order per row, so the match is bit-exact; we
    /// assert the satellite's 1e-6 bar via exact equality.
    #[test]
    fn pooled_matmul_matches_serial(m in 64usize..200, k in 48usize..96, n in 48usize..96, seed in 0u64..1000) {
        force_pool();
        prop_assume!(m * k * n >= (1 << 18)); // stay on the pooled path
        let a = random_tensor(m, k, seed);
        let b = random_tensor(k, n, seed ^ 0xabcd);
        let pooled = pmatmul(&a, &b);
        let serial = matmul(&a, &b);
        for (i, (x, y)) in pooled.data().iter().zip(serial.data()).enumerate() {
            prop_assert!(x.to_bits() == y.to_bits() || (x - y).abs() <= 1e-6,
                "element {} differs: pooled {} vs serial {}", i, x, y);
        }
    }

    /// Sparse row-parallel SpMM ≡ the same kernel forced serial.
    #[test]
    fn pooled_spmm_matches_serial(rows in 96usize..192, cols in 48usize..96, d in 8usize..24, seed in 0u64..1000) {
        force_pool();
        let mut rng = seeded(seed);
        // ~25% dense random CSR.
        let mut entries: Vec<(usize, usize, f32)> = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if rand::Rng::gen::<f32>(&mut rng) < 0.25 {
                    entries.push((r, c, rand::Rng::gen::<f32>(&mut rng) - 0.5));
                }
            }
        }
        prop_assume!(!entries.is_empty());
        let csr = Csr::from_triplets(rows, cols, &entries);
        let x = random_tensor(cols, d, seed ^ 0x5eed);
        let pooled = csr.spmm(&x);
        // Serial reference: dense matmul against the materialized matrix.
        let mut dense = Tensor::zeros(rows, cols);
        for &(r, c, v) in &entries {
            dense.data_mut()[r * cols + c] += v;
        }
        let serial = matmul(&dense, &x);
        for (i, (a, b)) in pooled.data().iter().zip(serial.data()).enumerate() {
            prop_assert!((a - b).abs() <= 1e-4,
                "spmm element {} differs: pooled {} vs dense {}", i, a, b);
        }
    }

    /// Chunked writes cover every element exactly once under the pool.
    #[test]
    fn pooled_chunks_cover_all(len in 1usize..5000, min_chunk in 1usize..64) {
        force_pool();
        let mut data = vec![0u32; len];
        par_chunks_mut(&mut data, min_chunk, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (start + i) as u32 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            prop_assert_eq!(*v, i as u32 + 1, "element {} written {} times-ish", i, v);
        }
    }

    /// Row-aligned chunking never splits a row and covers everything.
    #[test]
    fn pooled_row_chunks_cover_all(rows in 1usize..300, width in 1usize..32) {
        force_pool();
        let mut data = vec![0u32; rows * width];
        // Huge `work` forces the pooled path regardless of size.
        par_row_chunks_mut_u32(&mut data, width, |row0, chunk| {
            assert_eq!(chunk.len() % width, 0, "chunk split a row");
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (row0 * width + i) as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            prop_assert_eq!(*v, i as u32);
        }
    }

    /// par_map preserves index order under the pool.
    #[test]
    fn pooled_par_map_ordered(n in 1usize..2000) {
        force_pool();
        let out = par_map(n, 7, |i| i * 3 + 1);
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, i * 3 + 1);
        }
    }
}

/// `par_row_chunks_mut` is `f32`-typed; mirror its row-aligned chunking for
/// a `u32` coverage check by round-tripping through bit patterns.
fn par_row_chunks_mut_u32<F>(data: &mut [u32], width: usize, f: F)
where
    F: Fn(usize, &mut [u32]) + Sync,
{
    let mut floats: Vec<f32> = data.iter().map(|&v| f32::from_bits(v)).collect();
    par_row_chunks_mut(&mut floats, width, usize::MAX, |row0, chunk| {
        let mut ints: Vec<u32> = chunk.iter().map(|v| v.to_bits()).collect();
        f(row0, &mut ints);
        for (slot, v) in chunk.iter_mut().zip(ints) {
            *slot = f32::from_bits(v);
        }
    });
    for (slot, v) in data.iter_mut().zip(floats) {
        *slot = v.to_bits();
    }
}

/// Kernels stay correct when hammered from many threads at once (the
/// serving daemon's dispatcher races training and other callers).
#[test]
fn concurrent_kernel_callers_agree_with_serial() {
    force_pool();
    let a = random_tensor(96, 64, 1);
    let b = random_tensor(64, 80, 2);
    let want = matmul(&a, &b);
    std::thread::scope(|s| {
        for _ in 0..6 {
            let (a, b, want) = (&a, &b, &want);
            s.spawn(move || {
                for _ in 0..8 {
                    let got = pmatmul(a, b);
                    assert!(got.approx_eq(want, 1e-6), "concurrent pmatmul diverged");
                }
            });
        }
    });
}

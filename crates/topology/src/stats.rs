//! Topology statistics reported in Table 3 and Figure 17 of the paper.

use crate::graph::Topology;
use crate::paths::{bfs_hops, PathSet};

/// Hop-count diameter (longest shortest path over all reachable pairs).
pub fn hop_diameter(topo: &Topology) -> usize {
    let mut diam = 0;
    for s in 0..topo.num_nodes() {
        for h in bfs_hops(topo, s).into_iter().flatten() {
            diam = diam.max(h);
        }
    }
    diam
}

/// Mean shortest-path length in hops over all ordered reachable pairs.
pub fn mean_shortest_path(topo: &Topology) -> f64 {
    let mut total = 0usize;
    let mut count = 0usize;
    for s in 0..topo.num_nodes() {
        for (t, h) in bfs_hops(topo, s).into_iter().enumerate() {
            if t != s {
                if let Some(h) = h {
                    total += h;
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

/// Figure 17: for each directed edge, the percentage of demands that are
/// routable on it, i.e. the edge lies on at least one of the demand's
/// preconfigured paths.
pub fn routable_demand_share(topo: &Topology, paths: &PathSet) -> Vec<f64> {
    let k = paths.k();
    let mut counts = vec![0usize; topo.num_edges()];
    for d in 0..paths.num_demands() {
        let mut touched: Vec<usize> = paths
            .paths_for(d)
            .iter()
            .flat_map(|p| p.edges.iter().copied())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for e in touched {
            counts[e] += 1;
        }
    }
    let _ = k;
    let nd = paths.num_demands().max(1) as f64;
    counts.into_iter().map(|c| 100.0 * c as f64 / nd).collect()
}

/// Structural invariants every generated `(topology, path set)` pair must
/// satisfy. Returns the first violation as a message, `Ok(())` otherwise.
///
/// Checks: the topology is strongly connected; every path slot is simple,
/// non-empty, connects its demand pair, walks existing edges contiguously,
/// and carries the exact sum of its edge weights. The generator regression
/// tests run this over `large_wan` outputs at several seeds and scales.
pub fn check_path_set(topo: &Topology, paths: &PathSet) -> Result<(), String> {
    if !topo.is_strongly_connected() {
        return Err("topology is not strongly connected".into());
    }
    if paths.num_edges() != topo.num_edges() {
        return Err(format!(
            "path set records {} edges, topology has {}",
            paths.num_edges(),
            topo.num_edges()
        ));
    }
    for (d, &(s, t)) in paths.pairs().iter().enumerate() {
        for (j, p) in paths.paths_for(d).iter().enumerate() {
            let tag = |msg: &str| format!("demand {d} ({s}->{t}) path {j}: {msg}");
            if p.is_empty() {
                return Err(tag("empty path"));
            }
            if !p.is_simple() {
                return Err(tag("path revisits a node"));
            }
            if p.nodes.first() != Some(&s) || p.nodes.last() != Some(&t) {
                return Err(tag("endpoints do not match the demand pair"));
            }
            if p.edges.len() + 1 != p.nodes.len() {
                return Err(tag("edge/node count mismatch"));
            }
            let mut weight = 0.0;
            for (h, &e) in p.edges.iter().enumerate() {
                if e >= topo.num_edges() {
                    return Err(tag("edge id out of range"));
                }
                let edge = topo.edge(e);
                if edge.src != p.nodes[h] || edge.dst != p.nodes[h + 1] {
                    return Err(tag("edge does not connect consecutive nodes"));
                }
                weight += edge.weight;
            }
            if (weight - p.weight).abs() > 1e-9 * weight.max(1.0) {
                return Err(tag("stored weight disagrees with edge weights"));
            }
        }
    }
    Ok(())
}

/// Summary statistics of a distribution: (mean, p25, p50, p75, max).
pub fn five_point(values: &[f64]) -> (f64, f64, f64, f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0, 0.0, 0.0, 0.0);
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    let q = |p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
    (mean, q(0.25), q(0.50), q(0.75), *v.last().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::b4;
    use crate::graph::Topology;
    use crate::paths::PathSet;

    fn line(n: usize) -> Topology {
        let mut t = Topology::new("line", n);
        for i in 0..n - 1 {
            t.add_link(i, i + 1, 10.0, 1.0);
        }
        t
    }

    #[test]
    fn diameter_of_line() {
        assert_eq!(hop_diameter(&line(5)), 4);
    }

    #[test]
    fn mean_sp_of_line3() {
        // pairs: (0,1)=1 (0,2)=2 (1,0)=1 (1,2)=1 (2,0)=2 (2,1)=1 -> mean 8/6
        let m = mean_shortest_path(&line(3));
        assert!((m - 8.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn b4_diameter_reasonable() {
        let t = b4();
        let d = hop_diameter(&t);
        assert!((3..=7).contains(&d), "B4 diameter {d}");
    }

    #[test]
    fn routable_share_bounds() {
        let t = b4();
        let ps = PathSet::compute(&t, &t.all_pairs(), 4);
        let share = routable_demand_share(&t, &ps);
        assert_eq!(share.len(), t.num_edges());
        for s in share {
            assert!((0.0..=100.0).contains(&s));
        }
    }

    #[test]
    fn five_point_summary() {
        let (mean, q25, q50, q75, max) = five_point(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(mean, 3.0);
        assert_eq!(q25, 2.0);
        assert_eq!(q50, 3.0);
        assert_eq!(q75, 4.0);
        assert_eq!(max, 5.0);
    }
}

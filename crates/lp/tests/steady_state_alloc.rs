//! The allocation-free steady-state guarantee, machine-checked: with a
//! retained [`BatchArena`] + output buffers and a reminted
//! [`AdmmBatchSolver`], the second and every later serving window performs
//! **zero heap allocations** on the batched ADMM hot path.
//!
//! A counting global allocator wraps `System`; the test snapshots the
//! alloc counter around each window. This file intentionally holds exactly
//! one `#[test]` — the harness runs it on a single thread, so no other
//! test's allocations can pollute the counter.
//!
//! The solver runs `serial: true` here: that is the single-CPU container's
//! native shape, and it keeps the (separately exercised) worker pool's
//! own bookkeeping out of the measurement. The batched≡per-matrix and
//! arena-reuse≡fresh equivalence suites in `batch_equivalence.rs` cover
//! the parallel schedule.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use teal_lp::{AdmmConfig, AdmmSkeleton, Allocation, BatchArena, Objective};
use teal_topology::{generate, PathSet, TopoKind};
use teal_traffic::TrafficMatrix;

/// `System` plus an allocation counter (allocations only — frees are
/// irrelevant to the claim being tested).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: pure pass-through — the caller upholds GlobalAlloc's
        // contract, which is exactly what `System` requires.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: pass-through; `ptr`/`layout` came from this allocator,
        // i.e. from `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: pass-through; caller's GlobalAlloc obligations forward
        // unchanged to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_windows_allocate_nothing() {
    // A real serving shape: SWAN topology, 16-matrix windows, the paper's
    // 5-iteration fine-tune.
    let topo = generate(TopoKind::Swan, 0.4, 7);
    let mut pairs = topo.all_pairs();
    pairs.truncate(60);
    let paths = PathSet::compute(&topo, &pairs, 4);
    let skel = AdmmSkeleton::new(&topo, &paths, Objective::TotalFlow);
    let nd = paths.num_demands();
    let k = paths.k();
    let cfg = AdmmConfig {
        rho: 1.0,
        max_iters: 5,
        tol: 0.0,
        serial: true,
    };

    const WINDOWS: usize = 6;
    const BATCH: usize = 16;
    // All windows' traffic and warm starts are minted up front (a serving
    // daemon receives them from clients; they are not part of the solver's
    // own steady state).
    let windows: Vec<Vec<TrafficMatrix>> = (0..WINDOWS)
        .map(|w| {
            (0..BATCH)
                .map(|b| {
                    TrafficMatrix::new(
                        (0..nd)
                            .map(|d| ((w * 31 + b * 7 + d) % 23) as f64 * 1.7)
                            .collect(),
                    )
                })
                .collect()
        })
        .collect();
    let inits: Vec<Allocation> = (0..BATCH)
        .map(|b| {
            Allocation::from_splits(k, (0..nd * k).map(|p| ((p + b) % 5) as f64 * 0.3).collect())
        })
        .collect();

    let mut arena = BatchArena::new();
    let mut outs = Vec::new();
    let mut reports = Vec::new();

    // Window 1 grows every buffer to its steady-state size.
    let mut solver = skel.batch_solver(&windows[0]);
    solver.run_batch_into(&inits, cfg, &mut arena, &mut outs, &mut reports);

    // Windows 2..: remint + solve must be allocation-free.
    for (w, tms) in windows.iter().enumerate().skip(1) {
        let before = ALLOCS.load(Ordering::SeqCst);
        skel.remint_batch_solver(&mut solver, tms);
        solver.run_batch_into(&inits, cfg, &mut arena, &mut outs, &mut reports);
        let grew = ALLOCS.load(Ordering::SeqCst) - before;
        assert_eq!(
            grew, 0,
            "window {w} performed {grew} heap allocations on the steady-state hot path"
        );
    }

    // The windows actually computed something (guard against a vacuous
    // pass from, say, an accidentally empty demand set).
    assert_eq!(outs.len(), BATCH);
    assert!(reports.iter().all(|r| r.iterations == 5));
    assert!(outs.iter().any(|a| a.splits().iter().any(|&v| v > 0.0)));
}

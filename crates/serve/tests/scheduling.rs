//! Deadline-aware scheduling end to end: EDF drain order (and its
//! inversion telemetry, against a FIFO baseline), the deadline-capped
//! linger window, per-tenant deficit-round-robin window fairness, the
//! adaptive §3.4 ADMM iteration budget, and the stage-accounting
//! guarantees of multi-chunk drains.

use std::sync::Arc;
use std::time::Duration;
use teal_core::{EngineConfig, Env, ServingContext, TealConfig, TealModel};
use teal_lp::{AdmmConfig, Objective};
use teal_serve::{DrainOrder, ModelRegistry, ServeConfig, ServeDaemon, SubmitRequest};
use teal_topology::b4;
use teal_traffic::TrafficMatrix;

fn model_cfg(seed: u64) -> TealConfig {
    TealConfig {
        gnn_layers: 2,
        seed,
        ..TealConfig::default()
    }
}

fn context(env: &Arc<Env>, seed: u64) -> ServingContext<TealModel> {
    ServingContext::new(
        TealModel::new(Arc::clone(env), model_cfg(seed)),
        EngineConfig::paper_default(env.topo().num_nodes()),
    )
}

/// A context whose ADMM budget is the paper's *large-topology* 5 even on
/// b4, so the adaptive policy has room to downgrade to 2 under pressure.
fn context_budget5(env: &Arc<Env>) -> ServingContext<TealModel> {
    ServingContext::new(
        TealModel::new(Arc::clone(env), model_cfg(3)),
        EngineConfig {
            admm: Some(AdmmConfig {
                rho: 1.0,
                max_iters: 5,
                tol: 0.0,
                serial: false,
            }),
            objective: Objective::TotalFlow,
        },
    )
}

/// One drain holding both plain and deadline'd requests: under the default
/// EDF order the drain serves without deadline inversions; under the FIFO
/// baseline the identical submission order produces at least one. Both
/// daemons must serve every request.
#[test]
fn edf_drain_eliminates_deadline_inversions_fifo_shows_them() {
    for (order, expect_inversions) in [
        (DrainOrder::EarliestDeadlineFirst, false),
        (DrainOrder::Fifo, true),
    ] {
        let env = Arc::new(Env::for_topology(b4()));
        let registry = ModelRegistry::new();
        registry.insert("b4", context(&env, 0));
        let daemon = ServeDaemon::start(
            registry,
            ServeConfig {
                // Long linger + big batch: everything below lands in ONE
                // drain, so the drain order alone decides serving order.
                linger: Duration::from_millis(150),
                max_batch: 64,
                drain_order: order,
                ..ServeConfig::default()
            },
        );
        let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
        let mut tickets = Vec::new();
        for _ in 0..6 {
            tickets.push(daemon.submit(SubmitRequest::new("b4", tm.clone())));
        }
        // Looser deadline submitted *before* the tighter one: FIFO serves
        // 60 s before 30 s (an inversion); EDF swaps them.
        tickets.push(
            daemon.submit(
                SubmitRequest::new("b4", tm.clone()).with_deadline(Duration::from_secs(60)),
            ),
        );
        tickets.push(
            daemon.submit(
                SubmitRequest::new("b4", tm.clone()).with_deadline(Duration::from_secs(30)),
            ),
        );
        for (i, t) in tickets.into_iter().enumerate() {
            t.wait_timeout(Duration::from_secs(60))
                .unwrap_or_else(|e| panic!("{order:?}: request {i} not served: {e}"));
        }
        let stats = daemon.stats();
        assert_eq!(stats.completed, 8, "{order:?}: lost requests");
        assert_eq!(stats.expired, 0, "{order:?}: generous deadlines expired");
        if expect_inversions {
            assert!(
                stats.deadline_inversions >= 1,
                "FIFO baseline served 60s-before-30s without recording an inversion"
            );
        } else {
            assert_eq!(
                stats.deadline_inversions, 0,
                "EDF drain must never serve a tighter deadline after a looser one"
            );
        }
    }
}

/// The linger window must not burn a deadline'd request's budget: with a
/// 10-second linger and a 200 ms deadline, the drain has to fire at the
/// request's budget midpoint (~100 ms), leaving half the budget to solve —
/// the request is *served*, not expired.
#[test]
fn linger_is_capped_by_deadline_budget() {
    let env = Arc::new(Env::for_topology(b4()));
    let registry = ModelRegistry::new();
    registry.insert("b4", context(&env, 0));
    let daemon = ServeDaemon::start(
        registry,
        ServeConfig {
            linger: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    );
    let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
    let reply = daemon
        .submit(SubmitRequest::new("b4", tm).with_deadline(Duration::from_millis(200)))
        .wait_timeout(Duration::from_secs(5))
        .expect("deadline'd request must be served, not expired by the linger");
    // Queue-wait ≈ the budget midpoint (100 ms), nowhere near the 10 s
    // linger; generous slop for CI scheduling noise.
    assert!(
        reply.stages.queue_wait < Duration::from_millis(190),
        "linger ignored the deadline cap: queue-wait {:?}",
        reply.stages.queue_wait
    );
    let stats = daemon.stats();
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.completed, 1);
}

/// Two always-backlogged tenants at weights 2:1 on shards sharing one
/// `shard_threads` budget must see serving windows granted ~2:1 while both
/// are still backlogged.
#[test]
fn drr_splits_contended_windows_by_tenant_weight() {
    const PER_TENANT: usize = 40;
    let env_a = Arc::new(Env::for_topology(b4()));
    let env_b = Arc::new(Env::for_topology(b4()));
    let registry = ModelRegistry::new();
    registry.insert("topo-gold", context(&env_a, 0));
    registry.insert("topo-bronze", context(&env_b, 1));
    let daemon = ServeDaemon::start(
        registry,
        ServeConfig {
            // One window per request so window counts track grants, and a
            // shared thread budget so the WFQ arbiter is armed.
            max_batch: 1,
            linger: Duration::ZERO,
            shard_threads: Some(1),
            tenant_weights: vec![("gold".to_string(), 2), ("bronze".to_string(), 1)],
            ..ServeConfig::default()
        },
    );
    let tm = TrafficMatrix::new(vec![5.0; env_a.num_demands()]);
    let mut tickets = Vec::new();
    for _ in 0..PER_TENANT {
        tickets
            .push(daemon.submit(SubmitRequest::new("topo-gold", tm.clone()).with_tenant("gold")));
        tickets.push(
            daemon.submit(SubmitRequest::new("topo-bronze", tm.clone()).with_tenant("bronze")),
        );
    }
    // Sample the window split mid-contention: under correct DRR gold sits
    // near 2× bronze while both stay backlogged. Any *single* snapshot can
    // catch the arbiter mid-round (gold's double grant just landed,
    // bronze's turn not yet), so poll until some snapshot with bronze ≥ 6
    // lands inside the band; a broken arbiter (starvation, or no weighting
    // at all — the final tally is exactly 1:1) never produces one.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = daemon.stats();
        let windows = |name: &str| {
            stats
                .tenants
                .iter()
                .find(|t| t.tenant == name)
                .map_or(0, |t| t.windows)
        };
        let (g, b) = (windows("gold"), windows("bronze"));
        let ratio = g as f64 / b as f64;
        if b >= 6 && (1.2..=3.0).contains(&ratio) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no mid-contention snapshot near the 2:1 weight band after 30s \
             (last: gold {g} windows / bronze {b}, ratio {ratio:.2})"
        );
        std::thread::yield_now();
    }
    for t in tickets {
        t.wait_timeout(Duration::from_secs(60)).expect("served");
    }
    // Final accounting: every request lands on its own tenant and every
    // window was charged to somebody.
    let stats = daemon.stats();
    for name in ["gold", "bronze"] {
        let t = stats
            .tenants
            .iter()
            .find(|t| t.tenant == name)
            .unwrap_or_else(|| panic!("tenant {name} missing from snapshot"));
        assert_eq!(t.requests, PER_TENANT as u64, "{name}: request accounting");
        assert_eq!(t.windows, PER_TENANT as u64, "{name}: window accounting");
    }
    assert_eq!(stats.deadline_inversions, 0);
}

/// The adaptive §3.4 budget end to end: an unpressured daemon runs every
/// window at the configured 5 iterations; once queue-wait history says the
/// shard is slow and a deadline'd chunk's headroom undercuts it, the
/// window runs at 2 and the downgrade is recorded.
#[test]
fn queue_pressure_downgrades_admm_budget() {
    let env = Arc::new(Env::for_topology(b4()));
    let registry = ModelRegistry::new();
    registry.insert("b4", context_budget5(&env));
    let daemon = ServeDaemon::start(
        registry,
        ServeConfig {
            // Every lone plain request waits out the full 80 ms linger, so
            // the queue-wait p99 climbs to ~80 ms "slowness".
            linger: Duration::from_millis(80),
            ..ServeConfig::default()
        },
    );
    let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
    // Idle phase: deadline-less traffic never downgrades, whatever the
    // queue history looks like.
    for _ in 0..6 {
        daemon.allocate("b4", tm.clone()).expect("idle serve");
    }
    let idle = daemon.stats();
    let admm = idle.per_topology[0]
        .admm
        .as_ref()
        .expect("ADMM ran")
        .clone();
    assert_eq!(admm.budget_downgrades, 0, "idle phase downgraded: {admm:?}");
    assert_eq!(
        admm.windows_by_budget,
        vec![(5, admm.windows)],
        "idle windows must all run the full 5-iteration budget"
    );
    assert_eq!(admm.iterations, admm.budgeted_iterations);
    // Pressure: 200 ms of budget, but the deadline-capped linger drains at
    // the ~100 ms midpoint, leaving ~100 ms of headroom against an ~80 ms
    // queue-wait p99... still unpressured? No: headroom is measured at the
    // chunk's solve start against the *p99*, which the 80 ms linger waits
    // above have pushed to the top of their histogram bucket. Use a 120 ms
    // budget: drain at ~60 ms, headroom ~60 ms < p99 ~80 ms ⇒ downgrade.
    let reply = daemon
        .submit(SubmitRequest::new("b4", tm.clone()).with_deadline(Duration::from_millis(120)))
        .wait_timeout(Duration::from_secs(10))
        .expect("pressured request still served");
    assert!(reply.batch_size >= 1);
    let stats = daemon.stats();
    let admm = stats.per_topology[0]
        .admm
        .as_ref()
        .expect("ADMM ran")
        .clone();
    assert!(
        admm.budget_downgrades >= 1,
        "pressured deadline'd window was not downgraded: {admm:?}"
    );
    assert!(
        admm.windows_by_budget
            .iter()
            .any(|&(b, n)| b == 2 && n >= 1),
        "no 2-iteration window recorded: {:?}",
        admm.windows_by_budget
    );
    // Per-window accounting stays exact through mixed budgets: iterations
    // sum lanes × budget window by window.
    assert_eq!(
        admm.iterations, admm.budgeted_iterations,
        "iteration total must sum per-window budgets: {admm:?}"
    );
    let total_windows: u64 = admm.windows_by_budget.iter().map(|&(_, n)| n).sum();
    assert_eq!(total_windows, admm.windows);
}

/// Multi-chunk drains must still partition end-to-end latency exactly into
/// queue-wait + solve + write. A busy shard accumulates 6 requests, then
/// drains them into 3 chunks of `max_batch = 2`; before the fix the
/// drain-time stamp ended queue-wait for *all* chunks at once, leaving the
/// later chunks' wait-for-their-turn unaccounted.
#[test]
fn multi_chunk_drain_stages_partition_latency_exactly() {
    let env = Arc::new(Env::for_topology(b4()));
    let registry = ModelRegistry::new();
    registry.insert("b4", context(&env, 0));
    let daemon = ServeDaemon::start(
        registry,
        ServeConfig {
            max_batch: 2,
            linger: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
    // First request busies the shard; the next 6 queue up behind it and
    // drain together into 3 chunks.
    let head = daemon.submit(SubmitRequest::new("b4", tm.clone()));
    let tickets: Vec<_> = (0..6)
        .map(|_| daemon.submit(SubmitRequest::new("b4", tm.clone())))
        .collect();
    let mut replies = vec![head
        .wait_timeout(Duration::from_secs(30))
        .expect("head served")];
    for t in tickets {
        replies.push(t.wait_timeout(Duration::from_secs(30)).expect("served"));
    }
    assert!(
        replies.iter().any(|r| r.batch_size == 2),
        "no coalesced chunk formed — the drain never went multi-chunk"
    );
    for (i, r) in replies.iter().enumerate() {
        let sum = r.stages.queue_wait + r.stages.solve + r.stages.write;
        assert_eq!(
            sum, r.latency,
            "request {i}: stages {:?} do not partition e2e latency {:?}",
            r.stages, r.latency
        );
    }
    let stats = daemon.stats();
    let served: usize = stats
        .batch_sizes
        .iter()
        .map(|&(size, n)| size * n as usize)
        .sum();
    assert_eq!(served, 7, "batch-size histogram lost requests");
}

/// Batch-size telemetry counts post-expiry, post-grouping chunk sizes: a
/// request that expires at drain time must not inflate the size of the
/// batch that actually went through the solver.
#[test]
fn batch_size_histogram_excludes_expired_requests() {
    let env = Arc::new(Env::for_topology(b4()));
    let registry = ModelRegistry::new();
    registry.insert("b4", context(&env, 0));
    let daemon = ServeDaemon::start(
        registry,
        ServeConfig {
            linger: Duration::from_millis(200),
            max_batch: 128,
            ..ServeConfig::default()
        },
    );
    let tm = TrafficMatrix::new(vec![5.0; env.num_demands()]);
    // 16 plain requests pile up inside the linger window...
    let tickets: Vec<_> = (0..16)
        .map(|_| daemon.submit(SubmitRequest::new("b4", tm.clone())))
        .collect();
    // ...then a request whose 1 ns budget is unmeetable: the deadline cap
    // fires the drain immediately, and the budget is already gone by the
    // time the shard wakes — it expires at drain, deterministically.
    let doomed =
        daemon.submit(SubmitRequest::new("b4", tm.clone()).with_deadline(Duration::from_nanos(1)));
    assert!(
        doomed.wait_timeout(Duration::from_secs(30)).is_err(),
        "1 ns budget cannot be served"
    );
    for t in tickets {
        t.wait_timeout(Duration::from_secs(30)).expect("served");
    }
    let stats = daemon.stats();
    assert_eq!(stats.expired, 1);
    let served: usize = stats
        .batch_sizes
        .iter()
        .map(|&(size, n)| size * n as usize)
        .sum();
    assert_eq!(
        served, 16,
        "expired request leaked into the batch-size histogram: {:?}",
        stats.batch_sizes
    );
    assert!(
        stats.batch_sizes.iter().all(|&(size, _)| size <= 16),
        "a recorded batch counted the expired request: {:?}",
        stats.batch_sizes
    );
}

//! Length-prefixed binary wire codec for the TCP front end.
//!
//! Every message on a connection is a *frame*: a little-endian `u32`
//! payload length followed by the payload, whose first byte is the message
//! kind. A connection opens with a versioned handshake (client sends
//! [`encode_hello`], server answers [`encode_hello_ok`] or closes), after
//! which the client pipelines [`encode_request`] frames and the server
//! answers with [`encode_reply`] frames **in any order** — replies are
//! matched to requests by the caller-chosen `u64` request id, never by
//! position, which is what lets the server drain tickets as they complete.
//!
//! The payload encodings are fixed-layout little-endian (no
//! self-description): the version field in the handshake is the only
//! compatibility gate, and it is bumped whenever any layout below changes.
//! Round-trip identity for every message type (including every
//! [`ServeError`] variant) is property-tested in
//! `crates/serve/tests/wire_roundtrip.rs`.
//!
//! Two decoding/encoding shapes share the layouts above:
//!
//! * the **blocking** pair ([`read_frame`]/[`write_frame`]), used by the
//!   thread-per-connection front end and the client, and
//! * the **incremental** pair ([`FrameDecoder`]/[`WriteQueue`]), used by
//!   the epoll event loop: the decoder resumes across arbitrary partial
//!   reads (a frame split anywhere — even mid-length-prefix — decodes
//!   identically to the one-shot path; see
//!   `crates/serve/tests/decoder_resume.rs`), and the write queue encodes
//!   replies *appended* into one pooled per-connection buffer so a
//!   steady-state flush path allocates nothing once warm
//!   (`crates/serve/tests/write_path_alloc.rs`).
//!
//! Layouts (after the kind byte):
//!
//! ```text
//! HELLO      magic b"TEAL" · version u16
//! HELLO_OK   version u16
//! REQUEST    id u64 · topology str · deadline (u8 flag, u64 ns if 1)
//!            · tenant (u8 flag, str if 1; absent = "default" tenant)
//!            · failed links (u32 count, (u32, u32) node pairs)
//!            · demands (u32 count, f64 each)
//! REPLY      id u64 · tag u8
//!            tag 0 (ok):  k u16 · num_demands u32 · splits f64 × (nd·k)
//!                         · latency u64 ns
//!                         · stage ns u64 × 3 (queue_wait, solve, write)
//!                         · batch_size u32
//!            tag 1 (err): error code u8 · message str
//! STATS      id u64                        (telemetry scrape request)
//! STATS_OK   id u64
//!            · topologies (u32 count, each: topology str
//!              · requests u64 · batches u64
//!              · 4 stages (e2e, queue_wait, solve, write), each
//!                mean/p50/p99 u64 ns
//!              · admm flag u8; if 1: windows/lanes/iterations/
//!                budgeted_iterations/budget_downgrades/
//!                min_lane_iters/max_lane_iters/frozen_lanes u64 × 8
//!                · windows by budget (u32 count, (u64 budget, u64 n))
//!                · last_primal/max_primal/last_dual/max_dual f64 × 4)
//!            · batch sizes (u32 count, each: size u32 · n u64)
//!            · queue_depth u64 · max_queue_depth u64
//!            · completed u64 · shed u64 · expired u64
//!            · deadline_inversions u64 · unmatched_replies u64
//!            · pool jobs/caller_chunks/helper_chunks/capped_skips u64 × 4
//!            · slow exemplars (u32 count, each: topology str
//!              · latency u64 ns · stage ns u64 × 3 · batch_size u32)
//!            · tenants (u32 count, each: tenant str
//!              · requests u64 · windows u64)
//! str        u32 byte length · UTF-8 bytes
//! ```

use std::io::{self, Read, Write};
use std::time::Duration;
use teal_lp::Allocation;
use teal_nn::pool::PoolStats;
use teal_traffic::TrafficMatrix;

use crate::request::{ServeError, ServeReply, SubmitRequest};
use crate::telemetry::{
    AdmmStats, LatencyStats, SlowExemplar, StageTimings, TelemetrySnapshot, TenantSnapshot,
    TopoSnapshot,
};

/// Handshake magic: the first bytes any teal-serve peer sends.
pub const MAGIC: &[u8; 4] = b"TEAL";
/// Wire protocol version; bump on any layout change.
/// v2: REPLY gained per-stage spans; STATS/STATS_OK scrape frames added.
/// v3: REQUEST gained the flag-gated tenant tag; STATS_OK gained per-budget
/// window counts / budget downgrades, the deadline-inversion counter, and
/// the per-tenant section.
/// v4: STATS_OK gained the unmatched-replies counter.
pub const VERSION: u16 = 4;
/// Upper bound on a single frame (guards the length prefix against a
/// corrupt or hostile peer asking us to allocate gigabytes).
pub const MAX_FRAME: u32 = 64 << 20;

/// Message kinds (first payload byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    Hello = 1,
    HelloOk = 2,
    Request = 3,
    Reply = 4,
    /// Telemetry scrape request (client → server).
    Stats = 5,
    /// Telemetry snapshot reply (server → client).
    StatsOk = 6,
}

/// A malformed or incompatible frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer sent bytes that do not decode (message named in the text).
    Protocol(String),
    /// Handshake version mismatch.
    Version { got: u16, want: u16 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Protocol(m) => write!(f, "wire protocol error: {m}"),
            WireError::Version { got, want } => {
                write!(
                    f,
                    "wire version mismatch: peer speaks v{got}, we speak v{want}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------- frames

/// Write one frame (length prefix + payload) to `w`. The payload buffer is
/// caller-owned so steady-state senders reuse one encode buffer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload into `buf` (cleared and reused). Returns
/// `Ok(false)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool, WireError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
        Err(e) => return Err(WireError::Io(e)),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(WireError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(true)
}

// --------------------------------------------------------------- writing

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Durations travel as u64 nanoseconds (saturating, like deadlines).
fn put_dur(buf: &mut Vec<u8>, d: Duration) {
    buf.extend_from_slice(&(d.as_nanos().min(u128::from(u64::MAX)) as u64).to_le_bytes());
}

fn put_latency_stats(buf: &mut Vec<u8>, s: &LatencyStats) {
    put_dur(buf, s.mean);
    put_dur(buf, s.p50);
    put_dur(buf, s.p99);
}

/// Encode the client half of the handshake.
pub fn encode_hello(buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(Kind::Hello as u8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
}

/// Encode the server half of the handshake.
pub fn encode_hello_ok(buf: &mut Vec<u8>) {
    buf.clear();
    put_hello_ok(buf);
}

/// Append a HELLO_OK payload (shared by the clearing encoder above and
/// [`WriteQueue::push_hello_ok`]).
fn put_hello_ok(buf: &mut Vec<u8>) {
    buf.push(Kind::HelloOk as u8);
    buf.extend_from_slice(&VERSION.to_le_bytes());
}

/// Encode one request under the caller-chosen pipelining id.
pub fn encode_request(buf: &mut Vec<u8>, id: u64, req: &SubmitRequest) {
    buf.clear();
    buf.push(Kind::Request as u8);
    buf.extend_from_slice(&id.to_le_bytes());
    put_str(buf, &req.topology);
    match req.deadline {
        Some(d) => {
            buf.push(1);
            buf.extend_from_slice(&(d.as_nanos().min(u128::from(u64::MAX)) as u64).to_le_bytes());
        }
        None => buf.push(0),
    }
    match &req.tenant {
        Some(t) => {
            buf.push(1);
            put_str(buf, t);
        }
        None => buf.push(0),
    }
    buf.extend_from_slice(&(req.failed_links.len() as u32).to_le_bytes());
    for &(a, b) in &req.failed_links {
        buf.extend_from_slice(&(a as u32).to_le_bytes());
        buf.extend_from_slice(&(b as u32).to_le_bytes());
    }
    buf.extend_from_slice(&(req.tm.len() as u32).to_le_bytes());
    for &v in req.tm.demands() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Stable error code for each [`ServeError`] variant.
fn error_code(e: &ServeError) -> u8 {
    match e {
        ServeError::UnknownTopology(_) => 0,
        ServeError::ShuttingDown => 1,
        ServeError::Checkpoint(_) => 2,
        ServeError::BadRequest(_) => 3,
        ServeError::Internal(_) => 4,
        ServeError::DeadlineExceeded => 5,
        ServeError::Overloaded(_) => 6,
    }
}

/// Encode one reply (success or typed error) under its request id.
pub fn encode_reply(buf: &mut Vec<u8>, id: u64, reply: &Result<ServeReply, ServeError>) {
    buf.clear();
    put_reply(buf, id, reply);
}

/// Append a REPLY payload (shared by the clearing encoder above and
/// [`WriteQueue::push_reply`]).
fn put_reply(buf: &mut Vec<u8>, id: u64, reply: &Result<ServeReply, ServeError>) {
    buf.push(Kind::Reply as u8);
    buf.extend_from_slice(&id.to_le_bytes());
    match reply {
        Ok(r) => {
            buf.push(0);
            buf.extend_from_slice(&(r.allocation.k() as u16).to_le_bytes());
            buf.extend_from_slice(&(r.allocation.num_demands() as u32).to_le_bytes());
            for &v in r.allocation.splits() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            put_dur(buf, r.latency);
            put_dur(buf, r.stages.queue_wait);
            put_dur(buf, r.stages.solve);
            put_dur(buf, r.stages.write);
            buf.extend_from_slice(&(r.batch_size as u32).to_le_bytes());
        }
        Err(e) => {
            buf.push(1);
            buf.push(error_code(e));
            let msg = match e {
                ServeError::UnknownTopology(m)
                | ServeError::Checkpoint(m)
                | ServeError::BadRequest(m)
                | ServeError::Internal(m)
                | ServeError::Overloaded(m) => m.as_str(),
                ServeError::ShuttingDown | ServeError::DeadlineExceeded => "",
            };
            put_str(buf, msg);
        }
    }
}

/// Encode a telemetry scrape request under the caller-chosen pipelining id
/// (STATS frames share the reply id space with REQUEST frames).
pub fn encode_stats_request(buf: &mut Vec<u8>, id: u64) {
    buf.clear();
    buf.push(Kind::Stats as u8);
    buf.extend_from_slice(&id.to_le_bytes());
}

/// Encode a full telemetry snapshot as the reply to scrape `id`.
pub fn encode_stats_reply(buf: &mut Vec<u8>, id: u64, snap: &TelemetrySnapshot) {
    buf.clear();
    put_stats_reply(buf, id, snap);
}

/// Append a STATS_OK payload (shared by the clearing encoder above and
/// [`WriteQueue::push_stats_reply`]).
fn put_stats_reply(buf: &mut Vec<u8>, id: u64, snap: &TelemetrySnapshot) {
    buf.push(Kind::StatsOk as u8);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&(snap.per_topology.len() as u32).to_le_bytes());
    for t in &snap.per_topology {
        put_str(buf, &t.topology);
        buf.extend_from_slice(&t.requests.to_le_bytes());
        buf.extend_from_slice(&t.batches.to_le_bytes());
        put_latency_stats(
            buf,
            &LatencyStats {
                mean: t.mean,
                p50: t.p50,
                p99: t.p99,
            },
        );
        put_latency_stats(buf, &t.queue_wait);
        put_latency_stats(buf, &t.solve);
        put_latency_stats(buf, &t.write);
        match &t.admm {
            Some(a) => {
                buf.push(1);
                for v in [
                    a.windows,
                    a.lanes,
                    a.iterations,
                    a.budgeted_iterations,
                    a.budget_downgrades,
                    a.min_lane_iterations,
                    a.max_lane_iterations,
                    a.frozen_lanes,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                buf.extend_from_slice(&(a.windows_by_budget.len() as u32).to_le_bytes());
                for &(budget, n) in &a.windows_by_budget {
                    buf.extend_from_slice(&budget.to_le_bytes());
                    buf.extend_from_slice(&n.to_le_bytes());
                }
                for v in [
                    a.last_primal_residual,
                    a.max_primal_residual,
                    a.last_dual_residual,
                    a.max_dual_residual,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            None => buf.push(0),
        }
    }
    buf.extend_from_slice(&(snap.batch_sizes.len() as u32).to_le_bytes());
    for &(size, n) in &snap.batch_sizes {
        buf.extend_from_slice(&(size as u32).to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
    }
    for v in [
        snap.queue_depth as u64,
        snap.max_queue_depth as u64,
        snap.completed,
        snap.shed,
        snap.expired,
        snap.deadline_inversions,
        snap.unmatched_replies,
        snap.pool.jobs,
        snap.pool.caller_chunks,
        snap.pool.helper_chunks,
        snap.pool.capped_skips,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&(snap.slow.len() as u32).to_le_bytes());
    for e in &snap.slow {
        put_str(buf, &e.topology);
        put_dur(buf, e.latency);
        put_dur(buf, e.stages.queue_wait);
        put_dur(buf, e.stages.solve);
        put_dur(buf, e.stages.write);
        buf.extend_from_slice(&(e.batch_size as u32).to_le_bytes());
    }
    buf.extend_from_slice(&(snap.tenants.len() as u32).to_le_bytes());
    for t in &snap.tenants {
        put_str(buf, &t.tenant);
        buf.extend_from_slice(&t.requests.to_le_bytes());
        buf.extend_from_slice(&t.windows.to_le_bytes());
    }
}

// --------------------------------------------------------------- reading

/// Cursor over a frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(WireError::Protocol(format!(
                "truncated frame: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let mut bytes = [0u8; 2];
        bytes.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(bytes))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(self.take(8)?);
        Ok(f64::from_le_bytes(bytes))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Protocol("string field is not UTF-8".into()))
    }

    /// Validate a decoded element count against the bytes actually left in
    /// the frame *before* any `Vec::with_capacity` — a hostile count field
    /// must be a protocol error, never a multi-gigabyte allocation request
    /// (which would abort the process on failure).
    fn check_count(&self, n: usize, elem_bytes: usize, what: &str) -> Result<(), WireError> {
        let need = n.checked_mul(elem_bytes);
        let have = self.buf.len() - self.pos;
        match need {
            Some(need) if need <= have => Ok(()),
            _ => Err(WireError::Protocol(format!(
                "{what} count {n} exceeds the {have} bytes remaining in the frame"
            ))),
        }
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Protocol(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// The message kind of a payload (its first byte).
pub fn peek_kind(payload: &[u8]) -> Result<Kind, WireError> {
    match payload.first() {
        Some(1) => Ok(Kind::Hello),
        Some(2) => Ok(Kind::HelloOk),
        Some(3) => Ok(Kind::Request),
        Some(4) => Ok(Kind::Reply),
        Some(5) => Ok(Kind::Stats),
        Some(6) => Ok(Kind::StatsOk),
        Some(k) => Err(WireError::Protocol(format!("unknown message kind {k}"))),
        None => Err(WireError::Protocol("empty frame".into())),
    }
}

/// Validate a HELLO payload, returning the peer's version.
pub fn decode_hello(payload: &[u8]) -> Result<u16, WireError> {
    let mut r = Reader::new(payload);
    if r.u8()? != Kind::Hello as u8 {
        return Err(WireError::Protocol("expected HELLO".into()));
    }
    if r.take(4)? != MAGIC {
        return Err(WireError::Protocol("bad handshake magic".into()));
    }
    let version = r.u16()?;
    r.done()?;
    if version != VERSION {
        return Err(WireError::Version {
            got: version,
            want: VERSION,
        });
    }
    Ok(version)
}

/// Validate a HELLO_OK payload, returning the server's version.
pub fn decode_hello_ok(payload: &[u8]) -> Result<u16, WireError> {
    let mut r = Reader::new(payload);
    if r.u8()? != Kind::HelloOk as u8 {
        return Err(WireError::Protocol("expected HELLO_OK".into()));
    }
    let version = r.u16()?;
    r.done()?;
    if version != VERSION {
        return Err(WireError::Version {
            got: version,
            want: VERSION,
        });
    }
    Ok(version)
}

/// Decode a REQUEST payload into `(id, request)`.
pub fn decode_request(payload: &[u8]) -> Result<(u64, SubmitRequest), WireError> {
    let mut r = Reader::new(payload);
    if r.u8()? != Kind::Request as u8 {
        return Err(WireError::Protocol("expected REQUEST".into()));
    }
    let id = r.u64()?;
    let topology = r.str()?;
    let deadline = match r.u8()? {
        0 => None,
        1 => Some(Duration::from_nanos(r.u64()?)),
        f => return Err(WireError::Protocol(format!("bad deadline flag {f}"))),
    };
    let tenant = match r.u8()? {
        0 => None,
        1 => Some(r.str()?),
        f => return Err(WireError::Protocol(format!("bad tenant flag {f}"))),
    };
    let nlinks = r.u32()? as usize;
    r.check_count(nlinks, 8, "failed-link")?;
    let mut failed_links = Vec::with_capacity(nlinks);
    for _ in 0..nlinks {
        let a = r.u32()? as usize;
        let b = r.u32()? as usize;
        failed_links.push((a, b));
    }
    let nd = r.u32()? as usize;
    r.check_count(nd, 8, "demand")?;
    let mut demands = Vec::with_capacity(nd);
    for _ in 0..nd {
        demands.push(r.f64()?);
    }
    r.done()?;
    Ok((
        id,
        SubmitRequest {
            topology,
            tm: TrafficMatrix::new(demands),
            deadline,
            failed_links,
            tenant,
        },
    ))
}

/// Decode a REPLY payload into `(id, result)`.
#[allow(clippy::type_complexity)]
pub fn decode_reply(payload: &[u8]) -> Result<(u64, Result<ServeReply, ServeError>), WireError> {
    let mut r = Reader::new(payload);
    if r.u8()? != Kind::Reply as u8 {
        return Err(WireError::Protocol("expected REPLY".into()));
    }
    let id = r.u64()?;
    let result = match r.u8()? {
        0 => {
            let k = r.u16()? as usize;
            let nd = r.u32()? as usize;
            if k == 0 {
                return Err(WireError::Protocol("reply with k = 0 paths".into()));
            }
            let n = nd
                .checked_mul(k)
                .ok_or_else(|| WireError::Protocol("split count overflow".into()))?;
            r.check_count(n, 8, "split")?;
            let mut splits = Vec::with_capacity(n);
            for _ in 0..n {
                splits.push(r.f64()?);
            }
            let latency = Duration::from_nanos(r.u64()?);
            let stages = StageTimings {
                queue_wait: Duration::from_nanos(r.u64()?),
                solve: Duration::from_nanos(r.u64()?),
                write: Duration::from_nanos(r.u64()?),
            };
            let batch_size = r.u32()? as usize;
            Ok(ServeReply {
                allocation: Allocation::from_splits(k, splits),
                latency,
                stages,
                batch_size,
            })
        }
        1 => {
            let code = r.u8()?;
            let msg = r.str()?;
            Err(match code {
                0 => ServeError::UnknownTopology(msg),
                1 => ServeError::ShuttingDown,
                2 => ServeError::Checkpoint(msg),
                3 => ServeError::BadRequest(msg),
                4 => ServeError::Internal(msg),
                5 => ServeError::DeadlineExceeded,
                6 => ServeError::Overloaded(msg),
                c => {
                    return Err(WireError::Protocol(format!("unknown error code {c}")));
                }
            })
        }
        t => return Err(WireError::Protocol(format!("bad reply tag {t}"))),
    };
    r.done()?;
    Ok((id, result))
}

/// Decode a STATS payload into the scrape id.
pub fn decode_stats_request(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    if r.u8()? != Kind::Stats as u8 {
        return Err(WireError::Protocol("expected STATS".into()));
    }
    let id = r.u64()?;
    r.done()?;
    Ok(id)
}

fn read_dur(r: &mut Reader<'_>) -> Result<Duration, WireError> {
    Ok(Duration::from_nanos(r.u64()?))
}

fn read_latency_stats(r: &mut Reader<'_>) -> Result<LatencyStats, WireError> {
    Ok(LatencyStats {
        mean: read_dur(r)?,
        p50: read_dur(r)?,
        p99: read_dur(r)?,
    })
}

/// Decode a STATS_OK payload into `(id, snapshot)`.
pub fn decode_stats_reply(payload: &[u8]) -> Result<(u64, TelemetrySnapshot), WireError> {
    let mut r = Reader::new(payload);
    if r.u8()? != Kind::StatsOk as u8 {
        return Err(WireError::Protocol("expected STATS_OK".into()));
    }
    let id = r.u64()?;
    let ntopo = r.u32()? as usize;
    // Minimum bytes per topology entry: empty name (4) + two counters (16)
    // + 4 stages × 3 quantiles × 8 + the admm flag (1).
    r.check_count(ntopo, 4 + 16 + 96 + 1, "topology")?;
    let mut per_topology = Vec::with_capacity(ntopo);
    for _ in 0..ntopo {
        let topology = r.str()?;
        let requests = r.u64()?;
        let batches = r.u64()?;
        let e2e = read_latency_stats(&mut r)?;
        let queue_wait = read_latency_stats(&mut r)?;
        let solve = read_latency_stats(&mut r)?;
        let write = read_latency_stats(&mut r)?;
        let admm = match r.u8()? {
            0 => None,
            1 => {
                let windows = r.u64()?;
                let lanes = r.u64()?;
                let iterations = r.u64()?;
                let budgeted_iterations = r.u64()?;
                let budget_downgrades = r.u64()?;
                let min_lane_iterations = r.u64()?;
                let max_lane_iterations = r.u64()?;
                let frozen_lanes = r.u64()?;
                let nbudgets = r.u32()? as usize;
                r.check_count(nbudgets, 16, "windows-by-budget")?;
                let mut windows_by_budget = Vec::with_capacity(nbudgets);
                for _ in 0..nbudgets {
                    let budget = r.u64()?;
                    let n = r.u64()?;
                    windows_by_budget.push((budget, n));
                }
                Some(AdmmStats {
                    windows,
                    lanes,
                    iterations,
                    budgeted_iterations,
                    budget_downgrades,
                    windows_by_budget,
                    min_lane_iterations,
                    max_lane_iterations,
                    frozen_lanes,
                    last_primal_residual: r.f64()?,
                    max_primal_residual: r.f64()?,
                    last_dual_residual: r.f64()?,
                    max_dual_residual: r.f64()?,
                })
            }
            f => return Err(WireError::Protocol(format!("bad admm flag {f}"))),
        };
        per_topology.push(TopoSnapshot {
            topology,
            requests,
            batches,
            mean: e2e.mean,
            p50: e2e.p50,
            p99: e2e.p99,
            queue_wait,
            solve,
            write,
            admm,
        });
    }
    let nsizes = r.u32()? as usize;
    r.check_count(nsizes, 12, "batch-size")?;
    let mut batch_sizes = Vec::with_capacity(nsizes);
    for _ in 0..nsizes {
        let size = r.u32()? as usize;
        let n = r.u64()?;
        batch_sizes.push((size, n));
    }
    let queue_depth = r.u64()? as usize;
    let max_queue_depth = r.u64()? as usize;
    let completed = r.u64()?;
    let shed = r.u64()?;
    let expired = r.u64()?;
    let deadline_inversions = r.u64()?;
    let unmatched_replies = r.u64()?;
    let pool = PoolStats {
        jobs: r.u64()?,
        caller_chunks: r.u64()?,
        helper_chunks: r.u64()?,
        capped_skips: r.u64()?,
    };
    let nslow = r.u32()? as usize;
    // Empty name (4) + four spans (32) + batch size (4).
    r.check_count(nslow, 40, "slow-exemplar")?;
    let mut slow = Vec::with_capacity(nslow);
    for _ in 0..nslow {
        let topology = r.str()?;
        let latency = read_dur(&mut r)?;
        let stages = StageTimings {
            queue_wait: read_dur(&mut r)?,
            solve: read_dur(&mut r)?,
            write: read_dur(&mut r)?,
        };
        let batch_size = r.u32()? as usize;
        slow.push(SlowExemplar {
            topology,
            latency,
            stages,
            batch_size,
        });
    }
    let ntenants = r.u32()? as usize;
    // Empty name (4) + two counters (16).
    r.check_count(ntenants, 20, "tenant")?;
    let mut tenants = Vec::with_capacity(ntenants);
    for _ in 0..ntenants {
        let tenant = r.str()?;
        let requests = r.u64()?;
        let windows = r.u64()?;
        tenants.push(TenantSnapshot {
            tenant,
            requests,
            windows,
        });
    }
    r.done()?;
    Ok((
        id,
        TelemetrySnapshot {
            per_topology,
            batch_sizes,
            tenants,
            queue_depth,
            max_queue_depth,
            completed,
            shed,
            expired,
            deadline_inversions,
            unmatched_replies,
            pool,
            slow,
        },
    ))
}

// ---------------------------------------------- incremental (event loop)

/// Incremental frame decoder for nonblocking readers: feed whatever bytes
/// the socket produced, then pull complete frame payloads as they
/// materialize. A frame split at *any* byte boundary — including inside
/// the 4-byte length prefix — decodes identically to [`read_frame`]'s
/// one-shot path.
///
/// The [`MAX_FRAME`] guard fires as soon as a hostile length prefix
/// becomes visible, **before** any buffer growth driven by it: the decoder
/// only ever buffers bytes the peer actually sent, never
/// `with_capacity(attacker_len)`.
#[derive(Default)]
pub struct FrameDecoder {
    /// Raw received bytes not yet returned as frames: `pending[pos..]` is
    /// live, `pending[..pos]` is consumed and reclaimed by compaction.
    pending: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// The length prefix of the frame at the parse cursor, if fully
    /// visible.
    fn peek_len(&self) -> Option<u32> {
        let avail = &self.pending[self.pos..];
        if avail.len() < 4 {
            return None;
        }
        let mut len = [0u8; 4];
        len.copy_from_slice(&avail[..4]);
        Some(u32::from_le_bytes(len))
    }

    /// Reject a visible hostile length prefix before buffering anything
    /// more behind it.
    fn check_len(&self) -> Result<(), WireError> {
        match self.peek_len() {
            Some(len) if len > MAX_FRAME => Err(WireError::Protocol(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
            ))),
            _ => Ok(()),
        }
    }

    /// Buffer `bytes` as received from the socket. Errors as soon as the
    /// current frame's length prefix is visible and exceeds [`MAX_FRAME`].
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.check_len()?;
        // Compact before growing: once the consumed prefix dominates the
        // buffer (or everything is consumed), reclaim it in place so a
        // long-lived connection's buffer stays at its high-water mark
        // instead of growing without bound.
        if self.pos == self.pending.len() {
            self.pending.clear();
            self.pos = 0;
        } else if self.pos >= (64 << 10) && self.pos * 2 >= self.pending.len() {
            self.pending.drain(..self.pos);
            self.pos = 0;
        }
        self.pending.extend_from_slice(bytes);
        self.check_len()
    }

    /// The next complete frame payload, or `None` until more bytes arrive.
    /// The returned slice is valid until the next `feed`/`next_frame`
    /// call.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let Some(len) = self.peek_len() else {
            return Ok(None);
        };
        if len > MAX_FRAME {
            return Err(WireError::Protocol(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
            )));
        }
        let len = len as usize;
        if self.pending.len() - self.pos < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        self.pos = start + len;
        Ok(Some(&self.pending[start..start + len]))
    }

    /// Bytes buffered but not yet returned as a complete frame (a clean
    /// EOF with `residue() > 0` means the peer died mid-frame).
    pub fn residue(&self) -> usize {
        self.pending.len() - self.pos
    }
}

/// Per-connection pooled write queue for the event loop: replies are
/// encoded **appended** onto one persistent buffer (each frame's length
/// prefix is reserved up front and patched after the body lands), and
/// [`WriteQueue::flush`] pushes as much backlog as the socket will take in
/// one `writev`-style burst, tracking a head cursor across
/// `EWOULDBLOCK` partial writes so frames are never corrupted, reordered
/// or resent.
///
/// Fully-drained flushes rewind the buffer (`clear` keeps capacity), and a
/// persistent backlog is compacted in place, so the steady-state
/// encode/flush path performs **zero heap allocations** once the buffer
/// has grown to its high-water mark (`tests/write_path_alloc.rs` proves
/// this under a counting allocator).
#[derive(Default)]
pub struct WriteQueue {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    head: usize,
}

impl WriteQueue {
    pub fn new() -> WriteQueue {
        WriteQueue::default()
    }

    /// No bytes are waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// Bytes encoded but not yet accepted by the socket.
    pub fn backlog(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Reserve a frame's length prefix; returns its offset for
    /// [`WriteQueue::end_frame`].
    fn begin_frame(&mut self) -> usize {
        if self.head == self.buf.len() {
            // Everything flushed: rewind and reuse the capacity.
            self.buf.clear();
            self.head = 0;
        } else if self.head >= (64 << 10) && self.head * 2 >= self.buf.len() {
            // A slow reader left a persistent backlog: compact in place
            // (memmove, no allocation) once the dead prefix dominates.
            self.buf.drain(..self.head);
            self.head = 0;
        }
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 4]);
        at
    }

    /// Patch the length prefix reserved at `at` now that the body landed.
    fn end_frame(&mut self, at: usize) {
        let len = (self.buf.len() - at - 4) as u32;
        self.buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Queue the server half of the handshake.
    pub fn push_hello_ok(&mut self) {
        let at = self.begin_frame();
        put_hello_ok(&mut self.buf);
        self.end_frame(at);
    }

    /// Queue one REPLY frame.
    pub fn push_reply(&mut self, id: u64, reply: &Result<ServeReply, ServeError>) {
        let at = self.begin_frame();
        put_reply(&mut self.buf, id, reply);
        self.end_frame(at);
    }

    /// Queue one STATS_OK frame.
    pub fn push_stats_reply(&mut self, id: u64, snap: &TelemetrySnapshot) {
        let at = self.begin_frame();
        put_stats_reply(&mut self.buf, id, snap);
        self.end_frame(at);
    }

    /// Write backlog through `write` (typically `|b| stream.write(b)`)
    /// until drained or the socket pushes back. Returns `Ok(true)` once
    /// the queue is empty, `Ok(false)` on `EWOULDBLOCK` (re-arm `EPOLLOUT`
    /// and retry on writability). The head cursor means a partial write
    /// resumes mid-frame exactly where the socket stopped.
    pub fn flush(&mut self, mut write: impl FnMut(&[u8]) -> io::Result<usize>) -> io::Result<bool> {
        while self.head < self.buf.len() {
            match write(&self.buf[self.head..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.head += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.head = 0;
        Ok(true)
    }

    /// Drop all queued bytes (dead socket: stop encoding for it).
    pub fn abandon(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

//! Tables 1-3, Figure 2 (LP multicore speedup), and Figure 17 (routable
//! demands per edge).

use crate::table::{emit, emit_csv, Table};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;
use teal_lp::{concurrent, Objective, TeInstance};
use teal_topology::{generate, stats, PathSet, TopoKind};
use teal_traffic::{TrafficConfig, TrafficModel};

/// Table 1: node/edge counts of the five evaluation topologies (full scale).
pub fn table1() {
    let mut t = Table::new(
        "Table 1: network topologies (full-scale synthetic reproductions)",
        &["topology", "# of nodes", "# of edges (directed)"],
    );
    for kind in TopoKind::all() {
        let topo = generate(kind, 1.0, 42);
        t.row(vec![
            kind.name().to_string(),
            topo.num_nodes().to_string(),
            topo.num_edges().to_string(),
        ]);
    }
    emit("table1", &t.render());
}

/// Table 2: computation-time breakdown per scheme (descriptive; components
/// measured on the B4 testbed are reported alongside).
pub fn table2() {
    let mut t = Table::new(
        "Table 2: computation-time breakdown per scheme",
        &["algorithm", "computation time"],
    );
    t.row(vec![
        "Teal".into(),
        "forward pass + fixed ADMM iterations (GPU-parallel)".into(),
    ]);
    t.row(vec![
        "LP-all".into(),
        "full LP solve (simplex / ADMM-to-convergence)".into(),
    ]);
    t.row(vec![
        "LP-top".into(),
        "LP solve + per-interval model rebuilding".into(),
    ]);
    t.row(vec![
        "NCFlow".into(),
        "parallel cluster LPs + contracted LP + merge".into(),
    ]);
    t.row(vec!["POP".into(), "parallel replica LPs".into()]);
    t.row(vec![
        "TEAVAR*".into(),
        "scenario-robust LP (small topologies only)".into(),
    ]);
    emit("table2", &t.render());
}

/// Table 3: mean shortest-path length and hop diameter (full scale; SWAN is
/// included since our SWAN is synthetic, unlike the paper's private one).
pub fn table3() {
    let mut t = Table::new(
        "Table 3: topology details",
        &["topology", "avg shortest-path length", "network diameter"],
    );
    for kind in [
        TopoKind::B4,
        TopoKind::Swan,
        TopoKind::UsCarrier,
        TopoKind::Kdl,
        TopoKind::Asn,
    ] {
        let topo = generate(kind, 1.0, 42);
        t.row(vec![
            kind.name().to_string(),
            format!("{:.1}", stats::mean_shortest_path(&topo)),
            stats::hop_diameter(&topo).to_string(),
        ]);
    }
    emit("table3", &t.render());
}

/// Figure 2: marginal speedup of concurrent-racing LP solving as threads
/// increase (the mechanism behind Gurobi's sublinear multicore scaling).
///
/// Each racing configuration (a serial ADMM instance with a different ρ) is
/// timed once; the race's wall clock with `t` dedicated cores is the minimum
/// over the first `t` configurations. This measured simulation is exact on a
/// multi-core machine and remains faithful on the 1-core boxes this
/// reproduction targets (where literally racing threads would only
/// time-share a single core).
pub fn fig2(fast: bool) {
    // A mid-size contended instance so the solve takes long enough to time.
    let kind = TopoKind::Kdl;
    let scale = if fast { 0.05 } else { 0.10 };
    let topo = generate(kind, scale, 7);
    let mut pairs = topo.all_pairs();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    pairs.shuffle(&mut rng);
    pairs.truncate(if fast { 300 } else { 1200 });
    pairs.sort_unstable();
    let paths = PathSet::compute(&topo, &pairs, 4);
    let mut model = TrafficModel::new(&pairs, TrafficConfig::default(), 7);
    model.calibrate(&topo, &paths);
    let tm = model.series(0, 1).remove(0);
    let inst = TeInstance::new(&topo, &paths, &tm);

    let mut t = Table::new(
        "Figure 2: concurrent-racing LP speedup vs. threads (marginal, as in Gurobi)",
        &["threads", "time (s)", "speedup"],
    );
    let mut rows_csv = Vec::new();
    let racer_times = concurrent::measure_racers(&inst, Objective::TotalFlow, 8, 1e-3);
    let base = concurrent::race_time_with_threads(&racer_times, 1).as_secs_f64();
    for threads in [1usize, 2, 4, 8, 16] {
        let secs = concurrent::race_time_with_threads(&racer_times, threads).as_secs_f64();
        let speedup = base / secs.max(1e-12);
        t.row(vec![
            threads.to_string(),
            format!("{secs:.3}"),
            format!("{speedup:.2}x"),
        ]);
        rows_csv.push(format!("{threads},{secs:.6},{speedup:.4}"));
    }
    emit("fig2", &t.render());
    emit_csv("fig2", "threads,time_s,speedup", &rows_csv);
}

/// Figure 17: percentage of demands routable on each edge, per topology.
/// Full-scale graphs with demand pairs sampled (Yen over the full ASN mesh
/// is out of CPU budget; sampling is unbiased for this per-edge share).
pub fn fig17(fast: bool) {
    let sample = if fast { 400 } else { 2000 };
    let mut t = Table::new(
        "Figure 17: routable demands on each edge (%), distribution summary",
        &["topology", "mean", "p25", "p50", "p75", "max"],
    );
    for kind in [
        TopoKind::B4,
        TopoKind::UsCarrier,
        TopoKind::Kdl,
        TopoKind::Asn,
    ] {
        let scale = if kind == TopoKind::Asn && fast {
            0.3
        } else {
            1.0
        };
        let topo = generate(kind, scale, 42);
        let mut pairs = topo.all_pairs();
        if pairs.len() > sample {
            let mut rng = rand::rngs::StdRng::seed_from_u64(17);
            pairs.shuffle(&mut rng);
            pairs.truncate(sample);
        }
        let paths = PathSet::compute(&topo, &pairs, 4);
        let share = stats::routable_demand_share(&topo, &paths);
        let (mean, q25, q50, q75, max) = stats::five_point(&share);
        t.row(vec![
            kind.name().to_string(),
            format!("{mean:.2}"),
            format!("{q25:.2}"),
            format!("{q50:.2}"),
            format!("{q75:.2}"),
            format!("{max:.2}"),
        ]);
    }
    emit("fig17", &t.render());
}

/// Benchmarked component timings for Table 2's measured column (B4-sized).
pub fn table2_measured() {
    use std::sync::Arc;
    use teal_core::{EngineConfig, Env, TealConfig, TealEngine, TealModel};
    let env = Arc::new(Env::for_topology(teal_topology::b4()));
    let tm = teal_traffic::TrafficMatrix::new(vec![20.0; env.num_demands()]);
    let mut t = Table::new(
        "Table 2 (measured on B4): one allocation per scheme",
        &["algorithm", "measured time"],
    );
    let model = TealModel::new(Arc::clone(&env), TealConfig::default());
    let engine = TealEngine::new(model, EngineConfig::paper_default(12));
    let mut schemes: Vec<Box<dyn teal_sim::Scheme>> = vec![
        Box::new(teal_sim::TealScheme::new(engine)),
        Box::new(teal_sim::LpAllScheme::new(
            Arc::clone(&env),
            Objective::TotalFlow,
        )),
        Box::new(teal_sim::LpTopScheme::new(
            Arc::clone(&env),
            Objective::TotalFlow,
        )),
        Box::new(teal_sim::NcflowScheme::new(
            Arc::clone(&env),
            Objective::TotalFlow,
        )),
        Box::new(teal_sim::PopScheme::new(
            Arc::clone(&env),
            Objective::TotalFlow,
        )),
        Box::new(teal_sim::TeavarScheme::new(Arc::clone(&env))),
    ];
    for s in &mut schemes {
        let t0 = Instant::now();
        let _ = s.allocate(env.topo(), &tm);
        let dt = t0.elapsed();
        t.row(vec![
            s.name().to_string(),
            teal_sim::metrics::fmt_secs(dt.as_secs_f64()),
        ]);
    }
    emit("table2_measured", &t.render());
}

//! Serving telemetry: per-topology, per-stage latency histograms
//! (p50/p99), ADMM solve introspection, queue depth, worker-pool gauges,
//! slow-request exemplars, and the coalesced batch-size distribution.
//!
//! The recording side is deliberately cheap and contention-free in the
//! places that matter: each dispatcher shard owns its topology's
//! [`ShardStats`] outright (stage histograms, ADMM accumulators, batch
//! counters, batch-size distribution, exemplar ring) and records into it
//! without touching any shared map — shards never contend with each other
//! on the hot path. Queue-depth gauges and the completed counter are plain
//! atomics updated from any thread. Readers take a consistent
//! [`TelemetrySnapshot`] copy, locking each shard's stats only long enough
//! to copy them out.
//!
//! Requests carry a fixed-size [`Trace`] stamped at enqueue, coalesce
//! (drain), solve-start, and solve-end; the reply-write stamp is taken
//! once per chunk just before slots are fulfilled. [`Trace::stages`] folds
//! the stamps into a [`StageTimings`] (queue-wait / solve / write) that is
//! both recorded into the shard histograms and returned to callers inside
//! `ServeReply`, so "why was this one slow" is answerable per request.

// teal-lint: checked-sync
use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use teal_nn::pool::PoolStats;

/// The crate's single clock read. Every other module stamps time through
/// this wrapper (`cargo xtask lint` rejects direct `Instant::now()` calls
/// outside this file), so wall-clock reads stay auditable and a future
/// virtual clock for the model checker has one seam to patch.
pub(crate) fn now() -> Instant {
    Instant::now()
}

/// Log-spaced latency histogram: bucket `i` covers per-request latencies of
/// roughly `2^(i/4)` nanoseconds (four sub-buckets per octave — quantile
/// error bounded by half a sub-bucket, ≤ ~9% relative, plenty for p50/p99
/// serving dashboards while keeping recording allocation-free).
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: f64,
    max_ns: u64,
}

/// Sub-buckets per factor-of-two of latency.
const SUBDIV: f64 = 4.0;
/// Bucket count: covers ~1ns to ~2^64ns with 4 sub-buckets per octave.
const NUM_BUCKETS: usize = 64 * SUBDIV as usize;

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0.0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    fn bucket_index(ns: u64) -> usize {
        if ns <= 1 {
            return 0;
        }
        (((ns as f64).log2() * SUBDIV) as usize).min(NUM_BUCKETS - 1)
    }

    /// Representative latency of bucket `i`: its *geometric midpoint*. The
    /// bucket spans `[2^(i/S), 2^((i+1)/S))`; reporting the lower edge (as
    /// an earlier version did) systematically understated every quantile by
    /// up to a full sub-bucket (~19%), while the midpoint is off by at most
    /// half a sub-bucket (~9%) in either direction.
    fn bucket_value(i: usize) -> f64 {
        2f64.powf((i as f64 + 0.5) / SUBDIV)
    }

    /// Record one observation.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as f64;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold `other` into `self`. Because both histograms share the same
    /// fixed bucket edges, merging is a bucket-wise sum and the merged
    /// quantiles are *identical* to those of a histogram that had recorded
    /// both streams directly (pinned by a unit test) — multi-shard and
    /// cross-window aggregation never re-records.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.count as f64) as u64)
    }

    /// Quantile estimate via cumulative bucket counts (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Cap at the true observed maximum so p99 of a tight
                // distribution never exceeds the slowest real request.
                let est = Self::bucket_value(i).min(self.max_ns as f64);
                return Duration::from_nanos(est as u64);
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// The standard dashboard triple (mean, p50, p99).
    pub fn summary(&self) -> LatencyStats {
        LatencyStats {
            mean: self.mean(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
        }
    }
}

/// Mean/p50/p99 of one latency stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
}

/// Compact per-request stage trace. Fixed-size and `Copy`: stamping on the
/// hot path is a couple of `Instant` stores, never an allocation. Stamped
/// at enqueue ([`Trace::at`]), coalesce (drain), solve-start and solve-end;
/// the reply-write stamp is passed to [`Trace::stages`] by the shard once
/// per chunk.
#[derive(Clone, Copy, Debug)]
pub struct Trace {
    enqueued: Instant,
    drained: Option<Instant>,
    solve_start: Option<Instant>,
    solve_end: Option<Instant>,
}

impl Trace {
    /// Fresh trace stamped at enqueue time `now`.
    pub fn at(now: Instant) -> Self {
        Trace {
            enqueued: now,
            drained: None,
            solve_start: None,
            solve_end: None,
        }
    }

    /// Enqueue stamp (used for deadline checks and end-to-end latency).
    pub fn enqueued(&self) -> Instant {
        self.enqueued
    }

    /// Stamp the coalesce point: the shard drained this request.
    pub(crate) fn stamp_drained(&mut self, now: Instant) {
        self.drained = Some(now);
    }

    /// Stamp entry into the forward + ADMM solve.
    pub(crate) fn stamp_solve_start(&mut self, now: Instant) {
        self.solve_start = Some(now);
    }

    /// Stamp solve completion (before replies are written).
    pub(crate) fn stamp_solve_end(&mut self, now: Instant) {
        self.solve_end = Some(now);
    }

    /// Fold the stamps into per-stage durations, with `done` as the
    /// reply-write stamp. Missing intermediate stamps (e.g. a request
    /// answered with an error before reaching the solver) collapse that
    /// stage to zero rather than misattributing time.
    pub fn stages(&self, done: Instant) -> StageTimings {
        let drained = self.drained.unwrap_or(done);
        let solve_start = self.solve_start.unwrap_or(drained);
        let solve_end = self.solve_end.unwrap_or(solve_start);
        StageTimings {
            queue_wait: drained.saturating_duration_since(self.enqueued),
            solve: solve_end.saturating_duration_since(solve_start),
            write: done.saturating_duration_since(solve_end),
        }
    }
}

/// Per-stage breakdown of one request's end-to-end latency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Enqueue → drained by the shard (time spent in the queue).
    pub queue_wait: Duration,
    /// Forward pass + ADMM fine-tuning for the batch the request rode in.
    pub solve: Duration,
    /// Solve end → response slot fulfilled (allocation split + reply write).
    pub write: Duration,
}

/// Per-shard ADMM solve accumulator (windows = coalesced batches that
/// reached the solver).
#[derive(Default)]
struct AdmmAccum {
    windows: u64,
    lanes: u64,
    iterations: u64,
    budgeted_iterations: u64,
    budget_downgrades: u64,
    /// Per-window iteration budget → windows run under it.
    windows_by_budget: HashMap<u64, u64>,
    min_lane_iterations: u64,
    max_lane_iterations: u64,
    frozen_lanes: u64,
    last_primal_residual: f64,
    max_primal_residual: f64,
    last_dual_residual: f64,
    max_dual_residual: f64,
}

impl AdmmAccum {
    fn record(&mut self, r: &teal_core::SolveReport, downgraded: bool) {
        if self.windows == 0 {
            self.min_lane_iterations = r.min_iterations as u64;
        } else {
            self.min_lane_iterations = self.min_lane_iterations.min(r.min_iterations as u64);
        }
        self.windows += 1;
        self.lanes += r.lanes as u64;
        self.iterations += r.iterations;
        self.budgeted_iterations += (r.lanes * r.budget) as u64;
        self.budget_downgrades += u64::from(downgraded);
        *self.windows_by_budget.entry(r.budget as u64).or_insert(0) += 1;
        self.max_lane_iterations = self.max_lane_iterations.max(r.max_iterations as u64);
        self.frozen_lanes += r.frozen_lanes as u64;
        self.last_primal_residual = r.max_primal_residual;
        self.last_dual_residual = r.max_dual_residual;
        self.max_primal_residual = self.max_primal_residual.max(r.max_primal_residual);
        self.max_dual_residual = self.max_dual_residual.max(r.max_dual_residual);
    }

    fn snapshot(&self) -> Option<AdmmStats> {
        if self.windows == 0 {
            return None;
        }
        let mut windows_by_budget: Vec<(u64, u64)> = self
            .windows_by_budget
            .iter()
            .map(|(&b, &n)| (b, n))
            .collect();
        windows_by_budget.sort_unstable();
        Some(AdmmStats {
            windows: self.windows,
            lanes: self.lanes,
            iterations: self.iterations,
            budgeted_iterations: self.budgeted_iterations,
            budget_downgrades: self.budget_downgrades,
            windows_by_budget,
            min_lane_iterations: self.min_lane_iterations,
            max_lane_iterations: self.max_lane_iterations,
            frozen_lanes: self.frozen_lanes,
            last_primal_residual: self.last_primal_residual,
            max_primal_residual: self.max_primal_residual,
            last_dual_residual: self.last_dual_residual,
            max_dual_residual: self.max_dual_residual,
        })
    }
}

/// Aggregate ADMM solve statistics for one topology (§3.4 quality/latency
/// knob, made measurable). A *window* is one coalesced batch that reached
/// the solver; a *lane* is one traffic matrix inside a window.
#[derive(Clone, Debug, PartialEq)]
pub struct AdmmStats {
    /// Solver windows (coalesced batches) run.
    pub windows: u64,
    /// Total lanes (traffic matrices) across all windows.
    pub lanes: u64,
    /// Total ADMM iterations summed over lanes.
    pub iterations: u64,
    /// Sum over windows of `lanes × that window's budget` — the iterations
    /// the per-window budgets *allowed*. With `tol = 0` (no early freezing)
    /// this equals `iterations` exactly, even when the adaptive policy
    /// mixes budgets across windows.
    pub budgeted_iterations: u64,
    /// Windows the adaptive policy ran below the configured budget
    /// (deadline pressure downgrades — every one is auditable here).
    pub budget_downgrades: u64,
    /// `(iteration budget, windows run under it)`, sorted by budget. Sums
    /// to `windows`.
    pub windows_by_budget: Vec<(u64, u64)>,
    /// Fewest iterations any lane ran.
    pub min_lane_iterations: u64,
    /// Most iterations any lane ran.
    pub max_lane_iterations: u64,
    /// Lanes that converged (froze) before exhausting the iteration budget.
    pub frozen_lanes: u64,
    /// Worst primal residual of the most recent window.
    pub last_primal_residual: f64,
    /// Worst primal residual of any window.
    pub max_primal_residual: f64,
    /// Worst dual residual of the most recent window.
    pub last_dual_residual: f64,
    /// Worst dual residual of any window.
    pub max_dual_residual: f64,
}

impl AdmmStats {
    /// Mean iterations per lane.
    pub fn mean_iterations(&self) -> f64 {
        self.iterations as f64 / self.lanes.max(1) as f64
    }
}

/// Slow-request exemplars retained per shard (top-k by end-to-end latency).
const SLOW_EXEMPLARS: usize = 8;

#[derive(Clone, Copy)]
struct SlowEntry {
    latency: Duration,
    stages: StageTimings,
    batch_size: usize,
}

/// Bounded top-k ring of the slowest requests seen by one shard. Capacity
/// is reserved up front so offering is allocation-free.
struct SlowRing {
    entries: Vec<SlowEntry>,
}

impl Default for SlowRing {
    fn default() -> Self {
        SlowRing {
            entries: Vec::with_capacity(SLOW_EXEMPLARS),
        }
    }
}

impl SlowRing {
    fn offer(&mut self, latency: Duration, stages: StageTimings, batch_size: usize) {
        if self.entries.len() < SLOW_EXEMPLARS {
            self.entries.push(SlowEntry {
                latency,
                stages,
                batch_size,
            });
            return;
        }
        // Replace the current fastest entry iff the newcomer is slower.
        let (idx, fastest) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.latency)
            .unwrap_or_else(|| unreachable!("ring has SLOW_EXEMPLARS entries here"));
        if latency > fastest.latency {
            self.entries[idx] = SlowEntry {
                latency,
                stages,
                batch_size,
            };
        }
    }
}

/// One slow-request exemplar with its stage breakdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowExemplar {
    /// Topology the request was for.
    pub topology: String,
    /// End-to-end (enqueue → response) latency.
    pub latency: Duration,
    /// Where that time went.
    pub stages: StageTimings,
    /// Size of the coalesced batch the request rode in.
    pub batch_size: usize,
}

/// One shard's serving counters, owned by that shard's dispatcher thread
/// and registered with [`Telemetry`] for snapshotting. Only the owning
/// shard writes; `snapshot` readers lock briefly to copy.
#[derive(Default)]
pub(crate) struct ShardStats {
    latency: LatencyHistogram,
    queue_wait: LatencyHistogram,
    solve: LatencyHistogram,
    write: LatencyHistogram,
    requests: u64,
    batches: u64,
    /// Coalesced-batch size → occurrence count (for this shard).
    batch_sizes: HashMap<usize, u64>,
    admm: AdmmAccum,
    slow: SlowRing,
}

impl ShardStats {
    /// Live queue-wait p99 for this shard — the pressure signal the
    /// adaptive ADMM budget policy compares against deadline headroom.
    /// Zero until the first batch is recorded (an idle shard is never
    /// "under pressure").
    pub(crate) fn queue_wait_p99(&self) -> Duration {
        self.queue_wait.quantile(0.99)
    }

    /// Record one coalesced batch: per-request end-to-end latencies, their
    /// stage breakdowns (parallel slices), and the batch's solver report
    /// when it reached the ADMM fine-tuner (`downgraded` marks a window the
    /// adaptive policy ran below the configured iteration budget).
    pub(crate) fn record_batch(
        &mut self,
        latencies: &[Duration],
        stages: &[StageTimings],
        solve: Option<&teal_core::SolveReport>,
        downgraded: bool,
    ) {
        debug_assert_eq!(
            latencies.len(),
            stages.len(),
            "latency/stage slice mismatch"
        );
        *self.batch_sizes.entry(latencies.len()).or_insert(0) += 1;
        self.batches += 1;
        self.requests += latencies.len() as u64;
        for (&l, s) in latencies.iter().zip(stages) {
            self.latency.record(l);
            self.queue_wait.record(s.queue_wait);
            self.solve.record(s.solve);
            self.write.record(s.write);
            self.slow.offer(l, *s, latencies.len());
        }
        if let Some(r) = solve {
            self.admm.record(r, downgraded);
        }
    }
}

/// One tenant's serving totals (weighted-fair-queuing accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TenantAccum {
    requests: u64,
    windows: u64,
}

/// Aggregate daemon telemetry (see module docs for the locking story).
#[derive(Default)]
pub struct Telemetry {
    /// Topology id → that shard's stats. The map is touched only at shard
    /// creation and in `snapshot`; recording goes through the `Arc` each
    /// shard retains.
    shards: Mutex<HashMap<String, Arc<Mutex<ShardStats>>>>,
    /// Requests currently enqueued across all shards (gauge).
    queue_depth: AtomicUsize,
    /// Deepest aggregate queue ever observed.
    max_queue_depth: AtomicUsize,
    /// Total requests completed (including error responses).
    completed: AtomicU64,
    /// Requests shed by admission control at enqueue (full queue with a
    /// deadline, or a budget already spent).
    shed: AtomicU64,
    /// Requests whose deadline lapsed in the queue (expired at drain time).
    expired: AtomicU64,
    /// Adjacent deadline'd-request pairs served out of deadline order
    /// within one drain (the EDF invariant, as a counter: 0 under the
    /// default EDF drain, > 0 only under `DrainOrder::Fifo` churn).
    deadline_inversions: AtomicU64,
    /// Reply/scrape completions whose id matched no registered slot on the
    /// announcing connection (wire front ends report these; a nonzero
    /// value flags an id-bookkeeping bug rather than load).
    unmatched_replies: AtomicU64,
    /// Tenant id → served totals. Touched once per chunk (not per
    /// request), so the shared lock stays off the per-request path.
    tenants: Mutex<HashMap<String, TenantAccum>>,
}

impl Telemetry {
    /// The stats slot for `topology`, creating it on first use. Shards call
    /// this once at startup and then record lock-free of the map.
    pub(crate) fn shard_stats(&self, topology: &str) -> Arc<Mutex<ShardStats>> {
        let mut map = self.shards.lock();
        Arc::clone(map.entry(topology.to_string()).or_default())
    }

    /// Gauge bump when a request is enqueued.
    pub(crate) fn on_enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Gauge drop when a shard drains `n` requests. Saturates at zero: a
    /// double-drain bug must not wrap the gauge to `usize::MAX` and poison
    /// every later snapshot (it is loudly caught in debug builds instead).
    pub(crate) fn on_drain(&self, n: usize) {
        // (`fetch_update` is absent from the loom facade; a CAS loop over
        // `compare_exchange` is equivalent and compiles under both.)
        let mut prev = self.queue_depth.load(Ordering::Relaxed);
        loop {
            match self.queue_depth.compare_exchange(
                prev,
                prev.saturating_sub(n),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => prev = cur,
            }
        }
        debug_assert!(
            prev >= n,
            "queue_depth underflow: drained {n} with depth {prev}"
        );
    }

    /// Count `n` successfully answered requests.
    pub(crate) fn on_complete(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one coalesced batch of `latencies` for `topology` (test and
    /// convenience path; shards record through their retained handle).
    #[cfg(test)]
    pub(crate) fn on_batch(&self, topology: &str, latencies: &[Duration]) {
        let stages = vec![StageTimings::default(); latencies.len()];
        self.shard_stats(topology)
            .lock()
            .record_batch(latencies, &stages, None, false);
        self.on_complete(latencies.len() as u64);
    }

    /// Record a request that completed with an error (still counted).
    pub(crate) fn on_error(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an admission-control shed at enqueue (the request was
    /// answered — with an error — so it also counts as completed).
    pub(crate) fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one drain-time deadline expiry (also a completed reply).
    pub(crate) fn on_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` deadline-order inversions observed in one drain's final
    /// serving order (see [`TelemetrySnapshot::deadline_inversions`]).
    pub(crate) fn on_deadline_inversions(&self, n: u64) {
        if n > 0 {
            self.deadline_inversions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count one reply frame (or completion tag) that matched no
    /// registered slot — the wire front ends' "reply with no home" event.
    pub(crate) fn on_unmatched_reply(&self) {
        self.unmatched_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Credit `requests` served requests and `windows` solver windows to
    /// `tenant` (a chunk charges its window to the dominant tenant; request
    /// counts go to each request's own tenant).
    pub(crate) fn on_tenant(&self, tenant: &str, requests: u64, windows: u64) {
        let mut map = self.tenants.lock();
        let acc = map.entry(tenant.to_string()).or_default();
        acc.requests += requests;
        acc.windows += windows;
    }

    /// Take a consistent copy of all counters.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let shards = self.shards.lock();
        let mut per_topology = Vec::with_capacity(shards.len());
        let mut batch_sizes: HashMap<usize, u64> = HashMap::new();
        let mut slow: Vec<SlowExemplar> = Vec::new();
        for (name, stats) in shards.iter() {
            let s = stats.lock();
            let e2e = s.latency.summary();
            per_topology.push(TopoSnapshot {
                topology: name.clone(),
                requests: s.requests,
                batches: s.batches,
                mean: e2e.mean,
                p50: e2e.p50,
                p99: e2e.p99,
                queue_wait: s.queue_wait.summary(),
                solve: s.solve.summary(),
                write: s.write.summary(),
                admm: s.admm.snapshot(),
            });
            for (&size, &n) in &s.batch_sizes {
                *batch_sizes.entry(size).or_insert(0) += n;
            }
            for e in &s.slow.entries {
                slow.push(SlowExemplar {
                    topology: name.clone(),
                    latency: e.latency,
                    stages: e.stages,
                    batch_size: e.batch_size,
                });
            }
        }
        per_topology.sort_by(|a, b| a.topology.cmp(&b.topology));
        // Global top-k across shards, slowest first.
        slow.sort_by_key(|e| std::cmp::Reverse(e.latency));
        slow.truncate(SLOW_EXEMPLARS);
        let mut batch_sizes: Vec<(usize, u64)> = batch_sizes.into_iter().collect();
        batch_sizes.sort_unstable();
        let mut tenants: Vec<TenantSnapshot> = self
            .tenants
            .lock()
            .iter()
            .map(|(name, acc)| TenantSnapshot {
                tenant: name.clone(),
                requests: acc.requests,
                windows: acc.windows,
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        TelemetrySnapshot {
            per_topology,
            batch_sizes,
            tenants,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            deadline_inversions: self.deadline_inversions.load(Ordering::Relaxed),
            unmatched_replies: self.unmatched_replies.load(Ordering::Relaxed),
            pool: teal_nn::pool::stats(),
            slow,
        }
    }
}

/// Point-in-time copy of the daemon's serving statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySnapshot {
    /// Per-topology latency/request stats, sorted by topology id.
    pub per_topology: Vec<TopoSnapshot>,
    /// `(batch size, occurrences)` across all shards, sorted by size.
    /// Sizes are *served window* sizes: counted after drain-time expiry
    /// removes lapsed requests and after signature grouping/chunking, so
    /// the distribution never overstates windows under deadline churn.
    pub batch_sizes: Vec<(usize, u64)>,
    /// Per-tenant served totals, sorted by tenant id. Requests are credited
    /// to their own tenant; each solver window is charged to the chunk's
    /// dominant tenant (most requests, ties broken lexicographically).
    pub tenants: Vec<TenantSnapshot>,
    /// Requests currently waiting in shard queues.
    pub queue_depth: usize,
    /// Deepest aggregate queue observed since startup.
    pub max_queue_depth: usize,
    /// Total requests answered (success or error).
    pub completed: u64,
    /// Requests shed by admission control at enqueue (counted in
    /// `completed` too — sheds are answered, with an error).
    pub shed: u64,
    /// Requests whose deadline lapsed while queued (drain-time expiries;
    /// also counted in `completed`).
    pub expired: u64,
    /// Deadline-order inversions: adjacent deadline'd requests served
    /// later-deadline-first within one drain. The EDF invariant is
    /// `deadline_inversions == 0`; a FIFO drain under deadline churn
    /// accumulates them.
    pub deadline_inversions: u64,
    /// Reply frames (or completion-queue tags) whose request id matched no
    /// registered slot on their connection. The server counts tags with no
    /// pending ticket; [`crate::TealClient`] keeps its own local twin
    /// ([`crate::TealClient::unmatched_replies`]). Zero in a correct
    /// deployment — nonzero means an id-bookkeeping bug, not load.
    pub unmatched_replies: u64,
    /// `teal_nn` worker-pool counters (process-global, sampled at snapshot
    /// time): jobs submitted, chunks run by callers vs stolen by helper
    /// workers, and capped-out queue skips.
    pub pool: PoolStats,
    /// Slowest requests observed (global top-k across shards, slowest
    /// first), each with its stage breakdown.
    pub slow: Vec<SlowExemplar>,
}

impl TelemetrySnapshot {
    /// Mean coalesced batch size (zero when nothing was served).
    pub fn mean_batch_size(&self) -> f64 {
        let (total_reqs, total_batches) = self
            .batch_sizes
            .iter()
            .fold((0u64, 0u64), |(r, b), &(size, n)| {
                (r + size as u64 * n, b + n)
            });
        if total_batches == 0 {
            0.0
        } else {
            total_reqs as f64 / total_batches as f64
        }
    }

    /// Render the snapshot in Prometheus text exposition format (one
    /// gauge/counter family per metric, `# HELP`/`# TYPE` headers, labels
    /// for topology/stage/quantile). Suitable for a scrape endpoint or a
    /// CI artifact.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let secs = |d: Duration| d.as_secs_f64();

        out.push_str("# HELP teal_serve_requests_total Requests served per topology.\n");
        out.push_str("# TYPE teal_serve_requests_total counter\n");
        for t in &self.per_topology {
            let _ = writeln!(
                out,
                "teal_serve_requests_total{{topology=\"{}\"}} {}",
                t.topology, t.requests
            );
        }
        out.push_str("# HELP teal_serve_batches_total Coalesced batches served per topology.\n");
        out.push_str("# TYPE teal_serve_batches_total counter\n");
        for t in &self.per_topology {
            let _ = writeln!(
                out,
                "teal_serve_batches_total{{topology=\"{}\"}} {}",
                t.topology, t.batches
            );
        }

        out.push_str(
            "# HELP teal_serve_stage_seconds Request latency by pipeline stage (quantile label; mean under quantile=\"mean\").\n",
        );
        out.push_str("# TYPE teal_serve_stage_seconds gauge\n");
        for t in &self.per_topology {
            let stages: [(&str, LatencyStats); 4] = [
                (
                    "e2e",
                    LatencyStats {
                        mean: t.mean,
                        p50: t.p50,
                        p99: t.p99,
                    },
                ),
                ("queue_wait", t.queue_wait),
                ("solve", t.solve),
                ("write", t.write),
            ];
            for (stage, s) in stages {
                for (q, v) in [("mean", s.mean), ("0.5", s.p50), ("0.99", s.p99)] {
                    let _ = writeln!(
                        out,
                        "teal_serve_stage_seconds{{topology=\"{}\",stage=\"{}\",quantile=\"{}\"}} {:.9}",
                        t.topology,
                        stage,
                        q,
                        secs(v)
                    );
                }
            }
        }

        out.push_str("# HELP teal_serve_admm_windows_total Solver windows (batches) run.\n");
        out.push_str("# TYPE teal_serve_admm_windows_total counter\n");
        out.push_str("# HELP teal_serve_admm_lanes_total Solver lanes (traffic matrices) run.\n");
        out.push_str("# TYPE teal_serve_admm_lanes_total counter\n");
        out.push_str(
            "# HELP teal_serve_admm_iterations_total ADMM iterations summed over lanes.\n",
        );
        out.push_str("# TYPE teal_serve_admm_iterations_total counter\n");
        out.push_str(
            "# HELP teal_serve_admm_frozen_lanes_total Lanes converged before the iteration budget.\n",
        );
        out.push_str("# TYPE teal_serve_admm_frozen_lanes_total counter\n");
        out.push_str(
            "# HELP teal_serve_admm_budgeted_iterations_total Iterations allowed by the per-window budgets (lanes × budget summed over windows).\n",
        );
        out.push_str("# TYPE teal_serve_admm_budgeted_iterations_total counter\n");
        out.push_str(
            "# HELP teal_serve_admm_budget_downgrades_total Windows the adaptive policy ran below the configured iteration budget.\n",
        );
        out.push_str("# TYPE teal_serve_admm_budget_downgrades_total counter\n");
        out.push_str(
            "# HELP teal_serve_admm_windows_by_budget_total Solver windows by per-window iteration budget.\n",
        );
        out.push_str("# TYPE teal_serve_admm_windows_by_budget_total counter\n");
        out.push_str(
            "# HELP teal_serve_admm_residual Final ADMM residuals (kind=primal|dual, stat=last|max).\n",
        );
        out.push_str("# TYPE teal_serve_admm_residual gauge\n");
        for t in &self.per_topology {
            let Some(a) = &t.admm else { continue };
            let topo = &t.topology;
            let _ = writeln!(
                out,
                "teal_serve_admm_windows_total{{topology=\"{topo}\"}} {}",
                a.windows
            );
            let _ = writeln!(
                out,
                "teal_serve_admm_lanes_total{{topology=\"{topo}\"}} {}",
                a.lanes
            );
            let _ = writeln!(
                out,
                "teal_serve_admm_iterations_total{{topology=\"{topo}\"}} {}",
                a.iterations
            );
            let _ = writeln!(
                out,
                "teal_serve_admm_frozen_lanes_total{{topology=\"{topo}\"}} {}",
                a.frozen_lanes
            );
            let _ = writeln!(
                out,
                "teal_serve_admm_budgeted_iterations_total{{topology=\"{topo}\"}} {}",
                a.budgeted_iterations
            );
            let _ = writeln!(
                out,
                "teal_serve_admm_budget_downgrades_total{{topology=\"{topo}\"}} {}",
                a.budget_downgrades
            );
            for &(budget, n) in &a.windows_by_budget {
                let _ = writeln!(
                    out,
                    "teal_serve_admm_windows_by_budget_total{{topology=\"{topo}\",budget=\"{budget}\"}} {n}"
                );
            }
            for (kind, stat, v) in [
                ("primal", "last", a.last_primal_residual),
                ("primal", "max", a.max_primal_residual),
                ("dual", "last", a.last_dual_residual),
                ("dual", "max", a.max_dual_residual),
            ] {
                let _ = writeln!(
                    out,
                    "teal_serve_admm_residual{{topology=\"{topo}\",kind=\"{kind}\",stat=\"{stat}\"}} {v:e}"
                );
            }
        }

        out.push_str("# HELP teal_serve_queue_depth Requests currently enqueued.\n");
        out.push_str("# TYPE teal_serve_queue_depth gauge\n");
        let _ = writeln!(out, "teal_serve_queue_depth {}", self.queue_depth);
        out.push_str("# HELP teal_serve_max_queue_depth Deepest aggregate queue observed.\n");
        out.push_str("# TYPE teal_serve_max_queue_depth gauge\n");
        let _ = writeln!(out, "teal_serve_max_queue_depth {}", self.max_queue_depth);
        for (name, help, v) in [
            (
                "teal_serve_completed_total",
                "Requests answered (success or error).",
                self.completed,
            ),
            (
                "teal_serve_shed_total",
                "Requests shed by admission control.",
                self.shed,
            ),
            (
                "teal_serve_expired_total",
                "Requests expired in the queue.",
                self.expired,
            ),
            (
                "teal_serve_deadline_inversions_total",
                "Deadline'd requests served out of deadline order within a drain.",
                self.deadline_inversions,
            ),
            (
                "teal_serve_unmatched_replies_total",
                "Reply frames whose request id matched no registered slot.",
                self.unmatched_replies,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }

        out.push_str("# HELP teal_serve_batch_size_total Coalesced batches by size.\n");
        out.push_str("# TYPE teal_serve_batch_size_total counter\n");
        for &(size, n) in &self.batch_sizes {
            let _ = writeln!(out, "teal_serve_batch_size_total{{size=\"{size}\"}} {n}");
        }

        out.push_str("# HELP teal_serve_tenant_requests_total Requests served per tenant.\n");
        out.push_str("# TYPE teal_serve_tenant_requests_total counter\n");
        out.push_str(
            "# HELP teal_serve_tenant_windows_total Solver windows charged per tenant (dominant-tenant accounting).\n",
        );
        out.push_str("# TYPE teal_serve_tenant_windows_total counter\n");
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "teal_serve_tenant_requests_total{{tenant=\"{}\"}} {}",
                t.tenant, t.requests
            );
            let _ = writeln!(
                out,
                "teal_serve_tenant_windows_total{{tenant=\"{}\"}} {}",
                t.tenant, t.windows
            );
        }

        for (name, help, v) in [
            (
                "teal_nn_pool_jobs_total",
                "Parallel jobs submitted to the worker pool.",
                self.pool.jobs,
            ),
            (
                "teal_nn_pool_caller_chunks_total",
                "Chunks executed by submitting threads.",
                self.pool.caller_chunks,
            ),
            (
                "teal_nn_pool_helper_chunks_total",
                "Chunks stolen by helper workers.",
                self.pool.helper_chunks,
            ),
            (
                "teal_nn_pool_capped_skips_total",
                "Queue scans that skipped a capped-out job.",
                self.pool.capped_skips,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }

        out.push_str(
            "# HELP teal_serve_slow_seconds Slowest requests (rank 0 = slowest) by stage.\n",
        );
        out.push_str("# TYPE teal_serve_slow_seconds gauge\n");
        for (rank, e) in self.slow.iter().enumerate() {
            for (stage, v) in [
                ("e2e", e.latency),
                ("queue_wait", e.stages.queue_wait),
                ("solve", e.stages.solve),
                ("write", e.stages.write),
            ] {
                let _ = writeln!(
                    out,
                    "teal_serve_slow_seconds{{topology=\"{}\",rank=\"{rank}\",stage=\"{stage}\",batch=\"{}\"}} {:.9}",
                    e.topology,
                    e.batch_size,
                    secs(v)
                );
            }
        }
        out
    }
}

/// One tenant's served totals under weighted fair queuing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant id (`"default"` for untagged requests).
    pub tenant: String,
    /// Requests served for this tenant (success replies only).
    pub requests: u64,
    /// Solver windows charged to this tenant (dominant-tenant accounting).
    pub windows: u64,
}

/// One topology's latency profile.
#[derive(Clone, Debug, PartialEq)]
pub struct TopoSnapshot {
    /// Registry id of the topology.
    pub topology: String,
    /// Requests served.
    pub requests: u64,
    /// Coalesced batches those requests rode in.
    pub batches: u64,
    /// Mean end-to-end (enqueue → response) latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Time spent waiting in the shard queue (enqueue → drain).
    pub queue_wait: LatencyStats,
    /// Time in the forward pass + ADMM fine-tuning.
    pub solve: LatencyStats,
    /// Time from solve end to response fulfillment.
    pub write: LatencyStats,
    /// ADMM solve statistics (`None` until a batch reaches the solver).
    pub admm: Option<AdmmStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmatched_replies_reach_snapshot_and_prometheus() {
        let t = Telemetry::default();
        assert_eq!(t.snapshot().unmatched_replies, 0);
        t.on_unmatched_reply();
        t.on_unmatched_reply();
        let snap = t.snapshot();
        assert_eq!(snap.unmatched_replies, 2);
        let text = snap.to_prometheus();
        assert!(
            text.contains("teal_serve_unmatched_replies_total 2"),
            "missing/incorrect counter line in:\n{text}"
        );
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::default();
        for us in [50u64, 80, 100, 120, 150, 400, 900, 5000] {
            h.record(Duration::from_micros(us));
        }
        let (p50, p99) = (h.quantile(0.5), h.quantile(0.99));
        assert!(p50 <= p99, "p50 {p50:?} > p99 {p99:?}");
        assert!(p99 <= Duration::from_micros(5000));
        assert!(p50 >= Duration::from_micros(80), "p50 {p50:?} too low");
        assert_eq!(h.count(), 8);
        assert!(h.mean() > Duration::ZERO);
    }

    #[test]
    fn constant_stream_quantiles_within_one_sub_bucket() {
        // Regression for the lower-edge bug: p50 of a constant-latency
        // stream must land within one sub-bucket (a factor of 2^(1/SUBDIV))
        // of the true latency. Reporting each bucket's lower geometric edge
        // understated it by up to ~19%.
        let sub = 2f64.powf(1.0 / SUBDIV);
        for truth_us in [3u64, 47, 100, 999, 12_345] {
            let mut h = LatencyHistogram::default();
            for _ in 0..1000 {
                h.record(Duration::from_micros(truth_us));
            }
            let truth = (truth_us * 1000) as f64;
            for q in [0.5, 0.99] {
                let est = h.quantile(q).as_nanos() as f64;
                assert!(
                    est <= truth * sub && est >= truth / sub,
                    "q{q}: estimate {est}ns not within one sub-bucket of {truth}ns"
                );
            }
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn merged_quantiles_equal_combined_stream() {
        // merge() must be indistinguishable from having recorded both
        // streams into one histogram: same buckets, same count/sum/max,
        // hence *identical* quantiles at every q.
        let stream_a: Vec<u64> = (1..500).map(|i| i * 137 % 90_000 + 1).collect();
        let stream_b: Vec<u64> = (1..300).map(|i| i * 7919 % 2_000_000 + 1).collect();
        let (mut a, mut b, mut combined) = (
            LatencyHistogram::default(),
            LatencyHistogram::default(),
            LatencyHistogram::default(),
        );
        for &us in &stream_a {
            a.record(Duration::from_micros(us));
            combined.record(Duration::from_micros(us));
        }
        for &us in &stream_b {
            b.record(Duration::from_micros(us));
            combined.record(Duration::from_micros(us));
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.mean(), combined.mean());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(
                a.quantile(q),
                combined.quantile(q),
                "quantile {q} diverged after merge"
            );
        }
        // Merging an empty histogram is a no-op.
        let before = a.quantile(0.5);
        a.merge(&LatencyHistogram::default());
        assert_eq!(a.quantile(0.5), before);
    }

    #[test]
    fn snapshot_aggregates_batches() {
        let t = Telemetry::default();
        t.on_enqueue();
        t.on_enqueue();
        t.on_drain(2);
        t.on_batch(
            "B4",
            &[Duration::from_micros(100), Duration::from_micros(200)],
        );
        t.on_batch("B4", &[Duration::from_micros(300)]);
        let snap = t.snapshot();
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.max_queue_depth, 2);
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.per_topology.len(), 1);
        assert_eq!(snap.per_topology[0].requests, 3);
        assert_eq!(snap.per_topology[0].batches, 2);
        assert_eq!(snap.batch_sizes, vec![(1, 1), (2, 1)]);
        assert!((snap.mean_batch_size() - 1.5).abs() < 1e-9);
        // on_batch records zero stage timings and no solver report.
        assert_eq!(snap.per_topology[0].admm, None);
        assert_eq!(snap.slow.len(), 3);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "queue_depth underflow")]
    fn over_drain_is_caught_in_debug() {
        let t = Telemetry::default();
        t.on_enqueue();
        t.on_drain(2);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn over_drain_saturates_in_release() {
        let t = Telemetry::default();
        t.on_enqueue();
        t.on_drain(2);
        assert_eq!(t.snapshot().queue_depth, 0, "gauge must saturate, not wrap");
    }

    #[test]
    fn stage_and_admm_stats_reach_snapshot() {
        let t = Telemetry::default();
        let stats = t.shard_stats("B4");
        let stages = [
            StageTimings {
                queue_wait: Duration::from_micros(40),
                solve: Duration::from_micros(700),
                write: Duration::from_micros(10),
            },
            StageTimings {
                queue_wait: Duration::from_micros(80),
                solve: Duration::from_micros(700),
                write: Duration::from_micros(10),
            },
        ];
        let report = teal_core::SolveReport {
            budget: 2,
            lanes: 2,
            iterations: 4,
            min_iterations: 2,
            max_iterations: 2,
            frozen_lanes: 0,
            max_primal_residual: 0.25,
            max_dual_residual: 0.125,
        };
        stats.lock().record_batch(
            &[Duration::from_micros(750), Duration::from_micros(790)],
            &stages,
            Some(&report),
            true,
        );
        let snap = t.snapshot();
        let topo = &snap.per_topology[0];
        assert!(topo.queue_wait.p50 >= Duration::from_micros(30));
        assert!(topo.solve.p99 >= Duration::from_micros(600));
        assert!(topo.write.p50 > Duration::ZERO);
        let admm = topo.admm.as_ref().expect("solver report recorded");
        assert_eq!(admm.windows, 1);
        assert_eq!(admm.lanes, 2);
        assert_eq!(admm.iterations, 4);
        assert_eq!(admm.budgeted_iterations, 4, "lanes × budget for one window");
        assert_eq!(admm.budget_downgrades, 1);
        assert_eq!(admm.windows_by_budget, vec![(2, 1)]);
        assert_eq!(admm.min_lane_iterations, 2);
        assert_eq!(admm.max_lane_iterations, 2);
        assert_eq!(admm.frozen_lanes, 0);
        assert!((admm.mean_iterations() - 2.0).abs() < 1e-12);
        assert!((admm.last_primal_residual - 0.25).abs() < 1e-12);
        assert!((admm.max_dual_residual - 0.125).abs() < 1e-12);
    }

    #[test]
    fn tenant_and_inversion_counters_reach_snapshot() {
        let t = Telemetry::default();
        t.on_tenant("gold", 3, 1);
        t.on_tenant("bronze", 1, 1);
        t.on_tenant("gold", 2, 1);
        t.on_deadline_inversions(2);
        t.on_deadline_inversions(0);
        let snap = t.snapshot();
        assert_eq!(snap.deadline_inversions, 2);
        assert_eq!(
            snap.tenants,
            vec![
                TenantSnapshot {
                    tenant: "bronze".into(),
                    requests: 1,
                    windows: 1,
                },
                TenantSnapshot {
                    tenant: "gold".into(),
                    requests: 5,
                    windows: 2,
                },
            ]
        );
        let text = snap.to_prometheus();
        for needle in [
            "teal_serve_tenant_requests_total{tenant=\"gold\"} 5",
            "teal_serve_tenant_windows_total{tenant=\"gold\"} 2",
            "teal_serve_deadline_inversions_total 2",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn slow_ring_keeps_top_k() {
        let mut ring = SlowRing::default();
        for us in 1..=100u64 {
            ring.offer(Duration::from_micros(us), StageTimings::default(), 1);
        }
        assert_eq!(ring.entries.len(), SLOW_EXEMPLARS);
        let mut lat: Vec<u64> = ring
            .entries
            .iter()
            .map(|e| e.latency.as_micros() as u64)
            .collect();
        lat.sort_unstable();
        assert_eq!(lat, (93..=100).collect::<Vec<_>>());
    }

    #[test]
    fn trace_stages_partition_end_to_end() {
        let t0 = now();
        let mut tr = Trace::at(t0);
        let t1 = t0 + Duration::from_micros(100);
        let t2 = t1 + Duration::from_micros(20);
        let t3 = t2 + Duration::from_micros(500);
        let done = t3 + Duration::from_micros(30);
        tr.stamp_drained(t1);
        tr.stamp_solve_start(t2);
        tr.stamp_solve_end(t3);
        let s = tr.stages(done);
        assert_eq!(s.queue_wait, Duration::from_micros(100));
        assert_eq!(s.solve, Duration::from_micros(500));
        assert_eq!(s.write, Duration::from_micros(30));
        // Unstamped stages collapse to zero instead of misattributing.
        let s = Trace::at(t0).stages(done);
        assert_eq!(s.queue_wait, done - t0);
        assert_eq!(s.solve, Duration::ZERO);
        assert_eq!(s.write, Duration::ZERO);
    }

    #[test]
    fn prometheus_rendering_smoke() {
        let t = Telemetry::default();
        t.on_enqueue();
        t.on_drain(1);
        t.on_batch("B4", &[Duration::from_micros(100)]);
        let text = t.snapshot().to_prometheus();
        for needle in [
            "teal_serve_requests_total{topology=\"B4\"} 1",
            "teal_serve_stage_seconds{topology=\"B4\",stage=\"solve\",quantile=\"0.99\"}",
            "teal_serve_queue_depth 0",
            "teal_serve_completed_total 1",
            "teal_nn_pool_jobs_total",
            "teal_serve_slow_seconds{topology=\"B4\",rank=\"0\",stage=\"e2e\"",
            "# TYPE teal_serve_batch_size_total counter",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}

//! Objective flexibility (§5.5): retrain Teal for different TE objectives by
//! swapping the RL reward — no architectural change.
//!
//! Trains three models on the same SWAN-like testbed: maximize total flow,
//! minimize max link utilization (MLU), and maximize latency-penalized flow,
//! then cross-evaluates each model under all three metrics to show each
//! specializes to its own objective.
//!
//! Run with: `cargo run --release --example objective_zoo`

use std::sync::Arc;
use teal::core::{
    train_coma, ComaConfig, EngineConfig, Env, RewardKind, TealConfig, TealEngine, TealModel,
};
use teal::lp::{evaluate_with_gamma, Objective};
use teal::topology::{generate, TopoKind};
use teal::traffic::{TrafficConfig, TrafficModel};

fn main() {
    let topo = generate(TopoKind::Swan, 0.35, 5);
    println!("topology: SWAN-like, {} nodes", topo.num_nodes());
    let env = Arc::new(Env::for_topology(topo));
    let mut traffic = TrafficModel::new(&env.topo().all_pairs(), TrafficConfig::default(), 5);
    traffic.calibrate(env.topo(), env.paths());
    let train = traffic.series(0, 24);
    let val = traffic.series(24, 4);
    let test = traffic.series(28, 6);

    let gamma = 0.5;
    let objectives: [(&str, RewardKind, Objective); 3] = [
        (
            "max total flow",
            RewardKind::TotalFlow,
            Objective::TotalFlow,
        ),
        ("min MLU", RewardKind::NegMaxUtil, Objective::MinMaxLinkUtil),
        (
            "max delay-penalized",
            RewardKind::DelayPenalized(gamma),
            Objective::DelayPenalizedFlow(gamma),
        ),
    ];

    println!(
        "\n{:<22} {:>12} {:>8} {:>18}",
        "trained for", "satisfied%", "MLU", "penalized flow%"
    );
    for (name, reward, obj) in objectives {
        let mut model = TealModel::new(Arc::clone(&env), TealConfig::default());
        let cfg = ComaConfig {
            epochs: 8,
            lr: 3e-3,
            reward,
            ..ComaConfig::default()
        };
        let _ = train_coma(&mut model, &train, &val, &cfg);
        // ADMM is used for the linear flow objective only, as in §5.5.
        let engine_cfg = if matches!(obj, Objective::TotalFlow) {
            EngineConfig::paper_default(env.topo().num_nodes())
        } else {
            EngineConfig::without_admm(obj)
        };
        let engine = TealEngine::new(model, engine_cfg);

        let (mut sat, mut mlu, mut pen) = (0.0, 0.0, 0.0);
        for tm in &test {
            let (alloc, _) = engine.allocate(tm);
            let inst = env.instance(tm);
            let stats = evaluate_with_gamma(&inst, &alloc, gamma);
            sat += stats.satisfied_pct();
            mlu += stats.max_link_util;
            pen += 100.0 * stats.delay_penalized_flow / tm.total();
        }
        let n = test.len() as f64;
        println!(
            "{:<22} {:>11.1}% {:>8.2} {:>17.1}%",
            name,
            sat / n,
            mlu / n,
            pen / n
        );
    }
    println!(
        "\nEach model optimizes its own column — the MLU-trained model trades \
         throughput for headroom, the delay-penalized one shifts traffic onto \
         short paths."
    );
}

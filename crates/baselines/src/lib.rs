//! `teal-baselines`: the TE schemes the paper compares Teal against (§5.1).
//!
//! * LP-all — the full path LP, provided by `teal_lp::solve_lp`;
//! * [`lp_top`] — demand pinning: LP over the top 10% of demands;
//! * [`ncflow`] — topology-partitioning decomposition (NCFlow-like);
//! * [`pop`] — capacity-split replicas (POP);
//! * [`teavar`] — scenario-robust allocation (TEAVAR*, B4 only);
//! * Fleischer's approximation lives in `teal_lp::fleischer`.
// No raw-pointer or FFI work belongs in this crate; the workspace's
// audited unsafe lives in `teal-nn`/`teal-lp` only (see the root crate's
// unsafe inventory docs).
#![forbid(unsafe_code)]

pub mod lp_top;
pub mod ncflow;
pub mod pop;
pub mod teavar;

pub use lp_top::solve_lp_top;
pub use ncflow::{partition, solve_ncflow, NcflowConfig};
pub use pop::{solve_pop, PopConfig};
pub use teavar::{solve_teavar, TeavarConfig};

//! Parameter checkpointing.
//!
//! The paper trains a Teal model for ~a week per topology and retrains for
//! 6–10 hours after permanent topology changes (§4). That only works if
//! trained weights persist, so [`ParamStore`] supports saving to and loading
//! from a simple self-describing text format (one tensor per block: name,
//! shape, then row-major values). Text keeps the format debuggable and
//! dependency-free; precision is preserved via the exact `f32` bit patterns
//! encoded in lowercase hex alongside a human-readable decimal.

use crate::module::ParamStore;
use crate::tensor::Tensor;
use std::fmt::Write as _;
use std::path::Path;

/// Magic header identifying the format (versioned for forward compat).
const MAGIC: &str = "teal-checkpoint-v1";

/// Serialization/deserialization errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint (with a human-readable reason).
    Format(String),
    /// The checkpoint's parameters do not match the target store's
    /// names/shapes.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serialize every parameter of a store into the checkpoint text format.
pub fn to_string(store: &ParamStore) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "tensors {}", store.len());
    for i in 0..store.len() {
        let id = store.id_at(i);
        let t = store.get(id);
        let (r, c) = t.shape();
        let _ = writeln!(out, "tensor {} {} {}", store.name(id), r, c);
        for row in 0..r {
            let mut line = String::new();
            for (j, v) in t.row(row).iter().enumerate() {
                if j > 0 {
                    line.push(' ');
                }
                // Exact bits in hex; decimal only for human readers.
                let _ = write!(line, "{:08x}", v.to_bits());
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Parse a checkpoint and load it into `store`. Parameter names, order, and
/// shapes must match exactly (the checkpoint belongs to the same
/// architecture).
pub fn load_str(store: &mut ParamStore, data: &str) -> Result<(), CheckpointError> {
    let mut lines = data.lines();
    let header = lines
        .next()
        .ok_or_else(|| CheckpointError::Format("empty file".into()))?;
    if header.trim() != MAGIC {
        return Err(CheckpointError::Format(format!("bad magic {header:?}")));
    }
    let count_line = lines
        .next()
        .ok_or_else(|| CheckpointError::Format("missing tensor count".into()))?;
    let count: usize = count_line
        .strip_prefix("tensors ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| CheckpointError::Format(format!("bad count line {count_line:?}")))?;
    if count != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {count} tensors, store has {}",
            store.len()
        )));
    }

    let mut tensors: Vec<Tensor> = Vec::with_capacity(count);
    for i in 0..count {
        let head = lines
            .next()
            .ok_or_else(|| CheckpointError::Format(format!("missing tensor header {i}")))?;
        let mut parts = head.split_whitespace();
        if parts.next() != Some("tensor") {
            return Err(CheckpointError::Format(format!(
                "bad tensor header {head:?}"
            )));
        }
        let name = parts
            .next()
            .ok_or_else(|| CheckpointError::Format("missing tensor name".into()))?;
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Format("bad row count".into()))?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Format("bad col count".into()))?;

        let id = store.id_at(i);
        if store.name(id) != name {
            return Err(CheckpointError::Mismatch(format!(
                "tensor {i} is {:?} in the store but {name:?} in the checkpoint",
                store.name(id)
            )));
        }
        if store.get(id).shape() != (rows, cols) {
            return Err(CheckpointError::Mismatch(format!(
                "tensor {name}: store shape {:?} vs checkpoint {rows}x{cols}",
                store.get(id).shape()
            )));
        }
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let line = lines.next().ok_or_else(|| {
                CheckpointError::Format(format!("tensor {name}: missing row {r}"))
            })?;
            for tok in line.split_whitespace() {
                let bits = u32::from_str_radix(tok, 16).map_err(|_| {
                    CheckpointError::Format(format!("tensor {name}: bad value {tok:?}"))
                })?;
                data.push(f32::from_bits(bits));
            }
        }
        if data.len() != rows * cols {
            return Err(CheckpointError::Format(format!(
                "tensor {name}: expected {} values, got {}",
                rows * cols,
                data.len()
            )));
        }
        tensors.push(Tensor::from_vec(rows, cols, data));
    }
    // All validated — commit.
    for (i, t) in tensors.into_iter().enumerate() {
        let id = store.id_at(i);
        *store.get_mut(id) = t;
    }
    Ok(())
}

/// Save a store to a file.
pub fn save(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    std::fs::write(path, to_string(store))?;
    Ok(())
}

/// Load a store from a file.
pub fn load(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let data = std::fs::read_to_string(path)?;
    load_str(store, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn sample_store(seed: u64) -> ParamStore {
        let mut store = ParamStore::new();
        let mut rng = seeded(seed);
        store.register_xavier("layer1.w", 3, 4, &mut rng);
        store.register("layer1.b", Tensor::zeros(1, 4));
        store.register_xavier("out.w", 4, 2, &mut rng);
        store.register("logstd", Tensor::full(1, 2, -1.0));
        store
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let store = sample_store(1);
        let text = to_string(&store);
        let mut other = sample_store(2); // same architecture, different init
        load_str(&mut other, &text).unwrap();
        for i in 0..store.len() {
            let a = store.get(store.id_at(i));
            let b = other.get(other.id_at(i));
            assert_eq!(a.data(), b.data(), "tensor {i} not bit-exact");
        }
    }

    #[test]
    fn file_roundtrip() {
        let store = sample_store(3);
        let path = std::env::temp_dir().join("teal_ckpt_test.txt");
        save(&store, &path).unwrap();
        let mut other = sample_store(4);
        load(&mut other, &path).unwrap();
        assert_eq!(
            store.get(store.id_at(0)).data(),
            other.get(other.id_at(0)).data()
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_wrong_architecture() {
        let store = sample_store(1);
        let text = to_string(&store);
        // Different arity.
        let mut small = ParamStore::new();
        small.register("w", Tensor::zeros(3, 4));
        assert!(matches!(
            load_str(&mut small, &text),
            Err(CheckpointError::Mismatch(_))
        ));
        // Different shape under the same names.
        let mut wrong_shape = ParamStore::new();
        let mut rng = seeded(9);
        wrong_shape.register_xavier("layer1.w", 3, 5, &mut rng);
        wrong_shape.register("layer1.b", Tensor::zeros(1, 4));
        wrong_shape.register_xavier("out.w", 4, 2, &mut rng);
        wrong_shape.register("logstd", Tensor::full(1, 2, -1.0));
        assert!(matches!(
            load_str(&mut wrong_shape, &text),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn rejects_corrupt_input() {
        let mut store = sample_store(1);
        assert!(matches!(
            load_str(&mut store, ""),
            Err(CheckpointError::Format(_))
        ));
        assert!(matches!(
            load_str(&mut store, "not-a-checkpoint\n"),
            Err(CheckpointError::Format(_))
        ));
        let mut text = to_string(&store);
        text.push_str("trailing garbage should be ignored, truncation is not\n");
        // Truncate mid-tensor.
        let cut = text.len() / 2;
        assert!(load_str(&mut store, &text[..cut]).is_err());
    }

    #[test]
    fn failed_load_leaves_store_untouched() {
        let store = sample_store(5);
        let text = to_string(&store);
        let mut target = sample_store(6);
        let before = target.snapshot();
        // Corrupt the last value.
        let bad = text
            .trim_end()
            .rsplit_once(' ')
            .map(|(a, _)| format!("{a} zz"))
            .unwrap();
        assert!(load_str(&mut target, &bad).is_err());
        for (t, b) in target.snapshot().iter().zip(&before) {
            assert!(t.approx_eq(b, 0.0), "store mutated by failed load");
        }
    }
}

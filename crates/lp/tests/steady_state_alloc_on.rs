//! The allocation-free steady state of the **failure path** (§5.3),
//! machine-checked: with the failure-overridden skeleton hoisted (one
//! `with_topology` per failure *scenario*, as the serving shard's
//! signature-grouped sub-batches do), repeated failure windows reminted
//! into a retained solver + [`BatchArena`] perform **zero heap
//! allocations** — even while *alternating* with plain windows on the same
//! retained state, the shard's actual serving pattern.
//!
//! Companion to `steady_state_alloc.rs` (which pins the plain path); this
//! file holds exactly one `#[test]` for the same reason — the counting
//! global allocator must not see another test's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use teal_lp::{AdmmConfig, AdmmSkeleton, Allocation, BatchArena, Objective};
use teal_topology::{generate, PathSet, TopoKind};
use teal_traffic::TrafficMatrix;

/// `System` plus an allocation counter (allocations only — frees are
/// irrelevant to the claim being tested).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: pure pass-through — the caller upholds GlobalAlloc's
        // contract, which is exactly what `System` requires.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: pass-through; `ptr`/`layout` came from this allocator,
        // i.e. from `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: pass-through; caller's GlobalAlloc obligations forward
        // unchanged to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn failure_windows_allocate_nothing_in_steady_state() {
    // The serving shape of a failure burst: SWAN, 16-matrix windows, the
    // paper's 5-iteration fine-tune, one link failed (capacity zeroed).
    let topo = generate(TopoKind::Swan, 0.4, 7);
    let mut pairs = topo.all_pairs();
    pairs.truncate(60);
    let paths = PathSet::compute(&topo, &pairs, 4);
    let skel = AdmmSkeleton::new(&topo, &paths, Objective::TotalFlow);
    // Hoisted once per failure scenario — the override skeleton shares the
    // incidence index and only reclones the capacity vector.
    let failed_topo = {
        let e = &topo.edges()[0];
        topo.with_failed_link(e.src, e.dst)
    };
    let skel_on = skel.with_topology(&failed_topo);
    let nd = paths.num_demands();
    let k = paths.k();
    let cfg = AdmmConfig {
        rho: 1.0,
        max_iters: 5,
        tol: 0.0,
        serial: true,
    };

    const WINDOWS: usize = 8;
    const BATCH: usize = 16;
    let windows: Vec<Vec<TrafficMatrix>> = (0..WINDOWS)
        .map(|w| {
            (0..BATCH)
                .map(|b| {
                    TrafficMatrix::new(
                        (0..nd)
                            .map(|d| ((w * 31 + b * 7 + d) % 23) as f64 * 1.7)
                            .collect(),
                    )
                })
                .collect()
        })
        .collect();
    let inits: Vec<Allocation> = (0..BATCH)
        .map(|b| {
            Allocation::from_splits(k, (0..nd * k).map(|p| ((p + b) % 5) as f64 * 0.3).collect())
        })
        .collect();

    let mut arena = BatchArena::new();
    let mut outs = Vec::new();
    let mut reports = Vec::new();

    // Warm-up: one plain and one failure window grow every buffer.
    let mut solver = skel.batch_solver(&windows[0]);
    solver.run_batch_into(&inits, cfg, &mut arena, &mut outs, &mut reports);
    skel_on.remint_batch_solver(&mut solver, &windows[1]);
    solver.run_batch_into(&inits, cfg, &mut arena, &mut outs, &mut reports);

    // Steady state: alternate failure and plain windows on the retained
    // solver/arena — exactly the shard's signature-grouped drain pattern.
    // Every remint + solve must be allocation-free.
    let mut failure_outputs = 0usize;
    for (w, tms) in windows.iter().enumerate().skip(2) {
        let on_failure = w % 2 == 0;
        let use_skel = if on_failure { &skel_on } else { &skel };
        let before = ALLOCS.load(Ordering::SeqCst);
        use_skel.remint_batch_solver(&mut solver, tms);
        solver.run_batch_into(&inits, cfg, &mut arena, &mut outs, &mut reports);
        let grew = ALLOCS.load(Ordering::SeqCst) - before;
        assert_eq!(
            grew,
            0,
            "window {w} ({} path) performed {grew} heap allocations in steady state",
            if on_failure { "failure" } else { "plain" }
        );
        if on_failure {
            failure_outputs += 1;
            // The override actually bit: no window serves with identical
            // splits to the plain skeleton on the same traffic.
            let plain = skel.batch_solver(tms).run_batch(&inits, cfg);
            assert!(
                outs.iter()
                    .zip(plain.0.iter())
                    .any(|(a, b)| a.splits() != b.splits()),
                "window {w}: failure override did not change the solution"
            );
        }
    }

    assert!(failure_outputs >= 3, "too few failure windows exercised");
    assert_eq!(outs.len(), BATCH);
    assert!(reports.iter().all(|r| r.iterations == 5));
    assert!(outs.iter().any(|a| a.splits().iter().any(|&v| v > 0.0)));
}

//! `teal-lp`: TE optimization problem types and from-scratch solvers.
//!
//! Replaces the paper's Gurobi dependency with:
//! * an exact dense [`simplex`] solver for small instances,
//! * [`admm`] (Appendix C) usable both as Teal's 2–5-iteration fine-tuner
//!   and, run to convergence, as the large-instance "LP-all" substitute,
//! * a [`fleischer`] multiplicative-weights approximation (§2.1's
//!   combinatorial baseline),
//! * [`concurrent`] racing of serial instances reproducing Figure 2's
//!   marginal multicore speedup,
//! * the [`flow`] module defining the feasible-flow semantics every scheme
//!   is scored under.

pub mod admm;
pub mod concurrent;
pub mod fleischer;
pub mod flow;
pub mod pathlp;
pub mod problem;
pub mod simplex;

pub use admm::{AdmmBatchSolver, AdmmConfig, AdmmReport, AdmmSkeleton, AdmmSolver, BatchArena};
pub use flow::{evaluate, evaluate_with_gamma, objective_value, FlowStats};
pub use pathlp::{solve_lp, solve_mlu, LpConfig, LpInfo, LpMethod};
pub use problem::{Allocation, Objective, TeInstance};

//! `teal-traffic`: synthetic traffic matrices replacing the SWAN trace.
//!
//! Generates heavy-tailed, temporally correlated demand series calibrated to
//! the statistics the paper reports (top 10% of demands ≈ 88.4% of volume),
//! plus the perturbation operators used by the robustness experiments.
// No raw-pointer or FFI work belongs in this crate; the workspace's
// audited unsafe lives in `teal-nn`/`teal-lp` only (see the root crate's
// unsafe inventory docs).
#![forbid(unsafe_code)]

pub mod gen;
pub mod matrix;
pub mod perturb;

pub use gen::{SplitSpec, TrafficConfig, TrafficModel};
pub use matrix::{inter_interval_variance, TrafficMatrix};
pub use perturb::{spatial_redistribution, temporal_fluctuation};

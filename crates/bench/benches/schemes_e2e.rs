//! Criterion bench: end-to-end per-matrix allocation cost of every scheme on
//! a SWAN-scale testbed — the microbenchmark behind Figure 6a.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use teal_core::{EngineConfig, Env, TealConfig, TealEngine, TealModel};
use teal_lp::Objective;
use teal_sim::{
    FleischerScheme, LpAllScheme, LpTopScheme, NcflowScheme, PopScheme, Scheme, TealScheme,
};
use teal_topology::{generate, PathSet, TopoKind};
use teal_traffic::{TrafficConfig, TrafficModel};

fn bench_schemes(c: &mut Criterion) {
    let topo = generate(TopoKind::Swan, 0.4, 42);
    let mut pairs = topo.all_pairs();
    pairs.truncate(800);
    let paths = PathSet::compute(&topo, &pairs, 4);
    let mut model = TrafficModel::new(&pairs, TrafficConfig::default(), 42);
    model.calibrate(&topo, &paths);
    let tm = model.series(0, 1).remove(0);
    let env = Arc::new(Env::new(topo, paths));

    let teal_model = TealModel::new(Arc::clone(&env), TealConfig::default());
    let engine = TealEngine::new(
        teal_model,
        EngineConfig::paper_default(env.topo().num_nodes()),
    );
    let mut schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(TealScheme::new(engine)),
        Box::new(LpAllScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(LpTopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(NcflowScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(PopScheme::new(Arc::clone(&env), Objective::TotalFlow)),
        Box::new(FleischerScheme::new(Arc::clone(&env))),
    ];
    let mut group = c.benchmark_group("schemes_e2e_swan");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for s in &mut schemes {
        let name = s.name().to_string();
        group.bench_function(&name, |b| b.iter(|| s.allocate(env.topo(), &tm)));
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);

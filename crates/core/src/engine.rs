//! The deployed Teal engine (§3.1, Figure 3): one neural forward pass
//! followed by 2–5 warm-started ADMM iterations.
//!
//! `allocate` measures the wall-clock time of the full pipeline — the number
//! reported as Teal's computation time in the paper's figures. Because the
//! forward pass is a fixed sequence of matrix products and ADMM runs a fixed
//! iteration count, the runtime is independent of the traffic values (the
//! stability highlighted in Figure 7a).

use crate::env::Env;
use crate::model::PolicyModel;
use std::sync::Arc;
use std::time::{Duration, Instant};
use teal_lp::{AdmmConfig, AdmmSolver, Allocation, Objective, TeInstance};
use teal_topology::Topology;
use teal_traffic::TrafficMatrix;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// ADMM fine-tuning iterations; `None` disables ADMM entirely (used for
    /// the MLU/latency objectives in §5.5 and the w/o-ADMM ablation).
    pub admm: Option<AdmmConfig>,
    /// The objective the model was trained for (ADMM uses its linear
    /// coefficients; MLU implies `admm = None`).
    pub objective: Objective,
}

impl EngineConfig {
    /// The paper's deployment defaults for a topology of `num_nodes` nodes.
    pub fn paper_default(num_nodes: usize) -> Self {
        EngineConfig {
            admm: Some(AdmmConfig::fine_tune(num_nodes)),
            objective: Objective::TotalFlow,
        }
    }

    /// No fine-tuning (ablation / non-linear objectives).
    pub fn without_admm(objective: Objective) -> Self {
        EngineConfig { admm: None, objective }
    }
}

/// A trained model plus the fine-tuning stage, ready to serve allocations.
pub struct TealEngine<M: PolicyModel> {
    model: M,
    cfg: EngineConfig,
}

impl<M: PolicyModel> TealEngine<M> {
    /// Wrap a (trained) model.
    pub fn new(model: M, cfg: EngineConfig) -> Self {
        TealEngine { model, cfg }
    }

    /// The underlying model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access (e.g. to continue training).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The environment.
    pub fn env(&self) -> &Arc<Env> {
        self.model.env()
    }

    /// Allocate a traffic matrix on the trained topology. Returns the
    /// allocation and the measured computation time.
    pub fn allocate(&self, tm: &TrafficMatrix) -> (Allocation, Duration) {
        self.allocate_inner(tm, None)
    }

    /// Allocate against a topology with altered capacities (e.g. failed
    /// links zeroed) *without retraining* — the §5.3 scenario. Paths stay
    /// the ones precomputed on the original topology.
    pub fn allocate_on(&self, topo: &Topology, tm: &TrafficMatrix) -> (Allocation, Duration) {
        self.allocate_inner(tm, Some(topo))
    }

    fn allocate_inner(
        &self,
        tm: &TrafficMatrix,
        topo_override: Option<&Topology>,
    ) -> (Allocation, Duration) {
        let env = self.model.env();
        let start = Instant::now();
        let input = env.model_input(tm, topo_override);
        let mut alloc = self.model.allocate_deterministic(&input);
        if let Some(admm_cfg) = self.cfg.admm {
            let topo = topo_override.unwrap_or_else(|| env.topo());
            let inst = TeInstance::new(topo, env.paths(), tm);
            let solver = AdmmSolver::new(&inst, self.cfg.objective);
            let (tuned, _) = solver.run(&alloc, admm_cfg);
            alloc = tuned;
        }
        alloc.project_demand_constraints();
        (alloc, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{TealConfig, TealModel};
    use teal_topology::b4;

    fn engine() -> TealEngine<TealModel> {
        let env = Arc::new(Env::for_topology(b4()));
        let model = TealModel::new(Arc::clone(&env), TealConfig {
            gnn_layers: 3,
            ..TealConfig::default()
        });
        TealEngine::new(model, EngineConfig::paper_default(12))
    }

    #[test]
    fn allocate_is_demand_feasible() {
        let eng = engine();
        let tm = TrafficMatrix::new(vec![20.0; eng.env().num_demands()]);
        let (alloc, dt) = eng.allocate(&tm);
        assert!(alloc.demand_feasible(1e-6));
        assert!(dt.as_nanos() > 0);
    }

    #[test]
    fn admm_reduces_overuse_versus_raw_model() {
        let env = Arc::new(Env::for_topology(b4()));
        let model = TealModel::new(Arc::clone(&env), TealConfig {
            gnn_layers: 3,
            ..TealConfig::default()
        });
        // Heavy demands so the untrained softmax output oversubscribes.
        let tm = TrafficMatrix::new(vec![150.0; env.num_demands()]);
        let raw = model.allocate_deterministic(&env.model_input(&tm, None));
        let inst = env.instance(&tm);
        let raw_overuse = teal_lp::evaluate(&inst, &raw).total_overuse;

        let eng = TealEngine::new(model, EngineConfig::paper_default(12));
        let (tuned, _) = eng.allocate(&tm);
        let tuned_overuse = teal_lp::evaluate(&inst, &tuned).total_overuse;
        assert!(
            tuned_overuse < raw_overuse,
            "ADMM should reduce overuse: raw {raw_overuse}, tuned {tuned_overuse}"
        );
    }

    #[test]
    fn failure_override_changes_output() {
        let eng = engine();
        let tm = TrafficMatrix::new(vec![20.0; eng.env().num_demands()]);
        let (base, _) = eng.allocate(&tm);
        let failed = eng.env().topo().with_failed_link(0, 1);
        let (after, _) = eng.allocate_on(&failed, &tm);
        assert_ne!(base, after);
    }

    #[test]
    fn runtime_is_stable_across_demand_values() {
        // Figure 7a's claim: computation is independent of traffic values.
        let eng = engine();
        let nd = eng.env().num_demands();
        let light = TrafficMatrix::new(vec![0.01; nd]);
        let heavy = TrafficMatrix::new(vec![500.0; nd]);
        let (_, t1) = eng.allocate(&light);
        let (_, t2) = eng.allocate(&heavy);
        // Generous factor-20 bound: identical op counts, only measurement
        // noise differs (CI machines can be jittery).
        let (a, b) = (t1.as_secs_f64(), t2.as_secs_f64());
        let ratio = if a > b { a / b } else { b / a };
        assert!(ratio < 20.0, "runtime ratio {ratio} too unstable");
    }
}

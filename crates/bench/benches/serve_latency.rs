//! Criterion bench: the `teal-serve` daemon under concurrent clients
//! across two topologies, versus sequentially draining the same request
//! stream through direct `ServingContext::allocate` calls — plus a
//! loopback-socket arm (pipelined `TealClient` → `TealServer`) measuring
//! what the wire front end adds on top of the in-process path.
//!
//! Each iteration serves `REQUESTS` requests (split over `CLIENTS` client
//! threads for the daemon), so requests/sec = `REQUESTS / mean`. The
//! criterion shim reports per-iteration p50/p99 alongside mean/min/max; the
//! daemon's own per-request latency histogram (p50/p99) and batch-size
//! distribution are printed after the run. The acceptance bar for the
//! serving-daemon PR: `daemon_coalesced` must not lose to `sequential` on
//! the same request stream (`BENCH_serve.json`).
//!
//! The `deadline_pressure` arms serve one more burst shape — a linger
//! window flooded with plain traffic ahead of a handful of deadline'd
//! requests — under FIFO vs EDF drain order, and report the deadline'd
//! requests' own latency percentiles (`deadlined_p99` records). EDF must
//! strictly beat FIFO on that p99 in the same run; the bench asserts it.
//!
//! Run with `CRITERION_JSON_PATH=BENCH_serve.json` to persist the results
//! the CI workflow publishes. Note the single-core CI caveat in ROADMAP.md:
//! on 1 CPU the coalescing win is bounded by memory bandwidth; multicore
//! hardware widens it via the parallel ADMM stage and the nn worker pool.

use criterion::{criterion_group, criterion_main, BenchRecord, BenchmarkId, Criterion};
use std::sync::Arc;
use teal_core::{EngineConfig, Env, ServingContext, TealConfig, TealModel};
use teal_serve::{
    wire, DrainOrder, ModelRegistry, ServeConfig, ServeDaemon, SubmitRequest, TealClient,
    TealServer,
};
use teal_topology::{b4, generate, TopoKind};
use teal_traffic::{TrafficConfig, TrafficModel};

/// Requests per measured iteration.
const REQUESTS: usize = 32;
/// Concurrent client threads driving the daemon.
const CLIENTS: usize = 4;

/// One registered topology plus its request stream.
struct Workload {
    id: &'static str,
    ctx: Arc<ServingContext<TealModel>>,
    tms: Vec<teal_traffic::TrafficMatrix>,
}

fn workload(id: &'static str, topo: teal_topology::Topology, seed: u64) -> Workload {
    let env = Arc::new(Env::for_topology(topo));
    let mut traffic = TrafficModel::new(&env.topo().all_pairs(), TrafficConfig::default(), seed);
    traffic.calibrate(env.topo(), env.paths());
    let tms = traffic.series(0, REQUESTS);
    let model = TealModel::new(
        Arc::clone(&env),
        TealConfig {
            gnn_layers: 3,
            ..TealConfig::default()
        },
    );
    let ctx = Arc::new(ServingContext::new(
        model,
        EngineConfig::paper_default(env.topo().num_nodes()),
    ));
    Workload { id, ctx, tms }
}

fn bench_serve_latency(c: &mut Criterion) {
    let loads = [
        workload("b4", b4(), 7),
        workload("swan", generate(TopoKind::Swan, 0.3, 7), 11),
    ];
    // The interleaved request stream both paths serve: (topology, matrix).
    let stream: Vec<(usize, usize)> = (0..REQUESTS).map(|i| (i % loads.len(), i)).collect();
    let label = format!("2topo_x{REQUESTS}req");

    let mut group = c.benchmark_group("serve_latency");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Baseline: one caller draining the stream through direct context calls.
    group.bench_with_input(BenchmarkId::new("sequential", &label), &(), |b, _| {
        b.iter(|| {
            let mut out = Vec::with_capacity(stream.len());
            for &(w, i) in &stream {
                out.push(loads[w].ctx.allocate(&loads[w].tms[i]).0);
            }
            out
        })
    });

    // The daemon: persistent across iterations (that is the point of a
    // serving process), concurrent clients submitting the same stream.
    let registry = ModelRegistry::new();
    for w in &loads {
        registry.insert(
            w.id,
            ServingContext::new(
                TealModel::new(
                    Arc::clone(w.ctx.env()),
                    TealConfig {
                        gnn_layers: 3,
                        ..TealConfig::default()
                    },
                ),
                EngineConfig::paper_default(w.ctx.env().topo().num_nodes()),
            ),
        );
    }
    let daemon = std::sync::Arc::new(ServeDaemon::start(registry, ServeConfig::default()));
    group.bench_with_input(BenchmarkId::new("daemon_coalesced", &label), &(), |b, _| {
        b.iter(|| {
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for t in 0..CLIENTS {
                    let daemon = &daemon;
                    let loads = &loads;
                    let stream = &stream;
                    handles.push(s.spawn(move || {
                        // Submit the window's requests, then redeem: the
                        // queue fills while the dispatcher is busy, so
                        // bursts coalesce into shared forward passes.
                        let tickets: Vec<_> = stream
                            .iter()
                            .skip(t)
                            .step_by(CLIENTS)
                            .map(|&(w, i)| {
                                daemon.submit(SubmitRequest::new(
                                    loads[w].id,
                                    loads[w].tms[i].clone(),
                                ))
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .map(|t| t.wait().expect("served").allocation)
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("client thread"))
                    .count()
            })
        })
    });

    // The wire front end on loopback TCP: same stream, same daemon, but
    // submitted as pipelined id-tagged frames through one TealClient per
    // client thread (persistent connections — that is the point of a
    // serving socket). The delta to `daemon_coalesced` is the codec +
    // loopback + out-of-order reply drain.
    let server = TealServer::bind(std::sync::Arc::clone(&daemon), "127.0.0.1:0")
        .expect("bind loopback bench server");
    let clients: Vec<TealClient> = (0..CLIENTS)
        .map(|_| TealClient::connect(server.local_addr()).expect("bench client connect"))
        .collect();
    group.bench_with_input(BenchmarkId::new("socket_pipelined", &label), &(), |b, _| {
        b.iter(|| {
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for (t, client) in clients.iter().enumerate() {
                    let loads = &loads;
                    let stream = &stream;
                    handles.push(s.spawn(move || {
                        let tickets: Vec<_> = stream
                            .iter()
                            .skip(t)
                            .step_by(CLIENTS)
                            .map(|&(w, i)| {
                                client.submit(&SubmitRequest::new(
                                    loads[w].id,
                                    loads[w].tms[i].clone(),
                                ))
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .map(|t| t.wait().expect("served over socket").allocation)
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("client thread"))
                    .count()
            })
        })
    });
    // Deadline pressure: the same burst shape served under FIFO vs EDF
    // drain order, reporting the *deadline'd requests'* latency p99 per
    // arm rather than burst wall time. Each iteration floods one linger
    // window with plain traffic and then four deadline'd requests at the
    // back of the queue: FIFO serves them in the burst's last `max_batch`
    // chunk, EDF hoists them into the first, so their tail latency is the
    // direct read on what the tentpole buys. Deadlines are a generous 60 s
    // — nothing expires, nothing downgrades; only the order differs.
    const PRESSURE_PLAIN: usize = 28;
    const PRESSURE_DEADLINED: usize = 4;
    let mut tails: Vec<(&'static str, Vec<f64>)> = Vec::new();
    for (order, tag) in [
        (DrainOrder::Fifo, "fifo"),
        (DrainOrder::EarliestDeadlineFirst, "edf"),
    ] {
        let registry = ModelRegistry::new();
        registry.insert(
            "b4",
            ServingContext::new(
                TealModel::new(
                    Arc::clone(loads[0].ctx.env()),
                    TealConfig {
                        gnn_layers: 3,
                        ..TealConfig::default()
                    },
                ),
                EngineConfig::paper_default(loads[0].ctx.env().topo().num_nodes()),
            ),
        );
        let daemon = ServeDaemon::start(
            registry,
            ServeConfig {
                max_batch: 4,
                linger: std::time::Duration::from_millis(25),
                drain_order: order,
                ..ServeConfig::default()
            },
        );
        let latencies = std::cell::RefCell::new(Vec::<f64>::new());
        group.bench_with_input(
            BenchmarkId::new(format!("deadline_pressure_{tag}"), &label),
            &(),
            |b, _| {
                b.iter(|| {
                    let plain: Vec<_> = (0..PRESSURE_PLAIN)
                        .map(|i| {
                            daemon.submit(SubmitRequest::new(
                                "b4",
                                loads[0].tms[i % REQUESTS].clone(),
                            ))
                        })
                        .collect();
                    let deadlined: Vec<_> = (0..PRESSURE_DEADLINED)
                        .map(|i| {
                            daemon.submit(
                                SubmitRequest::new(
                                    "b4",
                                    loads[0].tms[(PRESSURE_PLAIN + i) % REQUESTS].clone(),
                                )
                                .with_deadline(std::time::Duration::from_secs(60)),
                            )
                        })
                        .collect();
                    let mut l = latencies.borrow_mut();
                    for t in deadlined {
                        l.push(t.wait().expect("deadline'd served").latency.as_nanos() as f64);
                    }
                    let mut served = 0usize;
                    for t in plain {
                        t.wait().expect("plain served");
                        served += 1;
                    }
                    served
                })
            },
        );
        let mut l = latencies.into_inner();
        l.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        tails.push((tag, l));
    }
    group.finish();
    drop(clients);

    // Nearest-rank percentile, matching the shim's convention.
    let pctl = |sorted: &[f64], q: f64| -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    };
    let mut p99_by_tag = std::collections::HashMap::new();
    for (tag, sorted) in &tails {
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let record = BenchRecord {
            id: format!("serve_latency/deadline_pressure_{tag}/deadlined_p99"),
            mean_ns: mean,
            min_ns: sorted[0],
            max_ns: sorted[n - 1],
            p50_ns: pctl(sorted, 0.50),
            p99_ns: pctl(sorted, 0.99),
            samples: n,
            iters: 1,
        };
        p99_by_tag.insert(*tag, record.p99_ns);
        criterion::push_record(record);
    }
    // The PR's acceptance bar: EDF must strictly improve the deadline'd
    // requests' p99 over FIFO in the same run.
    let (fifo_p99, edf_p99) = (p99_by_tag["fifo"], p99_by_tag["edf"]);
    eprintln!(
        "deadline_pressure: deadline'd p99 fifo {:.3} ms vs edf {:.3} ms ({:.2}x)",
        fifo_p99 / 1e6,
        edf_p99 / 1e6,
        fifo_p99 / edf_p99
    );
    assert!(
        edf_p99 < fifo_p99,
        "EDF did not improve the deadline'd p99: edf {edf_p99} ns vs fifo {fifo_p99} ns"
    );

    let stats = daemon.stats();
    eprintln!(
        "serve_latency daemon telemetry: mean batch {:.2}, max queue depth {}",
        stats.mean_batch_size(),
        stats.max_queue_depth
    );
    for t in &stats.per_topology {
        eprintln!(
            "  {}: {} requests in {} batches, per-request p50 {:?} p99 {:?}",
            t.topology, t.requests, t.batches, t.p50, t.p99
        );
    }
}

/// Live threads whose `comm` starts with `teal-serve` — the server-side
/// thread population (epoll loop, accept loop, per-connection pairs,
/// shard dispatchers). `comm` truncates names to 15 bytes, which
/// preserves the prefix; client readers (`teal-client-*`) and nn pool
/// workers (`teal-nn-*`) don't match.
fn serve_thread_count() -> usize {
    let mut n = 0;
    for entry in std::fs::read_dir("/proc/self/task").expect("procfs") {
        let mut path = entry.expect("procfs task").path();
        path.push("comm");
        // Threads exit between readdir and read; a vanished one wasn't a
        // resident server thread anyway.
        if let Ok(comm) = std::fs::read_to_string(&path) {
            if comm.starts_with("teal-serve") {
                n += 1;
            }
        }
    }
    n
}

/// Resident set size of this process in KiB (`VmRSS` from procfs).
fn rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    let line = status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .expect("VmRSS in /proc/self/status");
    line.split_whitespace()
        .nth(1)
        .expect("VmRSS value")
        .parse()
        .expect("VmRSS is integer KiB")
}

/// A scalar measurement (thread count, RSS) wearing the `BenchRecord`
/// shape so it lands in `BENCH_serve.json` next to the latencies.
fn gauge(id: String, value: f64) -> BenchRecord {
    BenchRecord {
        id,
        mean_ns: value,
        min_ns: value,
        max_ns: value,
        p50_ns: value,
        p99_ns: value,
        samples: 1,
        iters: 1,
    }
}

/// The connection-scale A/B: 1,024 idle keepalive connections parked on
/// the server plus 4 active pipelined clients, served by the epoll
/// event-loop front end vs the thread-per-connection baseline **in the
/// same run**. Per arm, the bench records the active clients' request
/// latency, the wire overhead (client round trip minus the daemon's own
/// per-request latency — the codec + loopback + front-end share), the
/// `teal-serve` thread population, and process RSS, all measured while
/// the 1,024 idle connections are attached. Two assertions gate the run:
/// the event-loop arm's threads ≤ shards + 3, and its wire-overhead p99
/// must not exceed the threaded arm's.
fn bench_connection_scale(c: &mut Criterion) {
    const IDLE_CONNS: usize = 1024;
    const ACTIVE: usize = 4;

    let loads = [
        workload("b4", b4(), 7),
        workload("swan", generate(TopoKind::Swan, 0.3, 7), 11),
    ];
    let stream: Vec<(usize, usize)> = (0..REQUESTS).map(|i| (i % loads.len(), i)).collect();
    let label = format!("{IDLE_CONNS}idle_{ACTIVE}active");

    let mut group = c.benchmark_group("connection_scale");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // (tag, wire-overhead p99 ns, server threads added by this arm).
    let mut arms: Vec<(&'static str, f64, usize)> = Vec::new();

    for (tag, event_loop) in [("event_loop", true), ("threaded", false)] {
        // Threads are counted as a delta so a prior arm's not-yet-reaped
        // exiters can't be charged to this one.
        let thread_floor = serve_thread_count();

        let registry = ModelRegistry::new();
        for w in &loads {
            registry.insert(
                w.id,
                ServingContext::new(
                    TealModel::new(
                        Arc::clone(w.ctx.env()),
                        TealConfig {
                            gnn_layers: 3,
                            ..TealConfig::default()
                        },
                    ),
                    EngineConfig::paper_default(w.ctx.env().topo().num_nodes()),
                ),
            );
        }
        let daemon = Arc::new(ServeDaemon::start(
            registry,
            ServeConfig {
                event_loop,
                ..ServeConfig::default()
            },
        ));
        let server =
            TealServer::bind(Arc::clone(&daemon), "127.0.0.1:0").expect("bind scale server");
        let addr = server.local_addr();

        // The idle population: raw sockets that complete a real HELLO
        // handshake and then just sit there — the production posture the
        // event loop exists for. Raw `TcpStream`s rather than `TealClient`s
        // so the *client* side doesn't spawn 1,024 reader threads.
        let mut buf = Vec::new();
        let idle: Vec<std::net::TcpStream> = (0..IDLE_CONNS)
            .map(|i| {
                let mut s = std::net::TcpStream::connect(addr)
                    .unwrap_or_else(|e| panic!("idle connection {i}: {e}"));
                wire::encode_hello(&mut buf);
                wire::write_frame(&mut s, &buf).expect("idle hello");
                assert!(wire::read_frame(&mut s, &mut buf).expect("idle hello_ok"));
                wire::decode_hello_ok(&buf).expect("idle handshake");
                s
            })
            .collect();

        let clients: Vec<TealClient> = (0..ACTIVE)
            .map(|_| TealClient::connect(addr).expect("active client connect"))
            .collect();

        // (client round trip, daemon-reported latency) per request, in ns.
        // A mutex (not a RefCell) because the active clients are scoped
        // threads; they only take it once per iteration, off the timed
        // submit/wait path's critical section.
        let samples = std::sync::Mutex::new(Vec::<(f64, f64)>::new());
        group.bench_with_input(BenchmarkId::new(tag, &label), &(), |b, _| {
            b.iter(|| {
                std::thread::scope(|s| {
                    let mut handles = Vec::new();
                    for (t, client) in clients.iter().enumerate() {
                        let loads = &loads;
                        let stream = &stream;
                        let samples = &samples;
                        handles.push(s.spawn(move || {
                            let tickets: Vec<_> = stream
                                .iter()
                                .skip(t)
                                .step_by(ACTIVE)
                                .map(|&(w, i)| {
                                    (
                                        std::time::Instant::now(),
                                        client.submit(&SubmitRequest::new(
                                            loads[w].id,
                                            loads[w].tms[i].clone(),
                                        )),
                                    )
                                })
                                .collect();
                            let mut local = Vec::with_capacity(tickets.len());
                            for (t0, ticket) in tickets {
                                let reply = ticket.wait().expect("served at scale");
                                local.push((
                                    t0.elapsed().as_nanos() as f64,
                                    reply.latency.as_nanos() as f64,
                                ));
                            }
                            samples.lock().expect("samples").extend(local);
                        }));
                    }
                    for h in handles {
                        h.join().expect("active client thread");
                    }
                })
            })
        });

        // Gauges, measured while all 1,024 idle connections are attached.
        let threads = serve_thread_count() - thread_floor;
        let rss = rss_kib();
        criterion::push_record(gauge(
            format!("connection_scale/{tag}/server_threads"),
            threads as f64,
        ));
        criterion::push_record(gauge(format!("connection_scale/{tag}/rss_kib"), rss as f64));

        let pctl = |sorted: &[f64], q: f64| -> f64 {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            sorted[rank - 1]
        };
        let samples = samples.into_inner().expect("samples");
        let mut rtt: Vec<f64> = samples.iter().map(|&(r, _)| r).collect();
        // Wire overhead: what the front end adds on top of the daemon's
        // own queue+solve+write span. The round trip strictly contains
        // that span, so the difference is nonnegative.
        let mut overhead: Vec<f64> = samples.iter().map(|&(r, d)| r - d).collect();
        rtt.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        overhead.sort_by(|a, b| a.partial_cmp(b).expect("finite overhead"));
        for (kind, sorted) in [("request_latency", &rtt), ("wire_overhead", &overhead)] {
            let n = sorted.len();
            criterion::push_record(BenchRecord {
                id: format!("connection_scale/{tag}/{kind}"),
                mean_ns: sorted.iter().sum::<f64>() / n as f64,
                min_ns: sorted[0],
                max_ns: sorted[n - 1],
                p50_ns: pctl(sorted, 0.50),
                p99_ns: pctl(sorted, 0.99),
                samples: n,
                iters: 1,
            });
        }
        eprintln!(
            "connection_scale/{tag}: {IDLE_CONNS} idle + {ACTIVE} active, {} server threads, \
             RSS {:.1} MiB, request p50/p99 {:.3}/{:.3} ms, wire overhead p50/p99 {:.3}/{:.3} ms",
            threads,
            rss as f64 / 1024.0,
            pctl(&rtt, 0.50) / 1e6,
            pctl(&rtt, 0.99) / 1e6,
            pctl(&overhead, 0.50) / 1e6,
            pctl(&overhead, 0.99) / 1e6,
        );
        arms.push((tag, pctl(&overhead, 0.99), threads));

        drop(clients);
        drop(idle);
        drop(server);
    }
    group.finish();

    // The PR's acceptance bars, checked on the same-run records.
    let by_tag: std::collections::HashMap<&str, (f64, usize)> = arms
        .iter()
        .map(|&(tag, p99, threads)| (tag, (p99, threads)))
        .collect();
    let (event_p99, event_threads) = by_tag["event_loop"];
    let (threaded_p99, threaded_threads) = by_tag["threaded"];
    let shards = loads.len();
    assert!(
        event_threads <= shards + 3,
        "event loop multiplexes {IDLE_CONNS} connections on a fixed thread budget: \
         {event_threads} server threads > shards + 3 = {}",
        shards + 3
    );
    eprintln!(
        "connection_scale: wire-overhead p99 event_loop {:.3} ms vs threaded {:.3} ms \
         ({:.2}x), server threads {event_threads} vs {threaded_threads}",
        event_p99 / 1e6,
        threaded_p99 / 1e6,
        threaded_p99 / event_p99
    );
    assert!(
        event_p99 <= threaded_p99,
        "event-loop wire-overhead p99 regressed past the threaded arm: \
         {event_p99} ns vs {threaded_p99} ns"
    );
}

criterion_group!(benches, bench_serve_latency, bench_connection_scale);
criterion_main!(benches);

//! Criterion bench: Teal's forward pass (FlowGNN + policy network) and the
//! full engine pipeline — the per-interval cost behind Figures 6a/7a.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use teal_core::{EngineConfig, Env, PolicyModel, TealConfig, TealEngine, TealModel};
use teal_topology::{generate, PathSet, TopoKind};
use teal_traffic::{TrafficConfig, TrafficModel};

fn setup(
    kind: TopoKind,
    scale: f64,
    max_demands: usize,
) -> (Arc<Env>, teal_traffic::TrafficMatrix) {
    let topo = generate(kind, scale, 42);
    let mut pairs = topo.all_pairs();
    pairs.truncate(max_demands);
    let paths = PathSet::compute(&topo, &pairs, 4);
    let mut model = TrafficModel::new(&pairs, TrafficConfig::default(), 42);
    model.calibrate(&topo, &paths);
    let tm = model.series(0, 1).remove(0);
    (Arc::new(Env::new(topo, paths)), tm)
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_pass");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, kind, scale, cap) in [
        ("B4", TopoKind::B4, 1.0, usize::MAX),
        ("SWAN-x0.5", TopoKind::Swan, 0.5, 1200),
        ("Kdl-x0.1", TopoKind::Kdl, 0.1, 1200),
    ] {
        let (env, tm) = setup(kind, scale, cap);
        let model = TealModel::new(Arc::clone(&env), TealConfig::default());
        let input = env.model_input(&tm, None);
        group.bench_with_input(BenchmarkId::new("model_only", label), &(), |b, _| {
            b.iter(|| model.allocate_deterministic(&input))
        });
        let engine = TealEngine::new(
            model.clone(),
            EngineConfig::paper_default(env.topo().num_nodes()),
        );
        group.bench_with_input(BenchmarkId::new("engine_with_admm", label), &(), |b, _| {
            b.iter(|| engine.allocate(&tm))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
